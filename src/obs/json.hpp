// Minimal JSON document model used by the observability layer: enough to
// serialize run reports and to parse them back for validation/round-trip
// tests. Numbers are stored as double (counter values fit exactly up to
// 2^53, far beyond any realistic run).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace nova::obs {

class Json {
 public:
  using Array = std::vector<Json>;
  // Insertion-ordered object (reports are small; linear lookup is fine).
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() : v_(nullptr) {}
  Json(std::nullptr_t) : v_(nullptr) {}
  Json(bool b) : v_(b) {}
  Json(double d) : v_(d) {}
  Json(int i) : v_(static_cast<double>(i)) {}
  Json(long l) : v_(static_cast<double>(l)) {}
  Json(long long l) : v_(static_cast<double>(l)) {}
  Json(const char* s) : v_(std::string(s)) {}
  Json(std::string s) : v_(std::move(s)) {}
  Json(Array a) : v_(std::move(a)) {}
  Json(Object o) : v_(std::move(o)) {}

  static Json array() { return Json(Array{}); }
  static Json object() { return Json(Object{}); }

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_number() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_array() const { return std::holds_alternative<Array>(v_); }
  bool is_object() const { return std::holds_alternative<Object>(v_); }

  bool as_bool() const { return std::get<bool>(v_); }
  double as_number() const { return std::get<double>(v_); }
  long as_long() const { return static_cast<long>(std::get<double>(v_)); }
  const std::string& as_string() const { return std::get<std::string>(v_); }
  const Array& as_array() const { return std::get<Array>(v_); }
  Array& as_array() { return std::get<Array>(v_); }
  const Object& as_object() const { return std::get<Object>(v_); }
  Object& as_object() { return std::get<Object>(v_); }

  /// Object member access; null reference semantics via a static null.
  const Json* find(const std::string& key) const;
  /// Sets (or replaces) an object member; the value must be an object.
  void set(const std::string& key, Json value);
  /// Appends to an array value.
  void push_back(Json value) { as_array().push_back(std::move(value)); }

  /// Serializes; indent < 0 gives compact one-line output.
  std::string dump(int indent = -1) const;

  /// Strict parse of a complete document. Returns nullopt on any syntax
  /// error or trailing garbage; `err`, when given, receives a message with
  /// a byte offset.
  static std::optional<Json> parse(const std::string& text,
                                   std::string* err = nullptr);

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> v_;
};

}  // namespace nova::obs
