#include "obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>

namespace nova::obs {

const Json* Json::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : as_object()) {
    if (k == key) return &v;
  }
  return nullptr;
}

void Json::set(const std::string& key, Json value) {
  for (auto& [k, v] : as_object()) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  as_object().emplace_back(key, std::move(value));
}

namespace {

void dump_string(const std::string& s, std::string& out) {
  out += '"';
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
}

void dump_number(double d, std::string& out) {
  if (!std::isfinite(d)) {
    out += "null";  // JSON has no inf/nan
    return;
  }
  if (d == std::floor(d) && std::fabs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(d));
    out += buf;
  } else {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.9g", d);
    out += buf;
  }
}

void indent_to(std::string& out, int indent, int depth) {
  if (indent < 0) return;
  out += '\n';
  out.append(static_cast<size_t>(indent) * depth, ' ');
}

}  // namespace

std::string Json::dump(int indent) const {
  struct Impl {
    int indent;
    std::string out;
    void rec(const Json& j, int depth) {
      if (j.is_null()) {
        out += "null";
      } else if (j.is_bool()) {
        out += j.as_bool() ? "true" : "false";
      } else if (j.is_number()) {
        dump_number(j.as_number(), out);
      } else if (j.is_string()) {
        dump_string(j.as_string(), out);
      } else if (j.is_array()) {
        const auto& a = j.as_array();
        if (a.empty()) {
          out += "[]";
          return;
        }
        out += '[';
        for (size_t i = 0; i < a.size(); ++i) {
          if (i) out += ',';
          indent_to(out, indent, depth + 1);
          rec(a[i], depth + 1);
        }
        indent_to(out, indent, depth);
        out += ']';
      } else {
        const auto& o = j.as_object();
        if (o.empty()) {
          out += "{}";
          return;
        }
        out += '{';
        for (size_t i = 0; i < o.size(); ++i) {
          if (i) out += ',';
          indent_to(out, indent, depth + 1);
          dump_string(o[i].first, out);
          out += indent < 0 ? ":" : ": ";
          rec(o[i].second, depth + 1);
        }
        indent_to(out, indent, depth);
        out += '}';
      }
    }
  };
  Impl impl{indent, {}};
  impl.rec(*this, 0);
  return impl.out;
}

namespace {

class Parser {
 public:
  Parser(const std::string& text, std::string* err)
      : s_(text), err_(err) {}

  std::optional<Json> run() {
    skip_ws();
    auto v = value();
    if (!v) return std::nullopt;
    skip_ws();
    if (pos_ != s_.size()) return fail("trailing characters");
    return v;
  }

 private:
  std::optional<Json> fail(const char* msg) {
    if (err_) *err_ = std::string(msg) + " at offset " + std::to_string(pos_);
    return std::nullopt;
  }

  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r'))
      ++pos_;
  }

  bool consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(const char* lit) {
    size_t n = std::strlen(lit);
    if (s_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  std::optional<Json> value() {
    if (pos_ >= s_.size()) return fail("unexpected end of input");
    char c = s_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      auto s = string();
      if (!s) return std::nullopt;
      return Json(std::move(*s));
    }
    if (literal("true")) return Json(true);
    if (literal("false")) return Json(false);
    if (literal("null")) return Json(nullptr);
    return number();
  }

  std::optional<Json> number() {
    size_t start = pos_;
    if (consume('-')) {
    }
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) return fail("invalid value");
    char* end = nullptr;
    std::string tok = s_.substr(start, pos_ - start);
    double d = std::strtod(tok.c_str(), &end);
    if (!end || *end != '\0') return fail("invalid number");
    return Json(d);
  }

  std::optional<std::string> string() {
    if (!consume('"')) {
      fail("expected string");
      return std::nullopt;
    }
    std::string out;
    while (pos_ < s_.size()) {
      char c = s_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= s_.size()) break;
        char e = s_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) {
              fail("bad \\u escape");
              return std::nullopt;
            }
            int code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = s_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9')
                code |= h - '0';
              else if (h >= 'a' && h <= 'f')
                code |= h - 'a' + 10;
              else if (h >= 'A' && h <= 'F')
                code |= h - 'A' + 10;
              else {
                fail("bad \\u escape");
                return std::nullopt;
              }
            }
            // Reports only emit control-character escapes; encode as UTF-8.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            fail("bad escape");
            return std::nullopt;
        }
      } else {
        out += c;
      }
    }
    fail("unterminated string");
    return std::nullopt;
  }

  std::optional<Json> array() {
    consume('[');
    Json::Array out;
    skip_ws();
    if (consume(']')) return Json(std::move(out));
    while (true) {
      skip_ws();
      auto v = value();
      if (!v) return std::nullopt;
      out.push_back(std::move(*v));
      skip_ws();
      if (consume(']')) return Json(std::move(out));
      if (!consume(',')) return fail("expected ',' or ']'");
    }
  }

  std::optional<Json> object() {
    consume('{');
    Json::Object out;
    skip_ws();
    if (consume('}')) return Json(std::move(out));
    while (true) {
      skip_ws();
      auto k = string();
      if (!k) return std::nullopt;
      skip_ws();
      if (!consume(':')) return fail("expected ':'");
      skip_ws();
      auto v = value();
      if (!v) return std::nullopt;
      out.emplace_back(std::move(*k), std::move(*v));
      skip_ws();
      if (consume('}')) return Json(std::move(out));
      if (!consume(',')) return fail("expected ',' or '}'");
    }
  }

  const std::string& s_;
  std::string* err_;
  size_t pos_ = 0;
};

}  // namespace

std::optional<Json> Json::parse(const std::string& text, std::string* err) {
  return Parser(text, err).run();
}

}  // namespace nova::obs
