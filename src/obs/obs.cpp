#include "obs/obs.hpp"

#include <algorithm>
#include <cstdlib>

namespace nova::obs {

namespace detail {

thread_local constinit Report* tl_report = nullptr;
thread_local constinit SpanNode* tl_current = nullptr;

SpanNode* span_begin(const char* name) {
  Report* r = tl_report;
  SpanNode* parent = tl_current;
  std::lock_guard<std::mutex> lock(r->mu_);
  for (auto& child : parent->children) {
    if (child->name == name) {
      tl_current = child.get();
      return child.get();
    }
  }
  auto node = std::make_unique<SpanNode>();
  node->name = name;
  node->parent = parent;
  SpanNode* raw = node.get();
  parent->children.push_back(std::move(node));
  tl_current = raw;
  return raw;
}

void span_end(SpanNode* node, double seconds) {
  Report* r = tl_report;
  if (r) {
    std::lock_guard<std::mutex> lock(r->mu_);
    node->count += 1;
    node->seconds += seconds;
  }
  tl_current = node->parent;
}

void counter_add_slow(const char* name, long delta) {
  Report* r = tl_report;
  std::lock_guard<std::mutex> lock(r->mu_);
  *r->counter_slot(name) += delta;
}

void counter_peak_slow(const char* name, long value) {
  Report* r = tl_report;
  std::lock_guard<std::mutex> lock(r->mu_);
  long* slot = r->counter_slot(name);
  if (value > *slot) *slot = value;
}

}  // namespace detail

Report::Report() { root_.name = "<root>"; }

long* Report::counter_slot(const char* name) {
  auto it = std::lower_bound(
      counters_.begin(), counters_.end(), name,
      [](const auto& e, const char* n) { return e.first < n; });
  if (it == counters_.end() || it->first != name)
    it = counters_.insert(it, {std::string(name), 0});
  return &it->second;
}

long Report::counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = std::lower_bound(
      counters_.begin(), counters_.end(), name,
      [](const auto& e, const std::string& n) { return e.first < n; });
  return it != counters_.end() && it->first == name ? it->second : 0;
}

std::vector<std::pair<std::string, long>> Report::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

const SpanNode* Report::find_span(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  const SpanNode* node = &root_;
  size_t pos = 0;
  while (pos <= path.size()) {
    size_t next = path.find('/', pos);
    std::string part = path.substr(
        pos, next == std::string::npos ? std::string::npos : next - pos);
    const SpanNode* found = nullptr;
    for (const auto& c : node->children) {
      if (c->name == part) {
        found = c.get();
        break;
      }
    }
    if (!found) return nullptr;
    node = found;
    if (next == std::string::npos) break;
    pos = next + 1;
  }
  return node;
}

namespace {

Json span_to_json(const SpanNode& n) {
  Json j = Json::object();
  j.set("name", n.name);
  j.set("count", n.count);
  j.set("seconds", n.seconds);
  if (!n.children.empty()) {
    Json kids = Json::array();
    for (const auto& c : n.children) kids.push_back(span_to_json(*c));
    j.set("children", std::move(kids));
  }
  return j;
}

}  // namespace

Json Report::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  Json j = Json::object();
  j.set("version", 1);
  Json counters = Json::object();
  for (const auto& [name, value] : counters_) counters.set(name, value);
  j.set("counters", std::move(counters));
  Json spans = Json::array();
  for (const auto& c : root_.children) spans.push_back(span_to_json(*c));
  j.set("spans", std::move(spans));
  return j;
}

std::string Report::to_json_string(int indent) const {
  return to_json().dump(indent);
}

TraceSession::TraceSession(Report& report)
    : prev_report_(detail::tl_report), prev_current_(detail::tl_current) {
  detail::tl_report = &report;
  detail::tl_current = &report.root_;
}

TraceSession::~TraceSession() {
  detail::tl_report = prev_report_;
  detail::tl_current = prev_current_;
}

bool env_trace_enabled() {
  static const bool on = [] {
    const char* v = std::getenv("NOVA_TRACE");
    return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
  }();
  return on;
}

}  // namespace nova::obs
