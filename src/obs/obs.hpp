// Observability layer: scoped spans (RAII timers with nesting), named
// monotonic counters, and a thread-safe Report registry that serializes a
// whole run to JSON.
//
// Collection is opt-in per thread: nothing is recorded unless a
// TraceSession has installed a Report on the current thread (the NOVA
// driver does this when NovaOptions::trace is set, which defaults to the
// NOVA_TRACE environment variable). When no session is active every
// instrumentation point is a single thread-local pointer test -- no clock
// read, no allocation, no lock. Defining NOVA_OBS_FORCE_OFF at compile
// time turns enabled() into a constant false so the optimizer removes the
// instrumentation entirely.
//
// Spans with the same name under the same parent are aggregated (call
// count + total seconds), so the report stays bounded regardless of how
// many times a hot path runs.
#pragma once

#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace nova::obs {

class Report;

/// One aggregated node of the span tree: all invocations of `name` under
/// the same parent span.
struct SpanNode {
  std::string name;
  long count = 0;        ///< completed invocations
  double seconds = 0.0;  ///< total wall-clock time across invocations
  SpanNode* parent = nullptr;
  std::vector<std::unique_ptr<SpanNode>> children;
};

namespace detail {
// Active collector of the current thread (null = tracing disabled) and the
// innermost open span node. constinit guarantees static initialization,
// which lets the compiler access the TLS slot directly instead of going
// through the dynamic-init wrapper (GCC's wrapper also trips a UBSan
// -fsanitize=null false positive on extern thread_local).
extern thread_local constinit Report* tl_report;
extern thread_local constinit SpanNode* tl_current;
SpanNode* span_begin(const char* name);
void span_end(SpanNode* node, double seconds);
void counter_add_slow(const char* name, long delta);
void counter_peak_slow(const char* name, long value);
}  // namespace detail

/// The report installed on the current thread, or null when tracing is off.
/// Worker threads use this (captured on the spawning thread) to re-install
/// the parent's collector via TraceSession so their spans and counters land
/// in the same report; Report is mutex-protected, so concurrent collection
/// is safe.
inline Report* current_report() { return detail::tl_report; }

/// True when the current thread has an active trace session.
inline bool enabled() {
#ifdef NOVA_OBS_FORCE_OFF
  return false;
#else
  return detail::tl_report != nullptr;
#endif
}

/// Adds `delta` to the named monotonic counter of the active report.
inline void counter_add(const char* name, long delta = 1) {
  if (enabled()) detail::counter_add_slow(name, delta);
}

/// Records `value` into the named counter if it exceeds the current value
/// (high-water-mark semantics, e.g. largest off-set seen).
inline void counter_peak(const char* name, long value) {
  if (enabled()) detail::counter_peak_slow(name, value);
}

/// RAII scoped timer. When a trace session is active the elapsed time is
/// accumulated into the report's span tree under the innermost open span.
/// When `out_seconds` is given the span times itself even with tracing
/// disabled and writes the elapsed seconds on destruction -- this is how
/// the driver reports per-phase seconds unconditionally.
class Span {
 public:
  explicit Span(const char* name, double* out_seconds = nullptr)
      : out_(out_seconds) {
    if (enabled()) node_ = detail::span_begin(name);
    if (node_ || out_) start_ = std::chrono::steady_clock::now();
  }
  ~Span() {
    if (!node_ && !out_) return;
    double s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             start_)
                   .count();
    if (out_) *out_ += s;
    if (node_) detail::span_end(node_, s);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  SpanNode* node_ = nullptr;
  double* out_ = nullptr;
  std::chrono::steady_clock::time_point start_;
};

/// Thread-safe registry of one run's spans and counters.
class Report {
 public:
  Report();
  Report(const Report&) = delete;
  Report& operator=(const Report&) = delete;

  /// Counter value (0 when never touched).
  long counter(const std::string& name) const;
  /// All counters, sorted by name.
  std::vector<std::pair<std::string, long>> counters() const;

  /// Looks up an aggregated span by '/'-separated path from the root, e.g.
  /// "nova.run/nova.extract/espresso". Null when absent.
  const SpanNode* find_span(const std::string& path) const;
  const SpanNode& root() const { return root_; }

  /// Serializes the whole report:
  ///   {"version":1, "counters":{...},
  ///    "spans":[{"name":..,"count":..,"seconds":..,"children":[...]}]}
  Json to_json() const;
  std::string to_json_string(int indent = 2) const;

 private:
  friend class TraceSession;
  friend SpanNode* detail::span_begin(const char*);
  friend void detail::span_end(SpanNode*, double);
  friend void detail::counter_add_slow(const char*, long);
  friend void detail::counter_peak_slow(const char*, long);

  mutable std::mutex mu_;
  SpanNode root_;  ///< synthetic root; its children are the top-level spans
  // Sorted-vector map: reports hold tens of counters, not thousands.
  std::vector<std::pair<std::string, long>> counters_;

  long* counter_slot(const char* name);  // requires mu_ held
};

/// Installs `report` as the current thread's active collector for the
/// session's lifetime; restores the previous collector on destruction
/// (sessions nest like a stack).
class TraceSession {
 public:
  explicit TraceSession(Report& report);
  ~TraceSession();
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

 private:
  Report* prev_report_;
  SpanNode* prev_current_;
};

/// True when the NOVA_TRACE environment variable requests tracing
/// (set and not "0"); read once per process.
bool env_trace_enabled();

}  // namespace nova::obs
