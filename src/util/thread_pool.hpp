// Minimal deterministic fork-join helper for fanning independent, indexed
// tasks (e.g. embedding restarts) across cores.
//
// Determinism contract: run_indexed(count, fn) calls fn(0), ..., fn(count-1)
// exactly once each; which OS thread runs which index is scheduling-
// dependent, so callers MUST make fn(i) depend only on i (per-index RNG
// streams, no shared mutable state) and merge results by index afterwards.
// Under that discipline any thread count -- including 1 -- produces
// identical results; see docs/PERFORMANCE.md.
//
// Workers are spawned per call rather than kept in a persistent pool: the
// intended granularity is a handful of millisecond-scale restarts per
// encode, where thread creation cost is noise and a condition-variable
// dispatch loop would only add failure modes.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <functional>
#include <mutex>
#include <system_error>
#include <thread>
#include <vector>

namespace nova::util {

class ThreadPool {
 public:
  /// threads < 1 is clamped to 1 (everything runs on the calling thread).
  explicit ThreadPool(int threads) : threads_(std::max(1, threads)) {}

  int threads() const { return threads_; }

  /// Runs fn(0..count-1) across up to threads() OS threads; the calling
  /// thread participates. Blocks until every call has finished. The first
  /// exception thrown by any task is rethrown on the calling thread after
  /// the join (remaining tasks still run).
  void run_indexed(int count, const std::function<void(int)>& fn) {
    if (count <= 0) return;
    const int workers = std::min(threads_, count);
    std::atomic<int> next{0};
    std::exception_ptr first_error;
    std::mutex error_mu;
    auto drain = [&] {
      for (int i = next.fetch_add(1); i < count; i = next.fetch_add(1)) {
        try {
          fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mu);
          if (!first_error) first_error = std::current_exception();
        }
      }
    };
    if (workers > 1) {
      std::vector<std::thread> extra;
      extra.reserve(workers - 1);
      // Thread creation can itself throw (resource exhaustion); keep going
      // with however many workers were spawned rather than terminating with
      // joinable threads in flight.
      try {
        for (int t = 1; t < workers; ++t) extra.emplace_back(drain);
      } catch (const std::system_error&) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
      drain();
      for (auto& th : extra) th.join();
    } else {
      drain();
    }
    if (first_error) std::rethrow_exception(first_error);
  }

  /// Thread count requested by the NOVA_THREADS environment variable, or
  /// the hardware concurrency when unset/invalid (1 when even that is
  /// unknown). Read once per process.
  static int default_threads() {
    static const int n = [] {
      if (const char* v = std::getenv("NOVA_THREADS")) {
        int parsed = std::atoi(v);
        if (parsed >= 1) return parsed;
      }
      unsigned hc = std::thread::hardware_concurrency();
      return hc > 0 ? static_cast<int>(hc) : 1;
    }();
    return n;
  }

 private:
  int threads_;
};

}  // namespace nova::util
