// Dynamic fixed-width bit vector used for state sets and cube storage.
//
// A BitVec owns `nbits` bits packed into 64-bit words. Vectors of up to
// kInlineWords * 64 bits (128) are stored inline with no heap allocation --
// every cube of a typical CubeSpec fits, so the logic kernels are
// allocation-free on their hot paths. Wider vectors fall back to a heap
// buffer transparently.
//
// All bitwise operations require operands of the same width; this is
// enforced by NOVA_CONTRACT checks (cheap level for whole-vector
// operations, paranoid for per-bit accessors). Bits beyond `nbits` in the
// last word are kept zero as a class invariant, so word-level comparisons
// and popcounts are exact.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>

#include "check/contract.hpp"

namespace nova::util {

class BitVec {
 public:
  /// Words stored inline before spilling to the heap.
  static constexpr int kInlineWords = 2;

  BitVec() = default;
  explicit BitVec(int nbits)
      : nbits_(nbits), nwords_((nbits + 63) / 64) {
    NOVA_CONTRACT(cheap, nbits >= 0, "negative BitVec width");
    if (nwords_ > kInlineWords) {
      store_.heap = new uint64_t[nwords_]();
    } else {
      store_.inl[0] = 0;
      store_.inl[1] = 0;
    }
  }

  BitVec(const BitVec& o) : nbits_(o.nbits_), nwords_(o.nwords_) {
    if (nwords_ > kInlineWords) {
      store_.heap = new uint64_t[nwords_];
      std::memcpy(store_.heap, o.store_.heap, sizeof(uint64_t) * nwords_);
    } else {
      store_.inl[0] = o.store_.inl[0];
      store_.inl[1] = o.store_.inl[1];
    }
  }
  BitVec(BitVec&& o) noexcept : nbits_(o.nbits_), nwords_(o.nwords_) {
    store_ = o.store_;
    o.nbits_ = 0;
    o.nwords_ = 0;
  }
  BitVec& operator=(const BitVec& o) {
    if (this == &o) return *this;
    if (nwords_ == o.nwords_) {  // reuse the buffer, heap or inline
      std::memcpy(data(), o.data(), sizeof(uint64_t) * nwords_);
      nbits_ = o.nbits_;
      return *this;
    }
    BitVec tmp(o);
    swap(tmp);
    return *this;
  }
  BitVec& operator=(BitVec&& o) noexcept {
    if (this == &o) return *this;
    release();
    nbits_ = o.nbits_;
    nwords_ = o.nwords_;
    store_ = o.store_;
    o.nbits_ = 0;
    o.nwords_ = 0;
    return *this;
  }
  ~BitVec() { release(); }

  void swap(BitVec& o) noexcept {
    std::swap(nbits_, o.nbits_);
    std::swap(nwords_, o.nwords_);
    std::swap(store_, o.store_);
  }

  /// Builds a BitVec from a 0/1 string, e.g. "1010". str[0] is bit 0.
  static BitVec from_string(const std::string& s) {
    BitVec v(static_cast<int>(s.size()));
    for (int i = 0; i < static_cast<int>(s.size()); ++i) {
      NOVA_CONTRACT(cheap, s[i] == '0' || s[i] == '1',
                    "BitVec string must be over 0/1");
      if (s[i] == '1') v.set(i);
    }
    return v;
  }

  int size() const { return nbits_; }
  bool empty_width() const { return nbits_ == 0; }

  /// Word-level access for the word-parallel kernels (logic::Cube etc.).
  int num_words() const { return nwords_; }
  uint64_t word(int i) const { return data()[i]; }
  const uint64_t* data() const {
    return nwords_ > kInlineWords ? store_.heap : store_.inl;
  }
  uint64_t* data() {
    return nwords_ > kInlineWords ? store_.heap : store_.inl;
  }

  bool get(int i) const {
    NOVA_CONTRACT(paranoid, i >= 0 && i < nbits_, "bit index out of range");
    return (data()[i >> 6] >> (i & 63)) & 1u;
  }
  void set(int i) {
    NOVA_CONTRACT(paranoid, i >= 0 && i < nbits_, "bit index out of range");
    data()[i >> 6] |= (uint64_t{1} << (i & 63));
  }
  void clear(int i) {
    NOVA_CONTRACT(paranoid, i >= 0 && i < nbits_, "bit index out of range");
    data()[i >> 6] &= ~(uint64_t{1} << (i & 63));
  }
  void assign(int i, bool v) { v ? set(i) : clear(i); }

  void set_all() {
    uint64_t* w = data();
    for (int i = 0; i < nwords_; ++i) w[i] = ~uint64_t{0};
    mask_tail();
  }
  void clear_all() {
    uint64_t* w = data();
    for (int i = 0; i < nwords_; ++i) w[i] = 0;
  }

  int count() const {
    const uint64_t* w = data();
    int c = 0;
    for (int i = 0; i < nwords_; ++i) c += __builtin_popcountll(w[i]);
    return c;
  }
  bool none() const {
    const uint64_t* w = data();
    for (int i = 0; i < nwords_; ++i) {
      if (w[i] != 0) return false;
    }
    return true;
  }
  bool any() const { return !none(); }
  bool all() const { return count() == nbits_; }

  /// Index of the lowest set bit, or -1 if none.
  int first() const {
    const uint64_t* w = data();
    for (int wi = 0; wi < nwords_; ++wi) {
      if (w[wi] != 0)
        return static_cast<int>(wi * 64 + __builtin_ctzll(w[wi]));
    }
    return -1;
  }

  /// Index of the lowest set bit at position >= i, or -1 if none.
  int next(int i) const {
    if (i >= nbits_) return -1;
    const uint64_t* words = data();
    int wi = i >> 6;
    uint64_t w = words[wi] & (~uint64_t{0} << (i & 63));
    while (true) {
      if (w != 0) return static_cast<int>(wi * 64 + __builtin_ctzll(w));
      if (++wi >= nwords_) return -1;
      w = words[wi];
    }
  }

  BitVec& operator&=(const BitVec& o) {
    NOVA_CONTRACT(cheap, nbits_ == o.nbits_, "BitVec width mismatch");
    uint64_t* a = data();
    const uint64_t* b = o.data();
    for (int i = 0; i < nwords_; ++i) a[i] &= b[i];
    return *this;
  }
  BitVec& operator|=(const BitVec& o) {
    NOVA_CONTRACT(cheap, nbits_ == o.nbits_, "BitVec width mismatch");
    uint64_t* a = data();
    const uint64_t* b = o.data();
    for (int i = 0; i < nwords_; ++i) a[i] |= b[i];
    return *this;
  }
  BitVec& operator^=(const BitVec& o) {
    NOVA_CONTRACT(cheap, nbits_ == o.nbits_, "BitVec width mismatch");
    uint64_t* a = data();
    const uint64_t* b = o.data();
    for (int i = 0; i < nwords_; ++i) a[i] ^= b[i];
    return *this;
  }
  /// Removes from *this every bit set in `o`.
  BitVec& subtract(const BitVec& o) {
    NOVA_CONTRACT(cheap, nbits_ == o.nbits_, "BitVec width mismatch");
    uint64_t* a = data();
    const uint64_t* b = o.data();
    for (int i = 0; i < nwords_; ++i) a[i] &= ~b[i];
    return *this;
  }
  /// *this |= ~o, the word-parallel core of the espresso cofactor.
  BitVec& or_not(const BitVec& o) {
    NOVA_CONTRACT(cheap, nbits_ == o.nbits_, "BitVec width mismatch");
    uint64_t* a = data();
    const uint64_t* b = o.data();
    for (int i = 0; i < nwords_; ++i) a[i] |= ~b[i];
    mask_tail();
    return *this;
  }
  void flip_all() {
    uint64_t* w = data();
    for (int i = 0; i < nwords_; ++i) w[i] = ~w[i];
    mask_tail();
  }

  friend BitVec operator&(BitVec a, const BitVec& b) { return a &= b; }
  friend BitVec operator|(BitVec a, const BitVec& b) { return a |= b; }
  friend BitVec operator^(BitVec a, const BitVec& b) { return a ^= b; }

  bool operator==(const BitVec& o) const {
    if (nbits_ != o.nbits_) return false;
    const uint64_t* a = data();
    const uint64_t* b = o.data();
    for (int i = 0; i < nwords_; ++i) {
      if (a[i] != b[i]) return false;
    }
    return true;
  }
  bool operator!=(const BitVec& o) const { return !(*this == o); }
  /// Lexicographic-by-word order; usable as a map key.
  bool operator<(const BitVec& o) const {
    if (nbits_ != o.nbits_) return nbits_ < o.nbits_;
    const uint64_t* a = data();
    const uint64_t* b = o.data();
    for (int i = 0; i < nwords_; ++i) {
      if (a[i] != b[i]) return a[i] < b[i];
    }
    return false;
  }

  /// True iff every bit of `o` is also set in *this.
  bool contains(const BitVec& o) const {
    NOVA_CONTRACT(cheap, nbits_ == o.nbits_, "BitVec width mismatch");
    const uint64_t* a = data();
    const uint64_t* b = o.data();
    for (int i = 0; i < nwords_; ++i) {
      if ((a[i] & b[i]) != b[i]) return false;
    }
    return true;
  }
  /// True iff every bit of *this is also set in `o`.
  bool subset_of(const BitVec& o) const { return o.contains(*this); }
  bool intersects(const BitVec& o) const {
    NOVA_CONTRACT(cheap, nbits_ == o.nbits_, "BitVec width mismatch");
    const uint64_t* a = data();
    const uint64_t* b = o.data();
    for (int i = 0; i < nwords_; ++i) {
      if ((a[i] & b[i]) != 0) return true;
    }
    return false;
  }
  /// True iff (*this & o & mask) is non-empty.
  bool intersects_masked(const BitVec& o, const BitVec& mask) const {
    NOVA_CONTRACT(cheap, nbits_ == o.nbits_ && nbits_ == mask.size(),
                  "BitVec width mismatch");
    const uint64_t* a = data();
    const uint64_t* b = o.data();
    const uint64_t* m = mask.data();
    for (int i = 0; i < nwords_; ++i) {
      if ((a[i] & b[i] & m[i]) != 0) return true;
    }
    return false;
  }

  std::string to_string() const {
    std::string s(nbits_, '0');
    for (int i = 0; i < nbits_; ++i) {
      if (get(i)) s[i] = '1';
    }
    return s;
  }

  size_t hash() const {
    uint64_t h = 0x9e3779b97f4a7c15ull ^ static_cast<uint64_t>(nbits_);
    const uint64_t* w = data();
    for (int i = 0; i < nwords_; ++i) {
      h ^= w[i] + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    }
    return static_cast<size_t>(h);
  }

 private:
  void mask_tail() {
    if (nbits_ % 64 != 0 && nwords_ > 0) {
      data()[nwords_ - 1] &= (~uint64_t{0}) >> (64 - (nbits_ % 64));
    }
  }
  void release() {
    if (nwords_ > kInlineWords) delete[] store_.heap;
  }

  union Store {
    uint64_t inl[kInlineWords];
    uint64_t* heap;
  };

  int nbits_ = 0;
  int nwords_ = 0;
  Store store_{{0, 0}};
};

struct BitVecHash {
  size_t operator()(const BitVec& v) const { return v.hash(); }
};

}  // namespace nova::util
