// Dynamic fixed-width bit vector used for state sets and cube storage.
//
// A BitVec owns `nbits` bits packed into 64-bit words. All bitwise
// operations require operands of the same width; this is enforced by
// NOVA_CONTRACT checks (cheap level for whole-vector operations, paranoid
// for per-bit accessors). Bits beyond `nbits` in the last word are kept
// zero as a
// class invariant, so word-level comparisons and popcounts are exact.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/contract.hpp"

namespace nova::util {

class BitVec {
 public:
  BitVec() = default;
  explicit BitVec(int nbits) : nbits_(nbits), words_((nbits + 63) / 64, 0) {
    NOVA_CONTRACT(cheap, nbits >= 0, "negative BitVec width");
  }

  /// Builds a BitVec from a 0/1 string, e.g. "1010". str[0] is bit 0.
  static BitVec from_string(const std::string& s) {
    BitVec v(static_cast<int>(s.size()));
    for (int i = 0; i < static_cast<int>(s.size()); ++i) {
      NOVA_CONTRACT(cheap, s[i] == '0' || s[i] == '1',
                    "BitVec string must be over 0/1");
      if (s[i] == '1') v.set(i);
    }
    return v;
  }

  int size() const { return nbits_; }
  bool empty_width() const { return nbits_ == 0; }

  bool get(int i) const {
    NOVA_CONTRACT(paranoid, i >= 0 && i < nbits_, "bit index out of range");
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  void set(int i) {
    NOVA_CONTRACT(paranoid, i >= 0 && i < nbits_, "bit index out of range");
    words_[i >> 6] |= (uint64_t{1} << (i & 63));
  }
  void clear(int i) {
    NOVA_CONTRACT(paranoid, i >= 0 && i < nbits_, "bit index out of range");
    words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
  }
  void assign(int i, bool v) { v ? set(i) : clear(i); }

  void set_all() {
    for (auto& w : words_) w = ~uint64_t{0};
    mask_tail();
  }
  void clear_all() {
    for (auto& w : words_) w = 0;
  }

  int count() const {
    int c = 0;
    for (uint64_t w : words_) c += __builtin_popcountll(w);
    return c;
  }
  bool none() const {
    for (uint64_t w : words_) {
      if (w != 0) return false;
    }
    return true;
  }
  bool any() const { return !none(); }
  bool all() const { return count() == nbits_; }

  /// Index of the lowest set bit, or -1 if none.
  int first() const {
    for (size_t wi = 0; wi < words_.size(); ++wi) {
      if (words_[wi] != 0)
        return static_cast<int>(wi * 64 + __builtin_ctzll(words_[wi]));
    }
    return -1;
  }

  /// Index of the lowest set bit at position >= i, or -1 if none.
  int next(int i) const {
    if (i >= nbits_) return -1;
    size_t wi = static_cast<size_t>(i) >> 6;
    uint64_t w = words_[wi] & (~uint64_t{0} << (i & 63));
    while (true) {
      if (w != 0) return static_cast<int>(wi * 64 + __builtin_ctzll(w));
      if (++wi >= words_.size()) return -1;
      w = words_[wi];
    }
  }

  BitVec& operator&=(const BitVec& o) {
    NOVA_CONTRACT(cheap, nbits_ == o.nbits_, "BitVec width mismatch");
    for (size_t i = 0; i < words_.size(); ++i) words_[i] &= o.words_[i];
    return *this;
  }
  BitVec& operator|=(const BitVec& o) {
    NOVA_CONTRACT(cheap, nbits_ == o.nbits_, "BitVec width mismatch");
    for (size_t i = 0; i < words_.size(); ++i) words_[i] |= o.words_[i];
    return *this;
  }
  BitVec& operator^=(const BitVec& o) {
    NOVA_CONTRACT(cheap, nbits_ == o.nbits_, "BitVec width mismatch");
    for (size_t i = 0; i < words_.size(); ++i) words_[i] ^= o.words_[i];
    return *this;
  }
  /// Removes from *this every bit set in `o`.
  BitVec& subtract(const BitVec& o) {
    NOVA_CONTRACT(cheap, nbits_ == o.nbits_, "BitVec width mismatch");
    for (size_t i = 0; i < words_.size(); ++i) words_[i] &= ~o.words_[i];
    return *this;
  }
  void flip_all() {
    for (auto& w : words_) w = ~w;
    mask_tail();
  }

  friend BitVec operator&(BitVec a, const BitVec& b) { return a &= b; }
  friend BitVec operator|(BitVec a, const BitVec& b) { return a |= b; }
  friend BitVec operator^(BitVec a, const BitVec& b) { return a ^= b; }

  bool operator==(const BitVec& o) const {
    return nbits_ == o.nbits_ && words_ == o.words_;
  }
  bool operator!=(const BitVec& o) const { return !(*this == o); }
  /// Lexicographic-by-word order; usable as a map key.
  bool operator<(const BitVec& o) const {
    if (nbits_ != o.nbits_) return nbits_ < o.nbits_;
    return words_ < o.words_;
  }

  /// True iff every bit of `o` is also set in *this.
  bool contains(const BitVec& o) const {
    NOVA_CONTRACT(cheap, nbits_ == o.nbits_, "BitVec width mismatch");
    for (size_t i = 0; i < words_.size(); ++i) {
      if ((words_[i] & o.words_[i]) != o.words_[i]) return false;
    }
    return true;
  }
  bool intersects(const BitVec& o) const {
    NOVA_CONTRACT(cheap, nbits_ == o.nbits_, "BitVec width mismatch");
    for (size_t i = 0; i < words_.size(); ++i) {
      if ((words_[i] & o.words_[i]) != 0) return true;
    }
    return false;
  }

  std::string to_string() const {
    std::string s(nbits_, '0');
    for (int i = 0; i < nbits_; ++i) {
      if (get(i)) s[i] = '1';
    }
    return s;
  }

  size_t hash() const {
    uint64_t h = 0x9e3779b97f4a7c15ull ^ static_cast<uint64_t>(nbits_);
    for (uint64_t w : words_) {
      h ^= w + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    }
    return static_cast<size_t>(h);
  }

 private:
  void mask_tail() {
    if (nbits_ % 64 != 0 && !words_.empty()) {
      words_.back() &= (~uint64_t{0}) >> (64 - (nbits_ % 64));
    }
  }

  int nbits_ = 0;
  std::vector<uint64_t> words_;
};

struct BitVecHash {
  size_t operator()(const BitVec& v) const { return v.hash(); }
};

}  // namespace nova::util
