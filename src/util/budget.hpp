// Cooperative anytime budgets for the NOVA pipeline.
//
// A Budget bounds a run three ways at once: a wall-clock deadline, a
// deterministic work-unit limit, and an arena-style allocation cap. The
// potentially exponential passes (espresso complement/tautology, the
// iexact branch-and-bound, embedding search) probe it cooperatively via
// charge()/checkpoint() at their inner-loop boundaries and unwind with
// their best-so-far result when it reports exhaustion -- no thread is ever
// killed and no exception is thrown by the budget itself.
//
// Determinism contract: with only a work-unit limit set, exhaustion points
// are a pure function of the charge sequence, so results are reproducible
// across machines and thread counts (restart fan-outs give every attempt
// its own fork_attempt() child so no cross-thread counter races exist).
// Deadline- and cancellation-driven exhaustion is inherently timing
// dependent; the *validity* of the result is guaranteed either way, only
// its quality varies. See docs/ROBUSTNESS.md.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdlib>

namespace nova::util {

/// Why a budget stopped the run (kNone = still within budget).
enum class BudgetStop {
  kNone,
  kDeadline,   ///< wall-clock deadline passed
  kWork,       ///< work-unit limit consumed
  kAlloc,      ///< allocation cap consumed
  kCancelled,  ///< cancel() called (possibly from another thread)
};

inline const char* budget_stop_name(BudgetStop s) {
  switch (s) {
    case BudgetStop::kNone:
      return "none";
    case BudgetStop::kDeadline:
      return "deadline";
    case BudgetStop::kWork:
      return "work";
    case BudgetStop::kAlloc:
      return "alloc";
    case BudgetStop::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

class Budget {
 public:
  using Clock = std::chrono::steady_clock;

  /// Default construction = unlimited (every probe is a cheap no-op).
  Budget() = default;

  /// Budgets are charged single-threaded within one attempt; copying one
  /// copies limits and counters (used by fork_attempt()).
  Budget(const Budget& o) { copy_from(o); }
  Budget& operator=(const Budget& o) {
    if (this != &o) copy_from(o);
    return *this;
  }

  /// Budget requested by the environment: NOVA_DEADLINE_MS (wall-clock
  /// milliseconds from now) and NOVA_WORK_BUDGET (work units). Unset or
  /// non-positive values leave that dimension unlimited.
  static Budget from_env() {
    Budget b;
    if (const char* v = std::getenv("NOVA_DEADLINE_MS")) {
      long ms = std::atol(v);
      if (ms > 0) b.set_deadline_ms(ms);
    }
    if (const char* v = std::getenv("NOVA_WORK_BUDGET")) {
      long units = std::atol(v);
      if (units > 0) b.set_work_limit(units);
    }
    return b;
  }

  void set_deadline(Clock::time_point t) {
    deadline_ = t;
    has_deadline_ = true;
  }
  void set_deadline_ms(long ms) {
    set_deadline(Clock::now() + std::chrono::milliseconds(ms));
  }
  void set_work_limit(long units) { work_limit_ = units; }
  void set_alloc_limit(long bytes) { alloc_limit_ = bytes; }

  /// True when any dimension is bounded: an unlimited budget behaves
  /// exactly like passing no budget at all.
  bool limited() const {
    return has_deadline_ || work_limit_ >= 0 || alloc_limit_ >= 0;
  }

  /// Charges `units` of work. Returns true while the run may continue;
  /// false once the budget is exhausted (sticky). The wall clock is probed
  /// only every kDeadlineStride charges so the per-unit cost stays a few
  /// arithmetic ops.
  bool charge(long units = 1) {
    if (stop_.load(std::memory_order_relaxed) != BudgetStop::kNone)
      return false;
    work_used_ += units;
    if (work_limit_ >= 0 && work_used_ > work_limit_) {
      trip(BudgetStop::kWork);
      return false;
    }
    if (has_deadline_ && (work_used_ - last_clock_probe_) >= kDeadlineStride)
      return probe_deadline();
    return true;
  }

  /// Charges `bytes` against the allocation cap; same contract as charge().
  bool charge_alloc(long bytes) {
    if (stop_.load(std::memory_order_relaxed) != BudgetStop::kNone)
      return false;
    alloc_used_ += bytes;
    if (alloc_limit_ >= 0 && alloc_used_ > alloc_limit_) {
      trip(BudgetStop::kAlloc);
      return false;
    }
    return true;
  }

  /// Work-free probe: checks the deadline and the sticky exhausted flag.
  /// True while the run may continue. Use at phase boundaries where no
  /// natural work unit applies.
  bool checkpoint() {
    if (stop_.load(std::memory_order_relaxed) != BudgetStop::kNone)
      return false;
    if (has_deadline_) return probe_deadline(/*force=*/true);
    return true;
  }

  /// Cooperative cancellation: trips the budget from any thread; every
  /// subsequent charge()/checkpoint() in the owning run returns false.
  void cancel() { trip(BudgetStop::kCancelled); }

  /// Fault-injection / external trip with an explicit reason.
  void force_exhaust(BudgetStop why) { trip(why); }

  bool exhausted() const {
    return stop_.load(std::memory_order_relaxed) != BudgetStop::kNone;
  }
  BudgetStop stop_reason() const {
    return stop_.load(std::memory_order_relaxed);
  }

  long work_used() const { return work_used_; }
  long work_limit() const { return work_limit_; }
  long alloc_used() const { return alloc_used_; }

  /// Child budget for one restart attempt of a deterministic fan-out: same
  /// deadline and the full work/alloc limits, fresh counters. Each attempt
  /// charging its own child keeps work exhaustion a pure function of the
  /// attempt index -- byte-identical results at any thread count.
  Budget fork_attempt() const {
    Budget b;
    b.has_deadline_ = has_deadline_;
    b.deadline_ = deadline_;
    b.work_limit_ = work_limit_;
    b.alloc_limit_ = alloc_limit_;
    if (exhausted()) b.trip(stop_reason());
    return b;
  }

 private:
  // One clock read per this many charged units keeps deadline probing off
  // the critical path without letting overshoot grow past ~microseconds of
  // inner-loop work.
  static constexpr long kDeadlineStride = 256;

  bool probe_deadline(bool force = false) {
    (void)force;
    last_clock_probe_ = work_used_;
    if (Clock::now() >= deadline_) {
      trip(BudgetStop::kDeadline);
      return false;
    }
    return true;
  }

  void trip(BudgetStop why) {
    BudgetStop expect = BudgetStop::kNone;
    stop_.compare_exchange_strong(expect, why, std::memory_order_relaxed);
  }

  void copy_from(const Budget& o) {
    has_deadline_ = o.has_deadline_;
    deadline_ = o.deadline_;
    work_limit_ = o.work_limit_;
    alloc_limit_ = o.alloc_limit_;
    work_used_ = o.work_used_;
    alloc_used_ = o.alloc_used_;
    last_clock_probe_ = o.last_clock_probe_;
    stop_.store(o.stop_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
  }

  bool has_deadline_ = false;
  Clock::time_point deadline_{};
  long work_limit_ = -1;   ///< < 0 = unlimited
  long alloc_limit_ = -1;  ///< < 0 = unlimited
  long work_used_ = 0;
  long alloc_used_ = 0;
  long last_clock_probe_ = 0;
  // The only cross-thread slot: cancel()/force_exhaust() may trip from
  // another thread while the owner charges.
  std::atomic<BudgetStop> stop_{BudgetStop::kNone};
};

/// Convenience for optional-budget call sites: probes stay one branch when
/// no budget was supplied.
inline bool budget_charge(Budget* b, long units = 1) {
  return b == nullptr || b->charge(units);
}
inline bool budget_ok(Budget* b) {
  return b == nullptr || !b->exhausted();
}

}  // namespace nova::util
