// Structured phase results for the anytime pipeline: instead of throwing
// or spinning, a budget-aware entry point reports how it finished and the
// best result it can stand behind. A usable() outcome always carries a
// valid value -- "degraded" and "budget_exhausted" mean lower quality, not
// lower correctness. Only kFailed outcomes carry no value.
#pragma once

#include <string>
#include <utility>

#include "util/budget.hpp"

namespace nova::util {

enum class Status {
  kOk,               ///< completed within budget
  kBudgetExhausted,  ///< budget ran out; value is the best-so-far result
  kDegraded,         ///< a fallback path produced the value
  kFailed,           ///< no valid value could be produced
};

inline const char* status_name(Status s) {
  switch (s) {
    case Status::kOk:
      return "ok";
    case Status::kBudgetExhausted:
      return "budget_exhausted";
    case Status::kDegraded:
      return "degraded";
    case Status::kFailed:
      return "failed";
  }
  return "unknown";
}

template <typename T>
struct Outcome {
  Status status = Status::kOk;
  T value{};           ///< meaningful iff usable()
  std::string detail;  ///< human-readable cause (downgrades, faults, ...)
  BudgetStop stop = BudgetStop::kNone;  ///< which budget dimension tripped

  bool ok() const { return status == Status::kOk; }
  /// True when `value` is valid (possibly lower quality than requested).
  bool usable() const { return status != Status::kFailed; }

  static Outcome success(T v) {
    Outcome o;
    o.value = std::move(v);
    return o;
  }
  static Outcome failure(std::string why) {
    Outcome o;
    o.status = Status::kFailed;
    o.detail = std::move(why);
    return o;
  }
};

}  // namespace nova::util
