// Deterministic, seedable pseudo-random generator (xoshiro256**).
//
// Every randomized algorithm in the library takes an explicit seed so that
// benchmark tables are reproducible run to run; std::mt19937 is avoided only
// to keep the state small and the header self-contained.
#pragma once

#include <cstdint>

namespace nova::util {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eed5eed5eedULL) {
    // splitmix64 seeding
    uint64_t x = seed;
    for (auto& si : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      si = z ^ (z >> 31);
    }
  }

  uint64_t next() {
    auto rotl = [](uint64_t v, int k) { return (v << k) | (v >> (64 - k)); };
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n). n must be > 0.
  int uniform(int n) { return static_cast<int>(next() % static_cast<uint64_t>(n)); }

  /// Uniform double in [0, 1).
  double uniform01() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  bool chance(double p) { return uniform01() < p; }

  template <typename Vec>
  void shuffle(Vec& v) {
    for (int i = static_cast<int>(v.size()) - 1; i > 0; --i) {
      int j = uniform(i + 1);
      std::swap(v[i], v[j]);
    }
  }

 private:
  uint64_t s_[4];
};

}  // namespace nova::util
