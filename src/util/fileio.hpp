// Durable file writes for journals, reports, and batch outputs.
//
// write_file_atomic writes to "<path>.tmp", fsyncs the data, renames over
// the destination, and fsyncs the containing directory: a crash at any
// point leaves either the previous complete file or the new complete file,
// never a truncated one. All report/journal writers in the tree go through
// this helper (see docs/SERVING.md "Durability").
#pragma once

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <string>

namespace nova::util {

namespace detail {

/// write(2) until everything is on its way to the kernel; false on error.
inline bool write_all(int fd, const char* data, size_t size) {
  while (size > 0) {
    ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<size_t>(n);
  }
  return true;
}

/// Best-effort fsync of the directory containing `path` so the rename
/// itself is durable (ignored on filesystems that reject directory fds).
inline void fsync_parent_dir(const std::string& path) {
  auto slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  if (dir.empty()) dir = "/";
  int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

}  // namespace detail

/// mkdir -p: creates `path` and any missing parents. True when the
/// directory exists on return.
inline bool ensure_dir(const std::string& path) {
  if (path.empty()) return false;
  std::string prefix;
  size_t pos = 0;
  while (pos <= path.size()) {
    size_t slash = path.find('/', pos);
    prefix = slash == std::string::npos ? path : path.substr(0, slash);
    if (!prefix.empty() && ::mkdir(prefix.c_str(), 0755) != 0 &&
        errno != EEXIST)
      return false;
    if (slash == std::string::npos) break;
    pos = slash + 1;
  }
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

/// Atomically replaces `path` with `text` (tmp file + fsync + rename).
/// Returns false on any I/O error; the destination is untouched on failure.
inline bool write_file_atomic(const std::string& path,
                              const std::string& text) {
  std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                  0644);
  if (fd < 0) return false;
  bool ok = detail::write_all(fd, text.data(), text.size());
  if (ok && ::fsync(fd) != 0) ok = false;
  if (::close(fd) != 0) ok = false;
  if (!ok) {
    ::unlink(tmp.c_str());
    return false;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  detail::fsync_parent_dir(path);
  return true;
}

}  // namespace nova::util
