// Algebraic (weak-division) multilevel optimization: the MIS-II substitute
// used to reproduce the paper's Table VII literal counts.
//
// Representation: a literal is an integer id (2*var + phase for the
// original binary variables; ids >= 2*num_vars denote intermediate divisor
// nodes, positive phase only); a cube is a sorted vector of literals; an
// SOP is a vector of cubes. All algorithms are the textbook algebraic ones:
// weak division, kernel extraction, recursive factoring, and greedy shared
// divisor extraction across a multi-output network.
#pragma once

#include <vector>

namespace nova::mlopt {

using Lit = int;
using CubeL = std::vector<Lit>;  ///< sorted, duplicate-free
using Sop = std::vector<CubeL>;  ///< sum of cubes

/// Sorts literals and removes duplicate cubes; the canonical form.
Sop normalize(Sop f);

long sop_literals(const Sop& f);

/// Weak (algebraic) division f / d. Returns the quotient; *remainder (when
/// non-null) receives f - quotient*d. Empty quotient = division failed.
Sop divide(const Sop& f, const Sop& d, Sop* remainder = nullptr);

/// The largest cube dividing every cube of f (the common cube).
CubeL common_cube(const Sop& f);

/// True iff no single literal appears in every cube.
bool cube_free(const Sop& f);

/// All kernels of f (cube-free quotients of f by cubes), including f itself
/// when it is cube-free. Bounded at `max_kernels` to keep runtimes sane.
std::vector<Sop> kernels(const Sop& f, int max_kernels = 64);

/// Literal count of a good factored form of f (recursive factoring with
/// best-value kernel divisors).
long factored_literals(const Sop& f);

struct NetworkResult {
  long literals = 0;    ///< total factored literals of all nodes
  int divisors = 0;     ///< intermediate nodes introduced
  long sop_lits = 0;    ///< flat SOP literals before optimization
};

/// Greedy shared-kernel extraction over a multi-output network followed by
/// per-node factoring. `num_vars` is the number of original binary
/// variables (ids < 2*num_vars).
NetworkResult optimize_network(std::vector<Sop> outputs, int num_vars,
                               int max_iterations = 30);

}  // namespace nova::mlopt
