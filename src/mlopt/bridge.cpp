#include "mlopt/bridge.hpp"

namespace nova::mlopt {

std::vector<Sop> sops_from_cover(const logic::Cover& g, int num_binary_vars,
                                 int num_outputs) {
  const logic::CubeSpec& spec = g.spec();
  const int ov = spec.num_vars() - 1;
  std::vector<Sop> out(num_outputs);
  for (const auto& c : g) {
    CubeL lits;
    for (int v = 0; v < num_binary_vars; ++v) {
      bool v0 = c.get(spec.bit(v, 0));
      bool v1 = c.get(spec.bit(v, 1));
      if (v0 && !v1) lits.push_back(2 * v);
      if (v1 && !v0) lits.push_back(2 * v + 1);
    }
    for (int j = 0; j < num_outputs && j < spec.size(ov); ++j) {
      if (c.get(spec.bit(ov, j))) out[j].push_back(lits);
    }
  }
  for (auto& f : out) f = normalize(std::move(f));
  return out;
}

}  // namespace nova::mlopt
