// Conversion from the two-level library's covers to the algebraic SOP
// representation used by the multilevel optimizer.
#pragma once

#include "logic/cover.hpp"
#include "mlopt/algebraic.hpp"

namespace nova::mlopt {

/// Per-output SOPs of a minimized multi-output cover whose first
/// `num_binary_vars` variables are binary and whose last variable is the
/// output characteristic variable. Literal ids: 2*v for "variable v is 0",
/// 2*v+1 for "variable v is 1".
std::vector<Sop> sops_from_cover(const logic::Cover& g, int num_binary_vars,
                                 int num_outputs);

}  // namespace nova::mlopt
