#include "mlopt/algebraic.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace nova::mlopt {

namespace {

bool cube_contains(const CubeL& big, const CubeL& small) {
  return std::includes(big.begin(), big.end(), small.begin(), small.end());
}

CubeL cube_minus(const CubeL& a, const CubeL& b) {
  CubeL r;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(r));
  return r;
}

CubeL cube_intersect(const CubeL& a, const CubeL& b) {
  CubeL r;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(r));
  return r;
}

}  // namespace

Sop normalize(Sop f) {
  for (auto& c : f) {
    std::sort(c.begin(), c.end());
    c.erase(std::unique(c.begin(), c.end()), c.end());
  }
  std::sort(f.begin(), f.end());
  f.erase(std::unique(f.begin(), f.end()), f.end());
  return f;
}

long sop_literals(const Sop& f) {
  long n = 0;
  for (const auto& c : f) n += static_cast<long>(c.size());
  return n;
}

Sop divide(const Sop& f, const Sop& d, Sop* remainder) {
  if (d.empty()) return {};
  // Quotient = intersection over divisor cubes of { c \ dk : dk subset c }.
  std::vector<CubeL> q;
  bool first = true;
  for (const auto& dk : d) {
    std::vector<CubeL> cand;
    for (const auto& c : f) {
      if (cube_contains(c, dk)) cand.push_back(cube_minus(c, dk));
    }
    std::sort(cand.begin(), cand.end());
    if (first) {
      q = std::move(cand);
      first = false;
    } else {
      std::vector<CubeL> inter;
      std::set_intersection(q.begin(), q.end(), cand.begin(), cand.end(),
                            std::back_inserter(inter));
      q = std::move(inter);
    }
    if (q.empty()) break;
  }
  if (remainder) {
    // r = f - q*d
    std::set<CubeL> product;
    for (const auto& qc : q) {
      for (const auto& dk : d) {
        CubeL m = qc;
        m.insert(m.end(), dk.begin(), dk.end());
        std::sort(m.begin(), m.end());
        m.erase(std::unique(m.begin(), m.end()), m.end());
        product.insert(std::move(m));
      }
    }
    remainder->clear();
    for (const auto& c : f) {
      if (!product.count(c)) remainder->push_back(c);
    }
  }
  return q;
}

CubeL common_cube(const Sop& f) {
  if (f.empty()) return {};
  CubeL c = f[0];
  for (size_t i = 1; i < f.size() && !c.empty(); ++i)
    c = cube_intersect(c, f[i]);
  return c;
}

bool cube_free(const Sop& f) { return common_cube(f).empty(); }

namespace {

void kernels_rec(const Sop& f, Lit min_lit, std::set<Sop>& out,
                 int max_kernels) {
  if (static_cast<int>(out.size()) >= max_kernels) return;
  // Literal occurrence counts.
  std::map<Lit, int> occ;
  for (const auto& c : f) {
    for (Lit l : c) ++occ[l];
  }
  for (const auto& [l, cnt] : occ) {
    if (cnt < 2 || l < min_lit) continue;
    // Cofactor: cubes containing l, with l removed.
    Sop co;
    for (const auto& c : f) {
      if (std::binary_search(c.begin(), c.end(), l))
        co.push_back(cube_minus(c, {l}));
    }
    CubeL cc = common_cube(co);
    // Avoid duplicates: skip if the common cube has a literal before l.
    if (!cc.empty() && cc.front() < l) continue;
    Sop kern;
    for (const auto& c : co) kern.push_back(cube_minus(c, cc));
    kern = normalize(std::move(kern));
    if (kern.size() >= 2 && out.insert(kern).second) {
      kernels_rec(kern, l + 1, out, max_kernels);
      if (static_cast<int>(out.size()) >= max_kernels) return;
    }
  }
}

}  // namespace

std::vector<Sop> kernels(const Sop& f, int max_kernels) {
  std::set<Sop> out;
  Sop fn = normalize(f);
  kernels_rec(fn, 0, out, max_kernels);
  if (cube_free(fn) && fn.size() >= 2) out.insert(fn);
  return {out.begin(), out.end()};
}

long factored_literals(const Sop& f0) {
  Sop f = normalize(f0);
  if (f.empty()) return 0;
  if (f.size() == 1) return static_cast<long>(f[0].size());
  // Pull out the common cube: f = c * (f/c).
  CubeL cc = common_cube(f);
  if (!cc.empty()) {
    Sop core;
    for (const auto& c : f) core.push_back(cube_minus(c, cc));
    return static_cast<long>(cc.size()) + factored_literals(core);
  }
  // Choose the best kernel divisor by immediate saving.
  auto ks = kernels(f, 32);
  long best_saving = 0;
  Sop best_q, best_d, best_r;
  const long flits = sop_literals(f);
  for (const auto& d : ks) {
    if (d.size() == f.size() && normalize(d) == f) continue;  // f itself
    Sop r;
    Sop q = divide(f, d, &r);
    if (q.empty() || (q.size() == 1 && q[0].empty())) continue;
    long after = sop_literals(q) + sop_literals(d) + sop_literals(r);
    long saving = flits - after;
    if (saving > best_saving) {
      best_saving = saving;
      best_q = q;
      best_d = d;
      best_r = r;
    }
  }
  if (best_saving <= 0) return flits;  // no useful algebraic structure left
  long total = factored_literals(best_q) + factored_literals(best_d);
  if (!best_r.empty()) total += factored_literals(best_r);
  return total;
}

NetworkResult optimize_network(std::vector<Sop> outputs, int num_vars,
                               int max_iterations) {
  NetworkResult res;
  for (auto& f : outputs) {
    f = normalize(std::move(f));
    res.sop_lits += sop_literals(f);
  }
  Lit next_id = 2 * num_vars;

  for (int iter = 0; iter < max_iterations; ++iter) {
    // Collect candidate divisors (kernels) from every node.
    std::set<Sop> cands;
    for (const auto& f : outputs) {
      for (auto& k : kernels(f, 24)) cands.insert(std::move(k));
    }
    // Greedy: pick the divisor with the best total saving.
    long best_total = 0;
    Sop best_d;
    for (const auto& d : cands) {
      if (d.size() < 2) continue;
      long total = -sop_literals(d);  // cost of materializing the divisor
      for (const auto& f : outputs) {
        Sop r;
        Sop q = divide(f, d, &r);
        if (q.empty()) continue;
        long before = sop_literals(f);
        long after = sop_literals(q) + static_cast<long>(q.size()) +
                     sop_literals(r);
        if (after < before) total += before - after;
      }
      if (total > best_total) {
        best_total = total;
        best_d = d;
      }
    }
    if (best_total <= 0) break;
    // Substitute: f -> q*t + r in every node that gains.
    Lit t = next_id;
    next_id += 2;
    for (auto& f : outputs) {
      Sop r;
      Sop q = divide(f, best_d, &r);
      if (q.empty()) continue;
      long before = sop_literals(f);
      long after =
          sop_literals(q) + static_cast<long>(q.size()) + sop_literals(r);
      if (after >= before) continue;
      Sop nf = r;
      for (auto qc : q) {
        qc.push_back(t);
        std::sort(qc.begin(), qc.end());
        nf.push_back(std::move(qc));
      }
      f = normalize(std::move(nf));
    }
    outputs.push_back(normalize(best_d));
    ++res.divisors;
  }

  for (const auto& f : outputs) res.literals += factored_literals(f);
  return res;
}

}  // namespace nova::mlopt
