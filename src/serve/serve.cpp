#include "serve/serve.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "bench_data/benchmarks.hpp"
#include "check/faultinject.hpp"
#include "fsm/kiss_io.hpp"
#include "nova/robust.hpp"
#include "obs/obs.hpp"
#include "serve/drain.hpp"
#include "util/fileio.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace nova::serve {

namespace {

uint64_t fnv1a_u64(const std::string& text) {
  uint64_t h = 14695981039346656037ULL;
  for (unsigned char c : text) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

fsm::Fsm load_spec(const std::string& spec) {
  std::ifstream probe(spec);
  if (probe.good()) return fsm::parse_kiss_file(spec);
  return bench_data::load_benchmark(spec);
}

/// Journal appends are retried once: the only in-tree failure mode is the
/// fire-once "serve.journal" probe, and a transient fsync error should not
/// take the batch down either. A second failure is counted and skipped —
/// the journal degrades to best-effort rather than sinking jobs.
template <typename F>
void journal_safely(F&& f) {
  try {
    f();
  } catch (...) {
    obs::counter_add("serve.journal_retries");
    try {
      f();
    } catch (...) {
      obs::counter_add("serve.journal_errors");
    }
  }
}

struct AttemptOutcome {
  bool usable = false;
  bool ok = false;   ///< status == kOk
  std::string text;  ///< .code output (usable only)
  std::string digest;
  std::string note;
  long area = 0;
  int nbits = 0;
  int cubes = 0;
};

std::string render_output(const JobSpec& job, const fsm::Fsm& f,
                          const driver::RobustResult& rr) {
  std::string out;
  char head[256];
  std::snprintf(head, sizeof(head),
                "# %s spec=%s alg=%s states=%d nbits=%d cubes=%d area=%ld\n",
                job.id.c_str(), job.spec.c_str(),
                algorithm_name(job.algorithm), f.num_states(),
                rr.nova.metrics.nbits, rr.nova.metrics.cubes,
                rr.nova.metrics.area);
  out += head;
  for (int s = 0; s < f.num_states(); ++s) {
    out += ".code ";
    out += f.state_name(s);
    out += ' ';
    out += rr.nova.enc.code_string(s);
    out += '\n';
  }
  return out;
}

AttemptOutcome run_attempt(const JobSpec& job, const BatchOptions& opts,
                           util::Budget* jb, bool safe_mode) {
  AttemptOutcome ao;
  try {
    check::fault::point("serve.job", jb);
    fsm::Fsm f = load_spec(job.spec);
    driver::NovaOptions nopts;
    nopts.algorithm = job.algorithm;
    nopts.nbits = job.nbits;
    nopts.seed = job.seed;
    nopts.trace = false;  // the worker's ambient session collects
    nopts.budget = jb;
    driver::RobustOptions ropts;
    ropts.verify = opts.verify;
    ropts.budget_from_env = false;
    auto out = driver::encode_fsm_robust(f, nopts, ropts);
    if (!out.usable()) {
      ao.note = out.detail.empty() ? "no usable encoding" : out.detail;
      return ao;
    }
    ao.usable = true;
    ao.ok = out.ok() && !safe_mode;
    ao.note = safe_mode ? "safe mode" : out.detail;
    ao.area = out.value.nova.metrics.area;
    ao.nbits = out.value.nova.metrics.nbits;
    ao.cubes = out.value.nova.metrics.cubes;
    ao.text = render_output(job, f, out.value);
    ao.digest = fnv1a_hex(ao.text);
  } catch (const std::exception& e) {
    ao.note = e.what();
  } catch (...) {
    ao.note = "unknown error";
  }
  return ao;
}

const char* const kFaultKinds[] = {"error", "alloc", "timeout"};

}  // namespace

const char* algorithm_name(driver::Algorithm a) {
  switch (a) {
    case driver::Algorithm::kIExact:
      return "iexact";
    case driver::Algorithm::kIHybrid:
      return "ihybrid";
    case driver::Algorithm::kIGreedy:
      return "igreedy";
    case driver::Algorithm::kIoHybrid:
      return "iohybrid";
    case driver::Algorithm::kIoVariant:
      return "iovariant";
    case driver::Algorithm::kKiss:
      return "kiss";
    case driver::Algorithm::kMustangFanout:
      return "mustang-p";
    case driver::Algorithm::kMustangFanin:
      return "mustang-n";
    case driver::Algorithm::kRandom:
      return "random";
  }
  return "unknown";
}

bool parse_algorithm(const std::string& name, driver::Algorithm* out) {
  using driver::Algorithm;
  static const std::pair<const char*, Algorithm> kMap[] = {
      {"iexact", Algorithm::kIExact},
      {"ihybrid", Algorithm::kIHybrid},
      {"igreedy", Algorithm::kIGreedy},
      {"iohybrid", Algorithm::kIoHybrid},
      {"iovariant", Algorithm::kIoVariant},
      {"kiss", Algorithm::kKiss},
      {"mustang-p", Algorithm::kMustangFanout},
      {"mustang-n", Algorithm::kMustangFanin},
      {"random", Algorithm::kRandom},
  };
  for (const auto& [n, a] : kMap) {
    if (name == n) {
      *out = a;
      return true;
    }
  }
  return false;
}

const char* job_state_name(JobState s) {
  switch (s) {
    case JobState::kPending:
      return "pending";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
    case JobState::kDegraded:
      return "degraded";
  }
  return "unknown";
}

std::vector<JobSpec> parse_manifest(const std::string& text,
                                    driver::Algorithm default_alg,
                                    std::string* err) {
  std::vector<JobSpec> jobs;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  auto fail = [&](const std::string& why) {
    if (err != nullptr)
      *err = "manifest line " + std::to_string(lineno) + ": " + why;
    return std::vector<JobSpec>{};
  };
  while (std::getline(in, line)) {
    ++lineno;
    auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream toks(line);
    std::string spec;
    if (!(toks >> spec)) continue;  // blank / comment-only line
    JobSpec job;
    job.spec = spec;
    job.algorithm = default_alg;
    job.index = static_cast<int>(jobs.size());
    std::string tok;
    while (toks >> tok) {
      auto eq = tok.find('=');
      if (eq == std::string::npos || eq == 0)
        return fail("expected key=value, got '" + tok + "'");
      std::string key = tok.substr(0, eq);
      std::string val = tok.substr(eq + 1);
      if (key == "alg" || key == "algorithm") {
        if (!parse_algorithm(val, &job.algorithm))
          return fail("unknown algorithm '" + val + "'");
      } else if (key == "nbits") {
        job.nbits = std::atoi(val.c_str());
      } else if (key == "seed") {
        job.seed = std::strtoull(val.c_str(), nullptr, 10);
      } else if (key == "class") {
        job.cls = val;
      } else {
        return fail("unknown key '" + key + "'");
      }
    }
    if (job.cls.empty()) job.cls = job.spec;
    // Job id: manifest position + sanitized basename stem, unique even when
    // the same machine appears many times (soak manifests repeat names).
    std::string stem = job.spec;
    if (auto slash = stem.find_last_of('/'); slash != std::string::npos)
      stem = stem.substr(slash + 1);
    if (auto dot = stem.find_last_of('.'); dot != std::string::npos && dot > 0)
      stem = stem.substr(0, dot);
    for (char& c : stem) {
      if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
          c != '-')
        c = '_';
    }
    char id[64];
    std::snprintf(id, sizeof(id), "%04d-%s", job.index,
                  stem.empty() ? "job" : stem.c_str());
    job.id = id;
    jobs.push_back(std::move(job));
  }
  return jobs;
}

std::vector<JobSpec> parse_manifest_file(const std::string& path,
                                         driver::Algorithm default_alg) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read manifest " + path);
  std::stringstream ss;
  ss << in.rdbuf();
  std::string err;
  auto jobs = parse_manifest(ss.str(), default_alg, &err);
  if (jobs.empty() && !err.empty()) throw std::runtime_error(err);
  return jobs;
}

std::string manifest_digest(const std::vector<JobSpec>& jobs) {
  std::string canon;
  for (const JobSpec& j : jobs) {
    canon += j.spec;
    canon += '|';
    canon += algorithm_name(j.algorithm);
    canon += '|';
    canon += std::to_string(j.nbits);
    canon += '|';
    canon += std::to_string(j.seed);
    canon += '|';
    canon += j.cls;
    canon += '\n';
  }
  return fnv1a_hex(canon);
}

std::string BatchResult::concatenated_outputs() const {
  std::string out;
  for (const JobResult& j : jobs) {
    if (j.state == JobState::kDone || j.state == JobState::kDegraded)
      out += j.output;
  }
  return out;
}

namespace {

struct Task {
  int job = 0;
  int attempt = 1;
  long ready_at = 0;
  bool safe_mode = false;
};

/// Shared scheduler state; guards the queue, the virtual clock, the
/// breakers, and the per-job results while the pool runs.
struct Sched {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Task> ready;
  std::vector<Task> delayed;
  int running = 0;
  long clock = 0;       ///< virtual time: +1 per attempt, fast-forwarded
  bool closed = false;  ///< drain: admit nothing more
  int completed = 0;
  int retries = 0;
  int breaker_trips = 0;
  std::vector<std::pair<std::string, CircuitBreaker>> breakers;
  std::vector<util::Budget*> active;  ///< budgets of in-flight attempts

  CircuitBreaker& breaker(const std::string& cls, const BatchOptions& o) {
    for (auto& [c, b] : breakers) {
      if (c == cls) return b;
    }
    breakers.emplace_back(
        cls, CircuitBreaker(o.breaker_threshold, o.breaker_cooldown_units));
    return breakers.back().second;
  }
};

}  // namespace

obs::Json batch_report_json(const BatchResult& res,
                            const BatchOptions& opts) {
  obs::Json doc = obs::Json::object();
  doc.set("version", 1);
  doc.set("drained", res.drained);
  obs::Json totals = obs::Json::object();
  totals.set("jobs", static_cast<int>(res.jobs.size()));
  totals.set("done", res.done);
  totals.set("failed", res.failed);
  totals.set("degraded", res.degraded);
  totals.set("pending", res.pending);
  totals.set("retries", res.retries);
  totals.set("breaker_trips", res.breaker_trips);
  totals.set("resume_skipped", res.resumed_skips);
  doc.set("totals", std::move(totals));
  doc.set("virtual_units", res.virtual_units);
  doc.set("seconds", res.seconds);
  if (res.report) {
    obs::Json counters = obs::Json::object();
    for (const auto& [name, value] : res.report->counters())
      counters.set(name, value);
    doc.set("counters", std::move(counters));
  }
  obs::Json jobs = obs::Json::array();
  for (const JobResult& j : res.jobs) {
    obs::Json e = obs::Json::object();
    e.set("id", j.spec.id);
    e.set("spec", j.spec.spec);
    e.set("class", j.spec.cls);
    e.set("state", job_state_name(j.state));
    e.set("resumed_skip", j.resumed_skip);
    e.set("attempts", j.attempts);
    if (j.backoff_units > 0) e.set("backoff_units", j.backoff_units);
    if (!j.digest.empty()) e.set("digest", j.digest);
    if (!j.note.empty()) e.set("note", j.note);
    if (!j.output_path.empty()) e.set("output", j.output_path);
    if (j.state == JobState::kDone || j.state == JobState::kDegraded) {
      e.set("area", j.area);
      e.set("nbits", j.nbits);
      e.set("cubes", j.cubes);
    }
    e.set("seconds", j.seconds);
    if (opts.keep_sub_reports && !j.counters.empty()) {
      obs::Json c = obs::Json::object();
      for (const auto& [name, value] : j.counters) c.set(name, value);
      e.set("counters", std::move(c));
    }
    jobs.push_back(std::move(e));
  }
  doc.set("jobs", std::move(jobs));
  obs::Json traj = obs::Json::array();
  for (const auto& [secs, done] : res.trajectory) {
    obs::Json p = obs::Json::object();
    p.set("seconds", secs);
    p.set("done", done);
    traj.push_back(std::move(p));
  }
  doc.set("throughput", std::move(traj));
  return doc;
}

BatchResult run_batch(const std::vector<JobSpec>& jobs,
                      const BatchOptions& opts) {
  BatchResult res;
  res.jobs.resize(jobs.size());
  for (size_t i = 0; i < jobs.size(); ++i) res.jobs[i].spec = jobs[i];
  res.report = std::make_shared<obs::Report>();
  obs::TraceSession main_session(*res.report);
  obs::Span batch_span("serve.batch");
  const double t0 = now_seconds();

  long job_delay_ms = opts.job_delay_ms;
  if (job_delay_ms < 0) {
    job_delay_ms = 0;
    if (const char* v = std::getenv("NOVA_SERVE_JOB_DELAY_MS")) {
      long parsed = std::atol(v);
      if (parsed > 0) job_delay_ms = parsed;
    }
  }

  // --- resume: fold the journal and mark terminal jobs as skipped ---
  std::vector<bool> skip(jobs.size(), false);
  if (opts.resume && !opts.journal_path.empty()) {
    ReplayResult rep = replay_journal(opts.journal_path);
    if (!rep.clean())
      throw std::runtime_error("resume: journal " + opts.journal_path +
                               " is corrupt: " + rep.errors.front());
    const std::string digest = manifest_digest(jobs);
    if (!rep.manifest_digest.empty() && rep.manifest_digest != digest)
      std::fprintf(stderr,
                   "serve: warning: resuming with a different manifest "
                   "(journal %s, current %s); matching job ids only\n",
                   rep.manifest_digest.c_str(), digest.c_str());
    for (size_t i = 0; i < jobs.size(); ++i) {
      const JobJournalState* st = rep.find(jobs[i].id);
      if (st == nullptr || st->terminal.empty()) continue;
      // Drain-degraded jobs were cut short deliberately: re-run them.
      if (st->terminal == "degraded" && st->cause == "drain") continue;
      JobResult& jr = res.jobs[i];
      if (st->terminal != "failed" && !opts.out_dir.empty()) {
        // Prove the recorded output still exists byte-identically.
        std::string path = opts.out_dir + "/" + jobs[i].id + ".code";
        std::ifstream in(path, std::ios::binary);
        std::stringstream ss;
        if (in) ss << in.rdbuf();
        std::string text = ss.str();
        if (!in || fnv1a_hex(text) != st->digest) {
          obs::counter_add("serve.resume_digest_mismatch");
          continue;  // journal says done but the bytes are gone: re-run
        }
        jr.output = std::move(text);
        jr.output_path = path;
      }
      jr.state = st->terminal == "done"     ? JobState::kDone
                 : st->terminal == "failed" ? JobState::kFailed
                                            : JobState::kDegraded;
      jr.resumed_skip = true;
      jr.digest = st->digest;
      jr.note = st->cause;
      jr.attempts = st->attempts;
      skip[i] = true;
      ++res.resumed_skips;
      obs::counter_add("serve.resume_skipped");
    }
  }

  if (!opts.out_dir.empty() && !util::ensure_dir(opts.out_dir))
    throw std::runtime_error("cannot create output directory " +
                             opts.out_dir);

  Journal journal;
  if (!opts.journal_path.empty()) {
    journal.open(opts.journal_path);
    journal_safely([&] {
      journal.record_batch(manifest_digest(jobs),
                           static_cast<int>(jobs.size()), opts.resume);
    });
  }

  Sched sched;
  for (size_t i = 0; i < jobs.size(); ++i) {
    if (skip[i]) continue;
    journal_safely(
        [&] { journal.record_queued(jobs[i].id, jobs[i].cls); });
    obs::counter_add("serve.jobs_queued");
    sched.ready.push_back(Task{static_cast<int>(i), 1, 0, false});
  }

  // --- drain watcher: turns the sticky drain flag (or batch-budget
  // exhaustion) into queue closure + cancellation of in-flight budgets.
  // Runs until the pool is done; polling at 1 ms is far below job
  // granularity. The signal handler itself never touches locks.
  std::atomic<bool> pool_done{false};
  bool drain_recorded = false;
  std::thread watcher([&] {
    while (!pool_done.load(std::memory_order_relaxed)) {
      bool drain = drain_requested();
      if (!drain && opts.budget != nullptr && !opts.budget->checkpoint())
        drain = true;
      if (drain) {
        std::lock_guard<std::mutex> lock(sched.mu);
        sched.closed = true;
        for (util::Budget* b : sched.active) b->cancel();
        sched.cv.notify_all();
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  const auto worker = [&](int) {
    obs::TraceSession session(*res.report);
    for (;;) {
      Task t;
      {
        std::unique_lock<std::mutex> lk(sched.mu);
        for (;;) {
          if (sched.closed) return;
          if (!sched.ready.empty()) {
            t = sched.ready.front();
            sched.ready.pop_front();
            break;
          }
          if (!sched.delayed.empty()) {
            // Virtual fast-forward: nothing is ready, so jump the clock to
            // the earliest retry instead of sleeping.
            long min_at = sched.delayed.front().ready_at;
            for (const Task& d : sched.delayed)
              min_at = std::min(min_at, d.ready_at);
            sched.clock = std::max(sched.clock, min_at);
            auto due = [&](const Task& d) {
              return d.ready_at <= sched.clock;
            };
            std::stable_partition(sched.delayed.begin(),
                                  sched.delayed.end(), due);
            while (!sched.delayed.empty() && due(sched.delayed.front())) {
              sched.ready.push_back(sched.delayed.front());
              sched.delayed.erase(sched.delayed.begin());
            }
            continue;
          }
          if (sched.running == 0) {
            sched.cv.notify_all();
            return;
          }
          sched.cv.wait(lk);
        }
        // Breaker admission happens at pop time, on the virtual clock.
        if (!t.safe_mode &&
            !sched.breaker(jobs[t.job].cls, opts).admit(sched.clock)) {
          t.safe_mode = true;
          obs::counter_add("serve.breaker_shortcircuit");
        }
        ++sched.running;
      }

      const JobSpec& job = jobs[t.job];
      JobResult& jr = res.jobs[t.job];
      journal_safely(
          [&] { journal.record_running(job.id, t.attempt); });
      obs::counter_add("serve.attempts");
      if (job_delay_ms > 0)
        std::this_thread::sleep_for(
            std::chrono::milliseconds(job_delay_ms));

      // Per-attempt isolation: a child of the batch budget (inheriting its
      // deadline), further bounded by the per-job knobs. Safe mode runs
      // with a 1-unit work budget, which forces the ladder straight down
      // to the verified sequential rung.
      util::Budget jb;
      if (opts.budget != nullptr) jb = opts.budget->fork_attempt();
      if (t.safe_mode) {
        jb = util::Budget();
        jb.set_work_limit(1);
      } else {
        if (opts.job_deadline_ms > 0) jb.set_deadline_ms(opts.job_deadline_ms);
        if (opts.job_work_budget > 0) jb.set_work_limit(opts.job_work_budget);
      }
      {
        std::lock_guard<std::mutex> lock(sched.mu);
        if (sched.closed) jb.cancel();  // drain raced the registration
        sched.active.push_back(&jb);
      }

      // Soak-style deterministic fault injection: arm a pseudo-random
      // site/kind for this attempt only.
      bool armed_here = false;
      if (opts.fault_rate > 0.0) {
        util::Rng rng(opts.fault_seed ^ fnv1a_u64(job.id) ^
                      (static_cast<uint64_t>(t.attempt) * 0x9e3779b97f4a7c15ULL));
        if (rng.chance(opts.fault_rate)) {
          const auto& sites = check::fault::registered_sites();
          std::string spec =
              sites[rng.uniform(static_cast<int>(sites.size()))] + ":1:" +
              kFaultKinds[rng.uniform(3)];
          check::fault::arm(spec);
          armed_here = true;
          obs::counter_add("serve.faults_armed");
        }
      }

      AttemptOutcome ao;
      double a0 = now_seconds();
      {
        obs::Span job_span("serve.job");
        // The nested session isolates this job's spans/counters into its
        // own sub-report; merged back into the batch report below.
        obs::Report sub;
        {
          obs::TraceSession sub_session(sub);
          ao = run_attempt(job, opts, &jb, t.safe_mode);
        }
        // Accumulate this attempt's sub-report into the job's counters and
        // into the batch report, so batch totals equal the per-job sums.
        for (const auto& [name, value] : sub.counters()) {
          bool found = false;
          for (auto& [n, v] : jr.counters) {
            if (n == name) {
              v += value;
              found = true;
              break;
            }
          }
          if (!found) jr.counters.emplace_back(name, value);
          obs::counter_add(name.c_str(), value);
        }
      }
      jr.seconds += now_seconds() - a0;
      if (armed_here) check::fault::disarm();
      {
        std::lock_guard<std::mutex> lock(sched.mu);
        sched.active.erase(
            std::find(sched.active.begin(), sched.active.end(), &jb));
      }

      // --- decide terminal vs retry ---
      enum class Decision { kRetry, kDone, kDegraded, kFailed, kAbandon };
      Decision decision;
      std::string cause;
      long backoff = 0;
      bool drained_now;
      {
        std::lock_guard<std::mutex> lock(sched.mu);
        ++sched.clock;
        --sched.running;
        // Note: a cancelled *job* budget is not proof of a drain — the
        // timeout fault kind also trips kCancelled. Only the scheduler's
        // closed flag (set by the watcher) means the batch is draining.
        drained_now = sched.closed;
        CircuitBreaker& br = sched.breaker(job.cls, opts);
        jr.attempts = t.attempt;
        if (ao.usable) {
          // Keep the best-so-far output: a later hard-failing attempt must
          // not lose an earlier usable result.
          jr.output = ao.text;
          jr.digest = ao.digest;
          jr.area = ao.area;
          jr.nbits = ao.nbits;
          jr.cubes = ao.cubes;
        }
        if (t.safe_mode) {
          decision = ao.usable ? Decision::kDegraded : Decision::kFailed;
          cause = ao.usable ? "breaker" : "breaker: " + ao.note;
        } else if (ao.usable && ao.ok) {
          br.on_success();
          decision = Decision::kDone;
        } else if (ao.usable) {
          // Degraded / budget-exhausted result: retry for a better one
          // unless draining or out of attempts.
          if (drained_now) {
            decision = Decision::kDegraded;
            cause = "drain";
          } else if (t.attempt < opts.retry.max_attempts) {
            decision = Decision::kRetry;
            cause = ao.note.empty() ? "degraded result" : ao.note;
          } else {
            decision = Decision::kDegraded;
            cause = ao.note.empty() ? "retries exhausted" : ao.note;
          }
        } else {
          // Hard failure: feed the breaker, retry while attempts remain.
          if (br.on_failure(sched.clock)) {
            ++sched.breaker_trips;
            obs::counter_add("serve.breaker_open");
          }
          if (drained_now && jr.output.empty()) {
            decision = Decision::kAbandon;  // re-run on resume
          } else if (drained_now) {
            decision = Decision::kDegraded;  // best-so-far from earlier try
            cause = "drain";
          } else if (t.attempt < opts.retry.max_attempts) {
            decision = Decision::kRetry;
            cause = ao.note;
          } else if (!jr.output.empty()) {
            decision = Decision::kDegraded;
            cause = "retries exhausted: " + ao.note;
          } else {
            decision = Decision::kFailed;
            cause = ao.note;
          }
        }
        if (decision == Decision::kRetry) {
          backoff = opts.retry.backoff_units(t.attempt + 1,
                                             fnv1a_u64(job.id));
          jr.backoff_units += backoff;
          ++sched.retries;
          sched.delayed.push_back(
              Task{t.job, t.attempt + 1, sched.clock + backoff, false});
        }
        sched.cv.notify_all();
      }

      switch (decision) {
        case Decision::kRetry:
          obs::counter_add("serve.retries");
          journal_safely([&] {
            journal.record_retry(job.id, t.attempt + 1, backoff, cause);
          });
          continue;
        case Decision::kAbandon:
          obs::counter_add("serve.drain_abandoned");
          continue;  // stays pending; journal keeps queued/running only
        case Decision::kDone:
        case Decision::kDegraded:
        case Decision::kFailed:
          break;
      }

      // Terminal: write the output first, then the journal record — a
      // crash between the two re-runs the job, which is safe; the reverse
      // order could record a digest whose bytes never hit the disk.
      jr.note = cause;
      if (decision == Decision::kFailed) {
        jr.state = JobState::kFailed;
        jr.output.clear();
        jr.digest.clear();
        obs::counter_add("serve.jobs_failed");
        journal_safely(
            [&] { journal.record_failed(job.id, cause, t.attempt); });
      } else {
        jr.state = decision == Decision::kDone ? JobState::kDone
                                               : JobState::kDegraded;
        if (!opts.out_dir.empty() && !jr.output.empty()) {
          jr.output_path = opts.out_dir + "/" + job.id + ".code";
          if (!util::write_file_atomic(jr.output_path, jr.output)) {
            obs::counter_add("serve.output_write_errors");
            jr.output_path.clear();
          }
        }
        obs::counter_add(decision == Decision::kDone
                             ? "serve.jobs_done"
                             : "serve.jobs_degraded");
        journal_safely([&] {
          if (decision == Decision::kDone)
            journal.record_done(job.id, jr.digest, t.attempt, jr.area);
          else
            journal.record_degraded(job.id, cause, jr.digest, t.attempt);
        });
      }
      {
        std::lock_guard<std::mutex> lock(sched.mu);
        ++sched.completed;
        res.trajectory.emplace_back(now_seconds() - t0, sched.completed);
      }
    }
  };

  const int threads = std::max(1, opts.threads);
  util::ThreadPool pool(threads);
  pool.run_indexed(threads, worker);
  pool_done.store(true, std::memory_order_relaxed);
  watcher.join();

  {
    std::lock_guard<std::mutex> lock(sched.mu);
    res.drained = sched.closed;
    res.retries = sched.retries;
    res.breaker_trips = sched.breaker_trips;
    res.virtual_units = sched.clock;
  }
  if (res.drained && !drain_recorded) {
    drain_recorded = true;
    obs::counter_add("serve.drains");
    journal_safely([&] { journal.record_event("drain"); });
  }
  for (const JobResult& j : res.jobs) {
    switch (j.state) {
      case JobState::kDone:
        ++res.done;
        break;
      case JobState::kFailed:
        ++res.failed;
        break;
      case JobState::kDegraded:
        ++res.degraded;
        break;
      case JobState::kPending:
        ++res.pending;
        break;
    }
  }
  res.seconds = now_seconds() - t0;
  journal.close();

  if (!opts.report_path.empty()) {
    std::string text = batch_report_json(res, opts).dump(2);
    text += '\n';
    journal_safely([&] {
      check::fault::point("serve.report");
      if (!util::write_file_atomic(opts.report_path, text))
        throw std::runtime_error("cannot write report " + opts.report_path);
    });
  }
  return res;
}

}  // namespace nova::serve
