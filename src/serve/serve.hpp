// Crash-safe batch serving: run a manifest of KISS2 encoding jobs through
// encode_fsm_robust on the shared ThreadPool, with
//
//   - per-job isolation: each attempt gets its own child Budget and its own
//     obs sub-report, so one poisoned job cannot sink the batch;
//   - a write-ahead journal (serve/journal.hpp) fsync'd per record, so
//     --resume after kill -9 skips completed jobs and reproduces their
//     byte-identical outputs (proven by journal digests);
//   - deterministic seeded exponential retry backoff on a *virtual* clock
//     (serve/retry.hpp) — no test ever sleeps;
//   - a per-job-class circuit breaker: after K consecutive hard failures
//     the class is short-circuited to a safe-mode run recorded `degraded`
//     instead of looping;
//   - graceful drain: SIGINT/SIGTERM (serve/drain.hpp) stops admission,
//     cancels the in-flight jobs' budgets (they unwind at their next
//     checkpoint with a valid partial result), flushes the journal and the
//     final report, and returns with partial results.
//
// See docs/SERVING.md for the journal format and the exact guarantees.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nova/nova.hpp"
#include "nova/verify.hpp"
#include "serve/journal.hpp"
#include "serve/retry.hpp"
#include "util/budget.hpp"

namespace nova::serve {

/// Canonical lowercase name of an algorithm (matches nova_cli's -e values).
const char* algorithm_name(driver::Algorithm a);
/// Parses an algorithm name; false on unknown names.
bool parse_algorithm(const std::string& name, driver::Algorithm* out);

/// One manifest line: a KISS2 file path or builtin benchmark name plus
/// per-job overrides.
struct JobSpec {
  std::string id;    ///< unique within the batch: "<index>-<stem>"
  std::string spec;  ///< .kiss path or builtin benchmark name
  std::string cls;   ///< circuit-breaker class (default: the spec)
  driver::Algorithm algorithm = driver::Algorithm::kIHybrid;
  int nbits = 0;
  uint64_t seed = 1;
  int index = 0;  ///< manifest position (outputs concatenate in this order)
};

/// Parses manifest text: one job per line,
///   <spec> [alg=<name>] [nbits=<n>] [seed=<n>] [class=<name>]
/// Blank lines and '#' comments are ignored. On a malformed line returns an
/// empty vector and sets *err.
std::vector<JobSpec> parse_manifest(const std::string& text,
                                    driver::Algorithm default_alg,
                                    std::string* err);
/// File variant; throws std::runtime_error on unreadable file or bad line.
std::vector<JobSpec> parse_manifest_file(const std::string& path,
                                         driver::Algorithm default_alg);
/// Digest over the canonicalized manifest, recorded in the journal's batch
/// header so a resume against a different manifest is detected.
std::string manifest_digest(const std::vector<JobSpec>& jobs);

enum class JobState { kPending, kDone, kFailed, kDegraded };
const char* job_state_name(JobState s);

struct JobResult {
  JobSpec spec;
  JobState state = JobState::kPending;
  bool resumed_skip = false;  ///< satisfied from the journal, not re-run
  int attempts = 0;
  long backoff_units = 0;  ///< total virtual backoff charged to this job
  std::string digest;      ///< digest of `output` (done/degraded)
  std::string output;      ///< the job's .code text (empty when none)
  std::string output_path; ///< file the output was written to (if out_dir)
  std::string note;        ///< failure reason / degrade cause
  long area = 0;
  int nbits = 0;
  int cubes = 0;
  double seconds = 0.0;    ///< wall time across attempts (0 when skipped)
  /// Counters of the job's own obs sub-report (robust.*, espresso.*, ...).
  std::vector<std::pair<std::string, long>> counters;
};

struct BatchOptions {
  std::string journal_path;  ///< empty = run without a journal
  std::string out_dir;       ///< empty = keep outputs in memory only
  std::string report_path;   ///< final JSON report; empty = skip
  bool resume = false;       ///< replay the journal and skip terminal jobs
  int threads = 1;
  /// Per-attempt budget knobs (0 = unlimited in that dimension).
  long job_deadline_ms = 0;
  long job_work_budget = 0;
  RetryPolicy retry;
  int breaker_threshold = 3;
  long breaker_cooldown_units = 512;
  /// Soak-style seeded fault injection: with probability `fault_rate` per
  /// attempt, arm a random NOVA_FAULT site/kind (deterministic in
  /// fault_seed, job id, and attempt) before running it.
  double fault_rate = 0.0;
  uint64_t fault_seed = 0;
  /// Attach each job's full sub-report to the JSON report (else counters
  /// only).
  bool keep_sub_reports = false;
  /// Batch-level budget: its deadline/cancellation drains the whole batch.
  /// Per-job budgets are independent children. May be null.
  util::Budget* budget = nullptr;
  driver::VerifyOptions verify;
  /// Test/throttle knob: sleep this long before each attempt (also read
  /// from NOVA_SERVE_JOB_DELAY_MS when < 0; used by the SIGKILL fixture).
  long job_delay_ms = -1;
};

struct BatchResult {
  std::vector<JobResult> jobs;  ///< manifest order
  int done = 0, failed = 0, degraded = 0, pending = 0;
  int resumed_skips = 0, retries = 0, breaker_trips = 0;
  bool drained = false;
  long virtual_units = 0;  ///< final virtual-clock value
  double seconds = 0.0;
  /// (wall seconds since batch start, jobs completed) per completion —
  /// the throughput trajectory surfaced in BENCH_serve.json.
  std::vector<std::pair<double, int>> trajectory;
  /// Batch-level report: serve.* counters plus every sub-report's counters
  /// merged in (so counter sums hold across the whole batch).
  std::shared_ptr<obs::Report> report;

  /// Every job reached a terminal state (always true unless drained).
  bool complete() const { return pending == 0; }
  /// Concatenated outputs of all done/degraded jobs, manifest order.
  std::string concatenated_outputs() const;
};

/// Runs the batch. Never throws for per-job problems (they land in job
/// states); throws std::runtime_error only for batch-level setup errors
/// (unopenable journal, undecodable resume journal).
BatchResult run_batch(const std::vector<JobSpec>& jobs,
                      const BatchOptions& opts);

/// Builds the final report JSON document for a batch (also written to
/// BatchOptions::report_path when set).
obs::Json batch_report_json(const BatchResult& res, const BatchOptions& opts);

}  // namespace nova::serve
