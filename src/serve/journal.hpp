// Write-ahead job journal for crash-safe batch serving.
//
// The journal is an append-only JSONL file: one compact JSON object per
// line, fsync'd per record, so the batch's progress survives kill -9 at any
// instant. A job moves through
//
//   queued -> running -> done{digest} | failed{reason} | degraded{cause}
//
// with optional `retry` records between attempts. replay_journal() folds a
// journal back into per-job state, tolerating a torn final line (the only
// line a crash mid-append can corrupt); a malformed line anywhere *else*
// marks the journal unclean. `--resume` uses the replay to skip every job
// that already reached a terminal state — except drain-degraded jobs, which
// were cut short deliberately and re-run. See docs/SERVING.md.
#pragma once

#include <mutex>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace nova::serve {

/// FNV-1a 64-bit digest rendered as 16 hex chars; the journal stores this
/// for every completed job so resume can prove outputs are byte-identical.
std::string fnv1a_hex(const std::string& text);

class Journal {
 public:
  Journal() = default;
  ~Journal();
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Opens (creating if needed) the journal for appending. Throws
  /// std::runtime_error when the file cannot be opened.
  void open(const std::string& path);
  void close();
  bool is_open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

  /// Appends one record as a compact JSON line and fsyncs it. Thread-safe.
  /// Throws std::runtime_error on write failure (and FaultInjected /
  /// bad_alloc via the "serve.journal" probe site).
  void append(const obs::Json& record);

  // --- typed record helpers (all no-ops when the journal is not open) ---
  void record_batch(const std::string& manifest_digest, int jobs,
                    bool resume);
  void record_queued(const std::string& job, const std::string& cls);
  void record_running(const std::string& job, int attempt);
  void record_retry(const std::string& job, int next_attempt,
                    long backoff_units, const std::string& reason);
  void record_done(const std::string& job, const std::string& digest,
                   int attempts, long area);
  void record_failed(const std::string& job, const std::string& reason,
                     int attempts);
  void record_degraded(const std::string& job, const std::string& cause,
                       const std::string& digest, int attempts);
  /// Free-form marker record, e.g. {"type":"drain"}.
  void record_event(const std::string& type);

 private:
  int fd_ = -1;
  std::string path_;
  std::mutex mu_;
};

/// Folded per-job state after replaying a journal.
struct JobJournalState {
  std::string terminal;  ///< "", "done", "failed", or "degraded"
  std::string digest;    ///< done/degraded digest (empty when none)
  std::string cause;     ///< failed reason / degraded cause
  int attempts = 0;      ///< last recorded attempt count
  bool queued = false;
  bool running = false;  ///< saw a running record (in flight at a crash)
  int done_records = 0;  ///< resume must never add a second one
};

struct ReplayResult {
  /// Jobs in first-appearance order.
  std::vector<std::pair<std::string, JobJournalState>> jobs;
  int records = 0;             ///< complete, well-formed records read
  bool truncated_tail = false; ///< torn final line was skipped
  bool drained = false;        ///< a drain event was recorded
  std::string manifest_digest; ///< from the last batch header
  std::vector<std::string> errors;  ///< malformed non-final lines

  bool clean() const { return errors.empty(); }
  const JobJournalState* find(const std::string& id) const;
  int count_terminal(const std::string& state) const;
  /// Accounting invariant: every queued job reached a terminal state.
  /// Always true for a batch that ran to completion (drained batches may
  /// legitimately leave queued/running jobs behind).
  bool fully_accounted() const;
};

/// Replays a journal file. A missing file yields an empty, clean result.
ReplayResult replay_journal(const std::string& path);

}  // namespace nova::serve
