// Graceful-drain plumbing: SIGINT/SIGTERM -> sticky drain flag + budget
// cancellation.
//
// The signal handler does only async-signal-safe work: it sets a
// sig_atomic_t flag and calls Budget::cancel() on a registered budget
// (a lock-free atomic CAS). Everything that needs locks — cancelling the
// per-job child budgets, closing the queue, flushing the journal — happens
// on normal threads that poll drain_requested(). A second signal while a
// drain is already in progress hard-exits with status 130 so a wedged
// process can still be stopped from the keyboard. See docs/SERVING.md.
#pragma once

#include "util/budget.hpp"

namespace nova::serve {

/// Installs SIGINT and SIGTERM handlers (idempotent). Call once, from the
/// main thread, before starting work that should drain instead of die.
void install_signal_handlers();

/// True once a drain was requested — by a signal or by request_drain().
/// Sticky until reset_drain().
bool drain_requested();

/// Programmatic drain (tests, embedders). Identical to receiving a signal
/// except it never hard-exits.
void request_drain();

/// Which signal triggered the drain (0 when none / programmatic).
int drain_signal();

/// Registers the budget the *handler itself* cancels (typically the batch
/// or single-run budget); pass nullptr to unregister. The budget must
/// outlive its registration.
void set_signal_budget(util::Budget* budget);

/// Clears the sticky drain state (tests only — a real process drains once).
void reset_drain();

}  // namespace nova::serve
