#include "serve/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "check/faultinject.hpp"
#include "obs/obs.hpp"
#include "util/fileio.hpp"

namespace nova::serve {

std::string fnv1a_hex(const std::string& text) {
  uint64_t h = 14695981039346656037ULL;
  for (unsigned char c : text) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

Journal::~Journal() { close(); }

void Journal::open(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC,
               0644);
  if (fd_ < 0)
    throw std::runtime_error("journal: cannot open " + path + ": " +
                             std::strerror(errno));
  path_ = path;
}

void Journal::close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) {
    ::fsync(fd_);
    ::close(fd_);
    fd_ = -1;
  }
}

void Journal::append(const obs::Json& record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return;
  check::fault::point("serve.journal");
  std::string line = record.dump(-1);
  line += '\n';
  if (!util::detail::write_all(fd_, line.data(), line.size()))
    throw std::runtime_error("journal: write failed on " + path_ + ": " +
                             std::strerror(errno));
  // fsync per record is the whole point: a record the caller saw appended
  // survives kill -9. Batches are job-grained, so the cost is noise.
  if (::fsync(fd_) != 0)
    throw std::runtime_error("journal: fsync failed on " + path_);
  obs::counter_add("serve.journal_records");
}

namespace {
obs::Json base_record(const char* type, const std::string& job) {
  obs::Json r = obs::Json::object();
  r.set("type", type);
  if (!job.empty()) r.set("job", job);
  return r;
}
}  // namespace

void Journal::record_batch(const std::string& manifest_digest, int jobs,
                           bool resume) {
  if (!is_open()) return;
  obs::Json r = base_record("batch", "");
  r.set("manifest", manifest_digest);
  r.set("jobs", jobs);
  r.set("resume", resume);
  append(r);
}

void Journal::record_queued(const std::string& job, const std::string& cls) {
  if (!is_open()) return;
  obs::Json r = base_record("queued", job);
  r.set("class", cls);
  append(r);
}

void Journal::record_running(const std::string& job, int attempt) {
  if (!is_open()) return;
  obs::Json r = base_record("running", job);
  r.set("attempt", attempt);
  append(r);
}

void Journal::record_retry(const std::string& job, int next_attempt,
                           long backoff_units, const std::string& reason) {
  if (!is_open()) return;
  obs::Json r = base_record("retry", job);
  r.set("attempt", next_attempt);
  r.set("backoff_units", backoff_units);
  r.set("reason", reason);
  append(r);
}

void Journal::record_done(const std::string& job, const std::string& digest,
                          int attempts, long area) {
  if (!is_open()) return;
  obs::Json r = base_record("done", job);
  r.set("digest", digest);
  r.set("attempts", attempts);
  r.set("area", area);
  append(r);
}

void Journal::record_failed(const std::string& job, const std::string& reason,
                            int attempts) {
  if (!is_open()) return;
  obs::Json r = base_record("failed", job);
  r.set("reason", reason);
  r.set("attempts", attempts);
  append(r);
}

void Journal::record_degraded(const std::string& job,
                              const std::string& cause,
                              const std::string& digest, int attempts) {
  if (!is_open()) return;
  obs::Json r = base_record("degraded", job);
  r.set("cause", cause);
  if (!digest.empty()) r.set("digest", digest);
  r.set("attempts", attempts);
  append(r);
}

void Journal::record_event(const std::string& type) {
  if (!is_open()) return;
  append(base_record(type.c_str(), ""));
}

const JobJournalState* ReplayResult::find(const std::string& id) const {
  for (const auto& [job, st] : jobs) {
    if (job == id) return &st;
  }
  return nullptr;
}

int ReplayResult::count_terminal(const std::string& state) const {
  int n = 0;
  for (const auto& [job, st] : jobs) {
    if (st.terminal == state) ++n;
  }
  return n;
}

bool ReplayResult::fully_accounted() const {
  for (const auto& [job, st] : jobs) {
    if (st.queued && st.terminal.empty()) return false;
  }
  return true;
}

ReplayResult replay_journal(const std::string& path) {
  ReplayResult out;
  std::ifstream in(path, std::ios::binary);
  if (!in) return out;  // no journal yet: empty and clean
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();

  auto state_of = [&out](const std::string& id) -> JobJournalState& {
    for (auto& [job, st] : out.jobs) {
      if (job == id) return st;
    }
    out.jobs.emplace_back(id, JobJournalState{});
    return out.jobs.back().second;
  };

  size_t pos = 0;
  while (pos < text.size()) {
    size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) {
      // Torn final line: the only corruption a crash mid-append (with
      // per-record fsync) can produce. Skip it silently but flag it.
      out.truncated_tail = true;
      break;
    }
    std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) continue;
    std::string err;
    auto doc = obs::Json::parse(line, &err);
    if (!doc || !doc->is_object()) {
      // The newline is written together with its payload, so a crash can
      // only tear the final, newline-less line. A malformed line *with* a
      // newline is real corruption.
      out.errors.push_back("bad record: " + (err.empty() ? line : err));
      continue;
    }
    ++out.records;
    const obs::Json* type = doc->find("type");
    if (!type || !type->is_string()) {
      out.errors.push_back("record without type: " + line);
      continue;
    }
    const std::string& t = type->as_string();
    if (t == "batch") {
      if (const obs::Json* m = doc->find("manifest"); m && m->is_string())
        out.manifest_digest = m->as_string();
      continue;
    }
    if (t == "drain") {
      out.drained = true;
      continue;
    }
    const obs::Json* job = doc->find("job");
    if (!job || !job->is_string()) continue;  // other marker records
    JobJournalState& st = state_of(job->as_string());
    if (const obs::Json* a = doc->find("attempt"); a && a->is_number())
      st.attempts = static_cast<int>(a->as_number());
    if (const obs::Json* a = doc->find("attempts"); a && a->is_number())
      st.attempts = static_cast<int>(a->as_number());
    if (t == "queued") {
      st.queued = true;
    } else if (t == "running") {
      st.running = true;
    } else if (t == "retry") {
      // bookkeeping only
    } else if (t == "done" || t == "failed" || t == "degraded") {
      st.terminal = t;
      st.running = false;
      if (t == "done") ++st.done_records;
      if (const obs::Json* d = doc->find("digest"); d && d->is_string())
        st.digest = d->as_string();
      if (const obs::Json* c = doc->find("cause"); c && c->is_string())
        st.cause = c->as_string();
      if (const obs::Json* c = doc->find("reason"); c && c->is_string())
        st.cause = c->as_string();
    } else {
      out.errors.push_back("unknown record type '" + t + "'");
    }
  }
  return out;
}

}  // namespace nova::serve
