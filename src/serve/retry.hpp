// Retry policy and per-class circuit breaker for the batch server.
//
// Backoff is *virtual*: it is measured in work units on the batch's virtual
// clock (one tick per completed attempt, fast-forwarded when every worker
// would otherwise idle), not in wall-clock sleeps — tests and drained
// batches never block on a timer, and the schedule is deterministic for a
// given (seed, job) at one worker thread. The exponential curve is seeded
// per job so retries of different jobs interleave instead of thundering
// back in lockstep. See docs/SERVING.md.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>

#include "util/rng.hpp"

namespace nova::serve {

struct RetryPolicy {
  /// Total attempts per job (1 = no retries).
  int max_attempts = 3;
  /// Virtual backoff before the first retry; doubles per further retry.
  long base_backoff_units = 64;
  long max_backoff_units = 1 << 20;
  /// Jitter stream seed; combined with the job key and attempt number.
  uint64_t seed = 0x5e12e5e12e5ULL;

  /// Deterministic backoff before attempt `next_attempt` (>= 2) of the job
  /// identified by `job_key`: base * 2^(retry-1) with a seeded +-25% jitter.
  long backoff_units(int next_attempt, uint64_t job_key) const {
    int retries = std::max(0, next_attempt - 2);
    long b = base_backoff_units;
    for (int i = 0; i < retries && b < max_backoff_units; ++i) b *= 2;
    b = std::min(b, max_backoff_units);
    util::Rng rng(seed ^ (job_key * 0x9e3779b97f4a7c15ULL) ^
                  static_cast<uint64_t>(next_attempt));
    long jitter_span = std::max<long>(1, b / 4);
    long jitter = static_cast<long>(rng.next() % (2 * jitter_span + 1)) -
                  jitter_span;
    return std::max<long>(1, b + jitter);
  }
};

/// Classic closed -> open -> half-open breaker over the virtual clock.
/// After `failure_threshold` consecutive hard failures in one job class the
/// breaker opens: jobs of that class are no longer re-admitted to the full
/// pipeline and run in safe mode instead (recorded `degraded`, cause
/// "breaker"). After `cooldown_units` of virtual time one probe job is let
/// through (half-open); success closes the breaker, failure re-opens it.
/// Not thread-safe — the batch scheduler guards it with its queue mutex.
class CircuitBreaker {
 public:
  CircuitBreaker(int failure_threshold, long cooldown_units)
      : threshold_(std::max(1, failure_threshold)),
        cooldown_(std::max<long>(1, cooldown_units)) {}

  enum class State { kClosed, kOpen, kHalfOpen };

  State state(long now_units) const {
    if (!open_) return State::kClosed;
    return now_units - opened_at_ >= cooldown_ ? State::kHalfOpen
                                               : State::kOpen;
  }

  /// True when a full-pipeline attempt may run now. In the half-open state
  /// only one probe is admitted until its verdict arrives.
  bool admit(long now_units) {
    switch (state(now_units)) {
      case State::kClosed:
        return true;
      case State::kOpen:
        return false;
      case State::kHalfOpen:
        if (probe_in_flight_) return false;
        probe_in_flight_ = true;
        return true;
    }
    return true;
  }

  void on_success() {
    open_ = false;
    probe_in_flight_ = false;
    consecutive_failures_ = 0;
  }

  /// Returns true when this failure transitioned the breaker to open.
  bool on_failure(long now_units) {
    probe_in_flight_ = false;
    ++consecutive_failures_;
    if (!open_ && consecutive_failures_ >= threshold_) {
      open_ = true;
      opened_at_ = now_units;
      return true;
    }
    if (open_) opened_at_ = now_units;  // failed probe restarts the cooldown
    return false;
  }

  int consecutive_failures() const { return consecutive_failures_; }

 private:
  int threshold_;
  long cooldown_;
  int consecutive_failures_ = 0;
  bool open_ = false;
  bool probe_in_flight_ = false;
  long opened_at_ = 0;
};

}  // namespace nova::serve
