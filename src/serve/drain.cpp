#include "serve/drain.hpp"

#include <csignal>
#include <unistd.h>

#include <atomic>

namespace nova::serve {

namespace {

volatile std::sig_atomic_t g_drain = 0;
volatile std::sig_atomic_t g_signal = 0;
std::atomic<util::Budget*> g_budget{nullptr};
std::atomic<bool> g_installed{false};

extern "C" void drain_handler(int sig) {
  if (g_drain) {
    // Second signal: the user really means it. 128 + SIGINT by convention.
    _exit(130);
  }
  g_drain = 1;
  g_signal = sig;
  // Budget::cancel is one lock-free CAS on an atomic enum —
  // async-signal-safe in the only sense that matters here.
  util::Budget* b = g_budget.load(std::memory_order_relaxed);
  if (b != nullptr) b->cancel();
}

}  // namespace

void install_signal_handlers() {
  bool expected = false;
  if (!g_installed.compare_exchange_strong(expected, true)) return;
  struct sigaction sa;
  sa.sa_handler = drain_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: let blocking calls return EINTR
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
}

bool drain_requested() { return g_drain != 0; }

void request_drain() {
  if (g_drain) return;
  g_drain = 1;
  util::Budget* b = g_budget.load(std::memory_order_relaxed);
  if (b != nullptr) b->cancel();
}

int drain_signal() { return static_cast<int>(g_signal); }

void set_signal_budget(util::Budget* budget) {
  g_budget.store(budget, std::memory_order_relaxed);
}

void reset_drain() {
  g_drain = 0;
  g_signal = 0;
}

}  // namespace nova::serve
