// A cover: a set of cubes over a common CubeSpec, denoting their union.
//
// The cover maintains a lazily-built "personality" cache -- per-variable
// counts of cubes with a non-full part and per-bit column counts -- kept
// incrementally up to date by add()/remove() once materialized, and
// invalidated by any mutable cube access. The tautology/complement
// recursion uses it so variable selection and unate detection never rescan
// the whole cover.
#pragma once

#include <string>
#include <vector>

#include "logic/cube.hpp"

namespace nova::logic {

class Cover {
 public:
  Cover() = default;
  explicit Cover(CubeSpec spec) : spec_(std::move(spec)) {}

  const CubeSpec& spec() const { return spec_; }
  int size() const { return static_cast<int>(cubes_.size()); }
  bool empty() const { return cubes_.empty(); }
  const Cube& operator[](int i) const { return cubes_[i]; }
  Cube& operator[](int i) {
    invalidate_personality();
    return cubes_[i];
  }
  auto begin() const { return cubes_.begin(); }
  auto end() const { return cubes_.end(); }
  auto begin() {
    invalidate_personality();
    return cubes_.begin();
  }
  auto end() { return cubes_.end(); }
  const std::vector<Cube>& cubes() const { return cubes_; }

  /// Adds a cube; silently drops empty cubes to preserve the invariant that
  /// every stored cube denotes a non-empty set.
  void add(const Cube& c) {
    if (c.nonempty(spec_)) add_nonempty(c);
  }
  /// add() for cubes the caller already knows are non-empty (e.g. cofactors
  /// of intersecting cubes); skips the redundant nonempty() scan.
  void add_nonempty(const Cube& c) {
    personality_count(c, +1);
    cubes_.push_back(c);
  }
  void add_all(const Cover& o) {
    // Cubes stored in a cover are non-empty by invariant.
    for (const Cube& c : o) add_nonempty(c);
  }
  void remove(int i) {
    personality_count(cubes_[i], -1);
    cubes_.erase(cubes_.begin() + i);
  }
  void clear() {
    cubes_.clear();
    invalidate_personality();
  }
  void reserve(int n) { cubes_.reserve(n); }

  /// Per-variable count of cubes whose part in that variable is not full
  /// (the "binateness" column of espresso's personality matrix). Built
  /// lazily in one word-parallel pass, then maintained incrementally by
  /// add()/remove().
  const std::vector<int32_t>& nonfull_counts() const {
    if (!nonfull_valid_) build_nonfull();
    return nonfull_;
  }
  /// Per-bit count of cubes asserting that bit (column counts). Lazy
  /// separately from nonfull_counts(): building it walks every set bit, so
  /// callers that only branch on binateness never pay for it.
  const std::vector<int32_t>& column_counts() const {
    if (!colcount_valid_) build_colcount();
    return colcount_;
  }

  /// True iff some cube contains the (non-empty) cube c in a single step.
  bool single_cube_contains(const Cube& c) const {
    for (const Cube& d : cubes_) {
      if (d.contains(c)) return true;
    }
    return false;
  }

  /// Removes exact duplicate cubes (hash-prefiltered), keeping the first
  /// occurrence of each. Returns the number of cubes dropped.
  int dedup();

  /// Removes cubes contained in another cube of the cover (SCC minimization).
  void make_scc();

  /// Total number of set bits across cubes (literal-ish cost measure).
  long total_weight() const {
    long w = 0;
    for (const Cube& c : cubes_) w += c.weight();
    return w;
  }

  std::string to_string() const {
    std::string s;
    for (const Cube& c : cubes_) {
      s += c.to_string(spec_);
      s += '\n';
    }
    return s;
  }

 private:
  void invalidate_personality() {
    nonfull_valid_ = false;
    colcount_valid_ = false;
  }
  void build_nonfull() const;
  void build_colcount() const;
  void personality_count(const Cube& c, int delta) const;

  CubeSpec spec_;
  std::vector<Cube> cubes_;
  // Personality cache; mutable because it is a lazily-materialized view of
  // cubes_ (logically const). The two halves validate independently.
  mutable std::vector<int32_t> nonfull_;
  mutable std::vector<int32_t> colcount_;
  mutable bool nonfull_valid_ = false;
  mutable bool colcount_valid_ = false;
};

/// Cofactor of F with respect to cube p: cubes at distance > 0 drop out,
/// the rest are cofactored per-variable.
Cover cofactor(const Cover& F, const Cube& p);

/// True iff F covers the whole universe of its spec.
bool tautology(const Cover& F);

/// True iff cube c is covered by F (i.e. c subseteq union(F)).
bool covers_cube(const Cover& F, const Cube& c);

/// True iff every cube of G is covered by F.
bool covers_cover(const Cover& F, const Cover& G);

/// Complement of F over the universe of its spec.
Cover complement(const Cover& F);

/// Smallest single cube containing every cube of F; empty cube if F empty.
Cube supercube_of(const Cover& F);

/// True iff the given minterm cube (one value per variable) is covered by F.
bool covers_minterm(const Cover& F, const Cube& m);

/// Exact number of minterms covered by F (inclusion-exclusion free: computed
/// by recursive disjoint sharp; intended for small test instances only).
long double count_minterms(const Cover& F);

}  // namespace nova::logic
