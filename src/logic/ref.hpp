// Naive per-bit reference implementations of the cube/cover kernels.
//
// These are the pre-word-parallel versions of the Cube operations and the
// plain branch-everything tautology check, retained verbatim as an oracle:
// the differential tests (tests/test_kernels.cpp) pit every word-parallel
// kernel in logic/cube.hpp and logic/cover.cpp against these on randomized
// specs, including widths that cross the 64- and 128-bit word boundaries.
// Nothing here is ever called on a production path.
#pragma once

#include "logic/cover.hpp"
#include "logic/cube.hpp"
#include "logic/spec.hpp"

namespace nova::logic::ref {

inline bool part_full(const CubeSpec& spec, const Cube& c, int v) {
  for (int j = 0; j < spec.size(v); ++j) {
    if (!c.get(spec.bit(v, j))) return false;
  }
  return true;
}

inline bool part_empty(const CubeSpec& spec, const Cube& c, int v) {
  for (int j = 0; j < spec.size(v); ++j) {
    if (c.get(spec.bit(v, j))) return false;
  }
  return true;
}

inline int part_count(const CubeSpec& spec, const Cube& c, int v) {
  int n = 0;
  for (int j = 0; j < spec.size(v); ++j) n += c.get(spec.bit(v, j));
  return n;
}

inline bool nonempty(const CubeSpec& spec, const Cube& c) {
  for (int v = 0; v < spec.num_vars(); ++v) {
    if (part_empty(spec, c, v)) return false;
  }
  return true;
}

inline int distance(const CubeSpec& spec, const Cube& a, const Cube& b) {
  int d = 0;
  for (int v = 0; v < spec.num_vars(); ++v) {
    bool hit = false;
    for (int j = 0; j < spec.size(v) && !hit; ++j) {
      int bit = spec.bit(v, j);
      hit = a.get(bit) && b.get(bit);
    }
    if (!hit) ++d;
  }
  return d;
}

inline bool intersects(const CubeSpec& spec, const Cube& a, const Cube& b) {
  Cube t = a.intersect(b);
  return nonempty(spec, t);
}

/// Per-bit espresso cofactor: result part = a_part | ~p_part.
inline Cube cofactor(const CubeSpec& spec, const Cube& a, const Cube& p) {
  Cube t = a;
  for (int b = 0; b < spec.total_bits(); ++b) {
    if (!p.get(b)) t.set(b);
  }
  return t;
}

inline bool contains(const Cube& a, const Cube& b) {
  const util::BitVec& ra = a.raw();
  const util::BitVec& rb = b.raw();
  for (int i = 0; i < ra.size(); ++i) {
    if (rb.get(i) && !ra.get(i)) return false;
  }
  return true;
}

/// Variable to branch on: most-binate, tie-broken by fewer values. The same
/// selection rule as logic::cover.cpp's select_var, recomputed by scanning.
inline int select_var(const Cover& F) {
  const CubeSpec& spec = F.spec();
  int best = -1, best_count = 0, best_size = 0;
  for (int v = 0; v < spec.num_vars(); ++v) {
    int cnt = 0;
    for (const Cube& c : F) {
      if (!part_full(spec, c, v)) ++cnt;
    }
    if (cnt == 0) continue;
    if (best == -1 || cnt > best_count ||
        (cnt == best_count && spec.size(v) < best_size)) {
      best = v;
      best_count = cnt;
      best_size = spec.size(v);
    }
  }
  return best;
}

/// Plain recursive tautology check: fast accept on a full cube, fast reject
/// on an uncovered column, then branch on the most-binate variable. No
/// unate reduction and no component splitting -- the oracle the optimized
/// logic::tautology must agree with on every input.
inline bool tautology(const Cover& F) {
  if (F.empty()) return F.spec().total_bits() == 0;
  const CubeSpec& spec = F.spec();
  for (const Cube& c : F) {
    if (c.is_full(spec)) return true;
  }
  Cube orall(spec);
  for (const Cube& c : F) orall.raw() |= c.raw();
  if (!orall.is_full(spec)) return false;

  int v = select_var(F);
  if (v < 0) return true;
  for (int k = 0; k < spec.size(v); ++k) {
    Cube vk = Cube::full(spec);
    vk.set_value(spec, v, k);
    Cover Fk(spec);
    for (const Cube& c : F) {
      if (intersects(spec, c, vk)) Fk.add(cofactor(spec, c, vk));
    }
    // Qualified: ADL on Cover would also find logic::tautology.
    if (!ref::tautology(Fk)) return false;
  }
  return true;
}

}  // namespace nova::logic::ref
