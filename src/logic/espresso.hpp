// Espresso-style heuristic two-level minimization for multiple-valued
// (and therefore also binary / multi-output) logic functions.
//
// The classic loop: EXPAND against the off-set, IRREDUNDANT, extraction of
// (relatively) essential primes, then REDUCE / EXPAND / IRREDUNDANT until the
// cost stops improving. Multi-output functions are handled uniformly through
// the characteristic-function view (output part = last MV variable).
#pragma once

#include "logic/cover.hpp"
#include "util/budget.hpp"

namespace nova::logic {

struct EspressoOptions {
  /// Hard cap on the size of the computed off-set cover; if the complement
  /// exceeds this, minimization falls back to SCC + irredundant only.
  int max_offset_cubes = 50000;
  /// Maximum reduce/expand/irredundant iterations.
  int max_iterations = 12;
  /// Skip the expensive REDUCE phase (single-pass expand+irredundant).
  bool single_pass = false;
  /// Optional cooperative budget, probed at phase boundaries. On
  /// exhaustion espresso returns its current (always valid) cover early:
  /// ON subseteq result subseteq ON u DC holds at every checkpoint, so an
  /// exhausted run degrades minimization quality, never correctness.
  /// Null = unlimited (bit-identical to the pre-budget behavior).
  util::Budget* budget = nullptr;
};

struct EspressoStats {
  int iterations = 0;
  int offset_cubes = 0;
  bool offset_capped = false;
  bool budget_exhausted = false;  ///< stopped early on EspressoOptions::budget
};

/// Minimizes ON against the don't-care set DC. Returns a cover G with
/// ON subseteq G subseteq ON u DC (heuristically near-minimal cube count).
Cover espresso(const Cover& on, const Cover& dc,
               const EspressoOptions& opts = {}, EspressoStats* stats = nullptr);

/// Convenience overload with an empty don't-care set.
Cover espresso(const Cover& on, const EspressoOptions& opts = {},
               EspressoStats* stats = nullptr);

/// EXPAND phase: grows each cube of F to a prime implicant of the function
/// whose off-set is OFF, removing cubes that become covered. Exposed for
/// testing and for reuse by the constraint-extraction code.
Cover expand(const Cover& F, const Cover& off);

/// IRREDUNDANT phase: removes cubes covered by the rest of the cover plus DC.
Cover irredundant(const Cover& F, const Cover& dc);

/// REDUCE phase: shrinks each cube to the smallest cube still needed.
Cover reduce(const Cover& F, const Cover& dc);

/// Splits F into (essential, rest): cubes not covered by the rest of F + DC.
std::pair<Cover, Cover> essentials(const Cover& F, const Cover& dc);

}  // namespace nova::logic
