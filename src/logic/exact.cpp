#include "logic/exact.hpp"

#include <algorithm>
#include <set>

#include "check/faultinject.hpp"

namespace nova::logic {

Cube consensus(const CubeSpec& spec, const Cube& a, const Cube& b, int v) {
  // q_v(a,b): union on variable v, intersection elsewhere. Defined (non-
  // empty) only when all other variables intersect.
  Cube r(spec);
  for (int u = 0; u < spec.num_vars(); ++u) {
    for (int k = 0; k < spec.size(u); ++k) {
      int bit = spec.bit(u, k);
      bool av = a.get(bit), bv = b.get(bit);
      if (u == v ? (av || bv) : (av && bv)) r.set(bit);
    }
  }
  if (!r.nonempty(spec)) return Cube(spec);  // empty part somewhere
  return r;
}

Cover blake_primes(const Cover& on, const Cover& dc,
                   const ExactMinOptions& opts) {
  const CubeSpec& spec = on.spec();
  Cover f = on;
  f.add_all(dc);
  f.make_scc();
  // Iterated consensus with absorption to a fixpoint.
  bool changed = true;
  while (changed) {
    changed = false;
    // One consensus round is O(|f|^2 * vars); charge the quadratic term so
    // the budget tracks real work. Exhaustion reads as a blown prime cap.
    if (!util::budget_charge(opts.budget,
                             static_cast<long>(f.size()) * f.size()))
      return Cover(spec);
    std::vector<Cube> add;
    for (int i = 0; i < f.size(); ++i) {
      for (int j = i + 1; j < f.size(); ++j) {
        for (int v = 0; v < spec.num_vars(); ++v) {
          Cube c = consensus(spec, f[i], f[j], v);
          if (!c.nonempty(spec)) continue;
          if (f[i].contains(c) || f[j].contains(c)) continue;
          if (f.single_cube_contains(c)) continue;
          bool dup = false;
          for (const Cube& d : add) {
            if (d.contains(c)) {
              dup = true;
              break;
            }
          }
          if (!dup) add.push_back(c);
        }
      }
    }
    if (!add.empty()) {
      for (const Cube& c : add) f.add(c);
      f.make_scc();
      changed = true;
      if (f.size() > opts.max_primes) return Cover(spec);  // blown cap
    }
  }
  return f;
}

namespace {

/// Enumerates the minterms of ON not covered by DC; empty + false when the
/// cap is exceeded.
bool on_minterms(const Cover& on, const Cover& dc, int cap,
                 std::vector<Cube>* out) {
  const CubeSpec& spec = on.spec();
  // Odometer over all variable values, filtered by coverage. To keep this
  // tractable we enumerate within the union of ON cubes rather than the
  // whole space: collect candidate minterms cube by cube, dedup.
  std::set<Cube> seen;
  for (const Cube& c : on) {
    // Odometer over the values admitted by c.
    std::vector<std::vector<int>> values(spec.num_vars());
    for (int v = 0; v < spec.num_vars(); ++v) {
      for (int k = 0; k < spec.size(v); ++k) {
        if (c.get(spec.bit(v, k))) values[v].push_back(k);
      }
    }
    std::vector<int> idx(spec.num_vars(), 0);
    while (true) {
      Cube m(spec);
      for (int v = 0; v < spec.num_vars(); ++v)
        m.set(spec.bit(v, values[v][idx[v]]));
      if (!seen.count(m) && !dc.single_cube_contains(m) &&
          !covers_minterm(dc, m)) {
        seen.insert(m);
        if (static_cast<int>(seen.size()) > cap) return false;
      } else {
        seen.insert(m);  // still dedup dc-covered minterms
      }
      int v = 0;
      while (v < spec.num_vars() &&
             ++idx[v] == static_cast<int>(values[v].size())) {
        idx[v] = 0;
        ++v;
      }
      if (v == spec.num_vars()) break;
    }
    if (static_cast<int>(seen.size()) > cap) return false;
  }
  for (const Cube& m : seen) {
    if (!covers_minterm(dc, m)) out->push_back(m);
  }
  return static_cast<int>(out->size()) <= cap;
}

/// Branch-and-bound minimum unate covering.
class Covering {
 public:
  Covering(int nrows, int ncols, std::vector<std::vector<int>> row_cols,
           long max_nodes, util::Budget* budget)
      : ncols_(ncols), row_cols_(std::move(row_cols)),
        max_nodes_(max_nodes), budget_(budget) {
    (void)nrows;
  }

  /// Returns selected column indices; `proven` reports optimality.
  std::vector<int> solve(bool* proven) {
    std::vector<int> rows(row_cols_.size());
    for (size_t i = 0; i < rows.size(); ++i) rows[i] = static_cast<int>(i);
    best_.assign(ncols_, 0);  // sentinel: "all columns" upper bound
    std::vector<int> all(ncols_);
    for (int c = 0; c < ncols_; ++c) all[c] = c;
    best_ = all;
    std::vector<int> chosen;
    search(rows, chosen);
    *proven = nodes_ <= max_nodes_;
    return best_;
  }

 private:
  void search(std::vector<int> rows, std::vector<int>& chosen) {
    if (++nodes_ > max_nodes_) return;
    if (!util::budget_charge(budget_)) {
      nodes_ = max_nodes_ + 1;  // read as "bound not proven" by solve()
      return;
    }
    // Remove rows already covered.
    std::vector<char> is_chosen(ncols_, 0);
    for (int c : chosen) is_chosen[c] = 1;
    std::vector<int> left;
    for (int r : rows) {
      bool covered = false;
      for (int c : row_cols_[r]) {
        if (is_chosen[c]) {
          covered = true;
          break;
        }
      }
      if (!covered) left.push_back(r);
    }
    if (left.empty()) {
      if (chosen.size() < best_.size()) best_ = chosen;
      return;
    }
    // Lower bound: a set of pairwise column-disjoint rows.
    int lb = lower_bound(left);
    if (chosen.size() + lb >= best_.size()) return;
    // Essential columns: a row with a single column forces it.
    for (int r : left) {
      if (row_cols_[r].size() == 1) {
        chosen.push_back(row_cols_[r][0]);
        search(left, chosen);
        chosen.pop_back();
        return;
      }
      if (row_cols_[r].empty()) return;  // uncoverable (shouldn't happen)
    }
    // Branch on the columns of the hardest row (fewest options).
    int pick = left[0];
    for (int r : left) {
      if (row_cols_[r].size() < row_cols_[pick].size()) pick = r;
    }
    // Order branch columns by coverage count (most covering first).
    std::vector<int> cols = row_cols_[pick];
    std::vector<int> cover_count(ncols_, 0);
    for (int r : left) {
      for (int c : row_cols_[r]) ++cover_count[c];
    }
    std::sort(cols.begin(), cols.end(),
              [&](int a, int b) { return cover_count[a] > cover_count[b]; });
    for (int c : cols) {
      chosen.push_back(c);
      search(left, chosen);
      chosen.pop_back();
      if (nodes_ > max_nodes_) return;
    }
  }

  int lower_bound(const std::vector<int>& rows) {
    // Greedy independent rows: rows sharing no column.
    std::vector<char> used(ncols_, 0);
    int lb = 0;
    for (int r : rows) {
      bool indep = true;
      for (int c : row_cols_[r]) {
        if (used[c]) {
          indep = false;
          break;
        }
      }
      if (indep) {
        ++lb;
        for (int c : row_cols_[r]) used[c] = 1;
      }
    }
    return lb;
  }

  int ncols_;
  std::vector<std::vector<int>> row_cols_;
  long max_nodes_;
  util::Budget* budget_;
  long nodes_ = 0;
  std::vector<int> best_;
};

}  // namespace

ExactMinResult exact_minimize(const Cover& on, const Cover& dc,
                              const ExactMinOptions& opts) {
  ExactMinResult res;
  res.cover = Cover(on.spec());
  if (on.empty()) {
    res.optimal = true;
    return res;
  }
  check::fault::point("exact.minimize", opts.budget);
  Cover primes = blake_primes(on, dc, opts);
  if (primes.empty()) {
    // Prime cap blown: fall back to the heuristic pipeline's input.
    res.cover = on;
    res.cover.make_scc();
    return res;
  }
  res.num_primes = primes.size();

  std::vector<Cube> rows;
  if (!on_minterms(on, dc, opts.max_minterms, &rows)) {
    res.cover = on;
    res.cover.make_scc();
    return res;
  }
  res.num_rows = static_cast<int>(rows.size());
  if (rows.empty()) {
    res.optimal = true;  // ON entirely inside DC
    return res;
  }

  std::vector<std::vector<int>> row_cols(rows.size());
  for (size_t r = 0; r < rows.size(); ++r) {
    for (int c = 0; c < primes.size(); ++c) {
      if (primes[c].contains(rows[r])) row_cols[r].push_back(c);
    }
  }
  Covering cov(static_cast<int>(rows.size()), primes.size(),
               std::move(row_cols), opts.max_nodes, opts.budget);
  bool proven = false;
  std::vector<int> picked = cov.solve(&proven);
  for (int c : picked) res.cover.add(primes[c]);
  res.cover.make_scc();
  res.optimal = proven;
  return res;
}

ExactMinResult exact_minimize(const Cover& on, const ExactMinOptions& opts) {
  return exact_minimize(on, Cover(on.spec()), opts);
}

}  // namespace nova::logic
