// A cube in positional-cube notation over a CubeSpec.
//
// Bit (v,k) set means variable v may take value k. A cube denotes the set of
// minterms whose every variable value is admitted; a cube with an empty part
// denotes the empty set. The full cube (all bits set) is the universe.
//
// All per-variable predicates (part emptiness/fullness, distance,
// intersection, cofactor) run word-parallel over the CubeSpec's
// precomputed variable segments -- no per-bit probing and, thanks to the
// BitVec small-buffer storage, no heap allocation for specs of up to 128
// bits. The naive per-bit versions are retained in logic/ref.hpp and the
// differential tests pit the two against each other on randomized specs.
#pragma once

#include <string>

#include "logic/spec.hpp"
#include "util/bitvec.hpp"

namespace nova::logic {

using util::BitVec;

class Cube {
 public:
  Cube() = default;
  explicit Cube(const CubeSpec& spec) : bits_(spec.total_bits()) {}

  /// The universe cube (every part full).
  static Cube full(const CubeSpec& spec) {
    Cube c(spec);
    c.bits_.set_all();
    return c;
  }

  /// Parses "10|011|1x0"-style strings: '|' separates variables (optional),
  /// within a part '1'/'0' set/clear value bits. For binary variables the
  /// shorthand '0' -> 10, '1' -> 01, '-'/'x' -> 11 is used by from_pla().
  static Cube from_bits(const CubeSpec& spec, const std::string& s) {
    Cube c(spec);
    int i = 0;
    for (char ch : s) {
      if (ch == '|' || ch == ' ') continue;
      if (ch == '1') c.bits_.set(i);
      ++i;
    }
    NOVA_CONTRACT(cheap, i == spec.total_bits(),
                  "cube string has " + std::to_string(i) + " bits, spec has " +
                      std::to_string(spec.total_bits()));
    return c;
  }

  /// Parses a PLA-style binary-input string over binary variables:
  /// '0' -> {0}, '1' -> {1}, '-' or 'x' or '2' -> {0,1}.
  /// Only positions [first_var, first_var+len) are filled; other parts are
  /// untouched (caller typically starts from full()).
  void set_binary_from_pla(const CubeSpec& spec, int first_var,
                           const std::string& s) {
    for (int j = 0; j < static_cast<int>(s.size()); ++j) {
      int v = first_var + j;
      NOVA_CONTRACT(cheap, spec.is_binary(v),
                    "PLA shorthand only applies to binary variables");
      char ch = s[j];
      bits_.clear(spec.bit(v, 0));
      bits_.clear(spec.bit(v, 1));
      if (ch == '0' || ch == '-' || ch == 'x' || ch == '2')
        bits_.set(spec.bit(v, 0));
      if (ch == '1' || ch == '-' || ch == 'x' || ch == '2')
        bits_.set(spec.bit(v, 1));
    }
  }

  bool get(int bit) const { return bits_.get(bit); }
  void set(int bit) { bits_.set(bit); }
  void clear(int bit) { bits_.clear(bit); }

  const BitVec& raw() const { return bits_; }
  BitVec& raw() { return bits_; }

  /// Sets variable v to exactly value k (clears the rest of the part).
  void set_value(const CubeSpec& spec, int v, int k) {
    uint64_t* w = bits_.data();
    for (int si = spec.seg_begin(v); si < spec.seg_end(v); ++si) {
      const CubeSpec::VarSeg& s = spec.seg(si);
      w[s.word] &= ~s.mask;
    }
    bits_.set(spec.bit(v, k));
  }

  /// Makes variable v full (don't-care).
  void set_full(const CubeSpec& spec, int v) {
    uint64_t* w = bits_.data();
    for (int si = spec.seg_begin(v); si < spec.seg_end(v); ++si) {
      const CubeSpec::VarSeg& s = spec.seg(si);
      w[s.word] |= s.mask;
    }
  }

  bool part_full(const CubeSpec& spec, int v) const {
    const uint64_t* w = bits_.data();
    for (int si = spec.seg_begin(v); si < spec.seg_end(v); ++si) {
      const CubeSpec::VarSeg& s = spec.seg(si);
      if ((w[s.word] & s.mask) != s.mask) return false;
    }
    return true;
  }
  bool part_empty(const CubeSpec& spec, int v) const {
    const uint64_t* w = bits_.data();
    for (int si = spec.seg_begin(v); si < spec.seg_end(v); ++si) {
      const CubeSpec::VarSeg& s = spec.seg(si);
      if ((w[s.word] & s.mask) != 0) return false;
    }
    return true;
  }
  int part_count(const CubeSpec& spec, int v) const {
    const uint64_t* w = bits_.data();
    int c = 0;
    for (int si = spec.seg_begin(v); si < spec.seg_end(v); ++si) {
      const CubeSpec::VarSeg& s = spec.seg(si);
      c += __builtin_popcountll(w[s.word] & s.mask);
    }
    return c;
  }

  /// True iff the cube denotes a non-empty set (every part non-empty).
  bool nonempty(const CubeSpec& spec) const {
    const uint64_t* w = bits_.data();
    const int nv = spec.num_vars();
    for (int v = 0; v < nv; ++v) {
      bool hit = false;
      for (int si = spec.seg_begin(v); si < spec.seg_end(v) && !hit; ++si) {
        const CubeSpec::VarSeg& s = spec.seg(si);
        hit = (w[s.word] & s.mask) != 0;
      }
      if (!hit) return false;
    }
    return true;
  }

  bool is_full(const CubeSpec& spec) const {
    (void)spec;
    return bits_.all();
  }

  /// Set containment: *this contains o iff o's bits are a subset (and both
  /// denote non-empty sets; callers keep cubes non-empty as an invariant).
  bool contains(const Cube& o) const { return bits_.contains(o.bits_); }

  /// True iff the intersection is a non-empty cube (distance 0).
  /// Allocation-free: tests every variable part of a & b word-parallel.
  bool intersects(const CubeSpec& spec, const Cube& o) const {
    const uint64_t* a = bits_.data();
    const uint64_t* b = o.bits_.data();
    const int nv = spec.num_vars();
    for (int v = 0; v < nv; ++v) {
      bool hit = false;
      for (int si = spec.seg_begin(v); si < spec.seg_end(v) && !hit; ++si) {
        const CubeSpec::VarSeg& s = spec.seg(si);
        hit = (a[s.word] & b[s.word] & s.mask) != 0;
      }
      if (!hit) return false;
    }
    return true;
  }

  /// Intersection; may be an empty cube (check nonempty()).
  Cube intersect(const Cube& o) const {
    Cube t = *this;
    t.bits_ &= o.bits_;
    return t;
  }

  /// Smallest cube containing both.
  Cube supercube(const Cube& o) const {
    Cube t = *this;
    t.bits_ |= o.bits_;
    return t;
  }

  /// Number of variables whose parts do not intersect.
  int distance(const CubeSpec& spec, const Cube& o) const {
    const uint64_t* a = bits_.data();
    const uint64_t* b = o.bits_.data();
    const int nv = spec.num_vars();
    int d = 0;
    for (int v = 0; v < nv; ++v) {
      bool hit = false;
      for (int si = spec.seg_begin(v); si < spec.seg_end(v) && !hit; ++si) {
        const CubeSpec::VarSeg& s = spec.seg(si);
        hit = (a[s.word] & b[s.word] & s.mask) != 0;
      }
      if (!hit) ++d;
    }
    return d;
  }

  /// True iff the parts of variable v are disjoint between *this and o.
  bool disjoint_var(const CubeSpec& spec, const Cube& o, int v) const {
    const uint64_t* a = bits_.data();
    const uint64_t* b = o.bits_.data();
    for (int si = spec.seg_begin(v); si < spec.seg_end(v); ++si) {
      const CubeSpec::VarSeg& s = spec.seg(si);
      if ((a[s.word] & b[s.word] & s.mask) != 0) return false;
    }
    return true;
  }

  /// Espresso cofactor of *this with respect to p. Requires distance 0.
  /// For each variable: result part = this_part | ~p_part.
  Cube cofactor(const CubeSpec& spec, const Cube& p) const {
    (void)spec;
    Cube t = *this;
    t.bits_.or_not(p.bits_);
    return t;
  }

  /// Number of set bits (used as a size measure for ordering heuristics).
  int weight() const { return bits_.count(); }

  /// Number of minterms the cube denotes.
  long double minterms(const CubeSpec& spec) const {
    long double m = 1;
    for (int v = 0; v < spec.num_vars(); ++v) m *= part_count(spec, v);
    return m;
  }

  bool operator==(const Cube& o) const { return bits_ == o.bits_; }
  bool operator!=(const Cube& o) const { return bits_ != o.bits_; }
  bool operator<(const Cube& o) const { return bits_ < o.bits_; }

  std::string to_string(const CubeSpec& spec) const {
    std::string s;
    for (int v = 0; v < spec.num_vars(); ++v) {
      if (v) s += '|';
      for (int j = 0; j < spec.size(v); ++j)
        s += bits_.get(spec.bit(v, j)) ? '1' : '0';
    }
    return s;
  }

 private:
  BitVec bits_;
};

}  // namespace nova::logic
