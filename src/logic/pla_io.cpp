#include "logic/pla_io.hpp"

#include <sstream>
#include <stdexcept>

#include "check/faultinject.hpp"

namespace nova::logic {

CubeSpec Pla::spec() const {
  std::vector<int> sizes(num_inputs, 2);
  sizes.push_back(std::max(num_outputs, 1));
  return CubeSpec(std::move(sizes));
}

namespace {
[[noreturn]] void fail(int line, const std::string& msg) {
  throw std::runtime_error("pla parse error at line " + std::to_string(line) +
                           ": " + msg);
}
}  // namespace

Pla parse_pla(std::istream& in) {
  Pla pla;
  struct Row {
    std::string in, out;
    int line;
  };
  std::vector<Row> rows;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ss(line);
    std::string tok;
    if (!(ss >> tok)) continue;
    if (tok == ".i") {
      if (!(ss >> pla.num_inputs) || pla.num_inputs < 0) fail(lineno, "bad .i");
      if (pla.num_inputs > kMaxPlaInputs)
        fail(lineno, ".i " + std::to_string(pla.num_inputs) +
                         " exceeds the input cap of " +
                         std::to_string(kMaxPlaInputs));
    } else if (tok == ".o") {
      if (!(ss >> pla.num_outputs) || pla.num_outputs < 0)
        fail(lineno, "bad .o");
      if (pla.num_outputs > kMaxPlaOutputs)
        fail(lineno, ".o " + std::to_string(pla.num_outputs) +
                         " exceeds the output cap of " +
                         std::to_string(kMaxPlaOutputs));
    } else if (tok == ".ilb") {
      std::string l;
      while (ss >> l) pla.input_labels.push_back(l);
    } else if (tok == ".ob") {
      std::string l;
      while (ss >> l) pla.output_labels.push_back(l);
    } else if (tok == ".p" || tok == ".type") {
      continue;  // .p is advisory; only type fd semantics are supported
    } else if (tok == ".e" || tok == ".end") {
      break;
    } else if (tok[0] == '.') {
      continue;  // unknown directive: ignore
    } else {
      Row r;
      r.in = tok;
      if (!(ss >> r.out)) fail(lineno, "row needs input and output fields");
      r.line = lineno;
      if (static_cast<int>(rows.size()) >= kMaxPlaTerms)
        fail(lineno, "row count exceeds the term cap of " +
                         std::to_string(kMaxPlaTerms));
      rows.push_back(std::move(r));
    }
  }
  check::fault::point("pla.parse");
  if (pla.num_inputs <= 0 && !rows.empty())
    pla.num_inputs = static_cast<int>(rows[0].in.size());
  if (pla.num_outputs <= 0 && !rows.empty())
    pla.num_outputs = static_cast<int>(rows[0].out.size());

  CubeSpec spec = pla.spec();
  pla.on = Cover(spec);
  pla.dc = Cover(spec);
  const int ov = pla.num_inputs;
  for (const Row& r : rows) {
    if (static_cast<int>(r.in.size()) != pla.num_inputs)
      fail(r.line, "input field width mismatch");
    if (static_cast<int>(r.out.size()) != pla.num_outputs)
      fail(r.line, "output field width mismatch");
    Cube base = Cube::full(spec);
    base.set_binary_from_pla(spec, 0, r.in);
    Cube onc = base;
    for (int k = 0; k < spec.size(ov); ++k) onc.clear(spec.bit(ov, k));
    bool any = false;
    for (int j = 0; j < pla.num_outputs; ++j) {
      char c = r.out[j];
      if (c == '1' || c == '4') {
        onc.set(spec.bit(ov, j));
        any = true;
      } else if (c == '-' || c == '2') {
        Cube d = base;
        d.set_value(spec, ov, j);
        pla.dc.add(d);
      } else if (c != '0' && c != '~') {
        fail(r.line, std::string("bad output character '") + c + "'");
      }
    }
    if (any) pla.on.add(onc);
  }
  return pla;
}

Pla parse_pla_string(const std::string& text) {
  std::istringstream ss(text);
  return parse_pla(ss);
}

namespace {
void write_rows(const Cover& cover, int ni, int no, char on_char,
                std::ostream& out) {
  const CubeSpec& spec = cover.spec();
  const int ov = ni;
  for (const auto& c : cover) {
    std::string in(ni, '-');
    for (int v = 0; v < ni; ++v) {
      bool v0 = c.get(spec.bit(v, 0)), v1 = c.get(spec.bit(v, 1));
      in[v] = v0 && v1 ? '-' : (v1 ? '1' : '0');
    }
    std::string o(no, '0');
    for (int j = 0; j < no && j < spec.size(ov); ++j) {
      if (c.get(spec.bit(ov, j))) o[j] = on_char;
    }
    out << in << ' ' << o << '\n';
  }
}
}  // namespace

void write_pla(const Pla& pla, std::ostream& out) {
  out << ".i " << pla.num_inputs << "\n.o " << pla.num_outputs << "\n";
  out << ".p " << (pla.on.size() + pla.dc.size()) << "\n";
  out << ".type fd\n";
  write_rows(pla.on, pla.num_inputs, pla.num_outputs, '1', out);
  write_rows(pla.dc, pla.num_inputs, pla.num_outputs, '-', out);
  out << ".e\n";
}

std::string write_pla_string(const Pla& pla) {
  std::ostringstream ss;
  write_pla(pla, ss);
  return ss.str();
}

}  // namespace nova::logic
