#include "logic/cover.hpp"

#include <algorithm>

#include "obs/obs.hpp"

namespace nova::logic {
namespace {

/// Picks the variable to branch on: the one with non-full parts in the most
/// cubes (most binate), tie-broken by fewer values (cheaper branching).
/// Returns -1 if every cube has every part full (i.e. some cube is full).
int select_var(const Cover& F) {
  const CubeSpec& spec = F.spec();
  int best = -1, best_count = 0, best_size = 0;
  for (int v = 0; v < spec.num_vars(); ++v) {
    int cnt = 0;
    for (const Cube& c : F) {
      if (!c.part_full(spec, v)) ++cnt;
    }
    if (cnt == 0) continue;
    if (best == -1 || cnt > best_count ||
        (cnt == best_count && spec.size(v) < best_size)) {
      best = v;
      best_count = cnt;
      best_size = spec.size(v);
    }
  }
  return best;
}

Cube value_cube(const CubeSpec& spec, int v, int k) {
  Cube c = Cube::full(spec);
  c.set_value(spec, v, k);
  return c;
}

}  // namespace

void Cover::make_scc() {
  // Sort by descending weight so that containers precede containees; then a
  // single forward pass removes contained cubes.
  std::stable_sort(cubes_.begin(), cubes_.end(), [](const Cube& a, const Cube& b) {
    return a.weight() > b.weight();
  });
  std::vector<Cube> kept;
  kept.reserve(cubes_.size());
  for (const Cube& c : cubes_) {
    bool contained = false;
    for (const Cube& k : kept) {
      if (k.contains(c)) {
        contained = true;
        break;
      }
    }
    if (!contained) kept.push_back(c);
  }
  cubes_ = std::move(kept);
}

Cover cofactor(const Cover& F, const Cube& p) {
  Cover R(F.spec());
  R.reserve(F.size());
  for (const Cube& c : F) {
    if (c.intersects(F.spec(), p)) R.add(c.cofactor(F.spec(), p));
  }
  return R;
}

bool tautology(const Cover& F) {
  obs::counter_add("logic.tautology_calls");
  if (F.empty()) return F.spec().total_bits() == 0;
  const CubeSpec& spec = F.spec();
  // Fast accept: a full cube covers everything.
  for (const Cube& c : F) {
    if (c.is_full(spec)) return true;
  }
  // Fast reject: if some value of some variable appears in no cube, the
  // corresponding slice of the universe is uncovered.
  Cube orall(spec);
  for (const Cube& c : F) orall.raw() |= c.raw();
  if (!orall.is_full(spec)) return false;

  int v = select_var(F);
  if (v < 0) return true;  // unreachable: some cube would be full
  for (int k = 0; k < spec.size(v); ++k) {
    Cover Fk = cofactor(F, value_cube(spec, v, k));
    if (!tautology(Fk)) return false;
  }
  return true;
}

bool covers_cube(const Cover& F, const Cube& c) {
  if (F.single_cube_contains(c)) return true;
  return tautology(cofactor(F, c));
}

bool covers_cover(const Cover& F, const Cover& G) {
  for (const Cube& g : G) {
    if (!covers_cube(F, g)) return false;
  }
  return true;
}

Cover complement(const Cover& F) {
  obs::counter_add("logic.complement_calls");
  const CubeSpec& spec = F.spec();
  Cover R(spec);
  if (F.empty()) {
    R.add(Cube::full(spec));
    return R;
  }
  for (const Cube& c : F) {
    if (c.is_full(spec)) return R;  // complement of universe is empty
  }
  if (F.size() == 1) {
    // Complement of a single cube: for each non-full variable part, a cube
    // admitting exactly the missing values of that variable.
    const Cube& c = F[0];
    for (int v = 0; v < spec.num_vars(); ++v) {
      if (c.part_full(spec, v)) continue;
      Cube d = Cube::full(spec);
      for (int k = 0; k < spec.size(v); ++k) {
        if (c.get(spec.bit(v, k)))
          d.clear(spec.bit(v, k));
      }
      R.add(d);
    }
    return R;
  }
  int v = select_var(F);
  for (int k = 0; k < spec.size(v); ++k) {
    Cube vk = value_cube(spec, v, k);
    Cover Ck = complement(cofactor(F, vk));
    for (Cube c : Ck) {
      c.raw() &= vk.raw();
      R.add(c);
    }
  }
  R.make_scc();
  return R;
}

Cube supercube_of(const Cover& F) {
  Cube s(F.spec());
  for (const Cube& c : F) s.raw() |= c.raw();
  return s;
}

bool covers_minterm(const Cover& F, const Cube& m) {
  return F.single_cube_contains(m);
}

namespace {
long double covered_fraction(const Cover& F) {
  const CubeSpec& spec = F.spec();
  if (F.empty()) return 0.0L;
  for (const Cube& c : F) {
    if (c.is_full(spec)) return 1.0L;
  }
  int v = select_var(F);
  if (v < 0) return 1.0L;
  long double sum = 0.0L;
  for (int k = 0; k < spec.size(v); ++k) {
    Cube vk = Cube::full(spec);
    vk.set_value(spec, v, k);
    sum += covered_fraction(cofactor(F, vk));
  }
  return sum / spec.size(v);
}
}  // namespace

long double count_minterms(const Cover& F) {
  long double total = Cube::full(F.spec()).minterms(F.spec());
  return covered_fraction(F) * total;
}

}  // namespace nova::logic
