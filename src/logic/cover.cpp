#include "logic/cover.hpp"

#include <algorithm>
#include <unordered_map>

#include "obs/obs.hpp"

namespace nova::logic {
namespace {

/// Picks the variable to branch on: the one with non-full parts in the most
/// cubes (most binate), tie-broken by fewer values (cheaper branching).
/// Returns -1 if every cube has every part full (i.e. some cube is full).
/// O(num_vars) against the cover's personality cache.
int select_var(const Cover& F) {
  const CubeSpec& spec = F.spec();
  const std::vector<int32_t>& nf = F.nonfull_counts();
  int best = -1, best_count = 0, best_size = 0;
  for (int v = 0; v < spec.num_vars(); ++v) {
    int cnt = nf[v];
    if (cnt == 0) continue;
    if (best == -1 || cnt > best_count ||
        (cnt == best_count && spec.size(v) < best_size)) {
      best = v;
      best_count = cnt;
      best_size = spec.size(v);
    }
  }
  return best;
}

/// Cofactor of F against the value cube "v = k", exploiting its structure:
/// a cube intersects the value cube iff it has bit (v,k), and its cofactor
/// is itself with variable v raised to full. Output-identical to
/// cofactor(F, full-with-v=k) at a fraction of the cost -- the generic path
/// pays an all-variables intersection test per cube.
Cover cofactor_value(const Cover& F, int v, int k) {
  const CubeSpec& spec = F.spec();
  const int bvk = spec.bit(v, k);
  Cover R(spec);
  R.reserve(F.size());
  for (const Cube& c : F) {
    if (!c.get(bvk)) continue;
    Cube t = c;
    t.set_full(spec, v);
    R.add_nonempty(t);
  }
  return R;
}

}  // namespace

void Cover::build_nonfull() const {
  obs::counter_add("perf.personality.nonfull_rebuilds");
  nonfull_.assign(spec_.num_vars(), 0);
  for (const Cube& c : cubes_) {
    const uint64_t* w = c.raw().data();
    for (int v = 0; v < spec_.num_vars(); ++v) {
      for (int si = spec_.seg_begin(v); si < spec_.seg_end(v); ++si) {
        const CubeSpec::VarSeg& s = spec_.seg(si);
        if ((w[s.word] & s.mask) != s.mask) {
          ++nonfull_[v];
          break;
        }
      }
    }
  }
  nonfull_valid_ = true;
}

void Cover::build_colcount() const {
  obs::counter_add("perf.personality.colcount_rebuilds");
  colcount_.assign(spec_.total_bits(), 0);
  for (const Cube& c : cubes_) {
    const uint64_t* w = c.raw().data();
    const int nw = c.raw().num_words();
    for (int wi = 0; wi < nw; ++wi) {
      uint64_t part = w[wi];
      while (part != 0) {
        colcount_[(wi << 6) + __builtin_ctzll(part)] += 1;
        part &= part - 1;
      }
    }
  }
  colcount_valid_ = true;
}

void Cover::personality_count(const Cube& c, int delta) const {
  if (!nonfull_valid_ && !colcount_valid_) return;
  const uint64_t* w = c.raw().data();
  if (nonfull_valid_) {
    for (int v = 0; v < spec_.num_vars(); ++v) {
      for (int si = spec_.seg_begin(v); si < spec_.seg_end(v); ++si) {
        const CubeSpec::VarSeg& s = spec_.seg(si);
        if ((w[s.word] & s.mask) != s.mask) {
          nonfull_[v] += delta;
          break;
        }
      }
    }
  }
  if (colcount_valid_) {
    const int nw = c.raw().num_words();
    for (int wi = 0; wi < nw; ++wi) {
      uint64_t part = w[wi];
      while (part != 0) {
        colcount_[(wi << 6) + __builtin_ctzll(part)] += delta;
        part &= part - 1;
      }
    }
  }
}

int Cover::dedup() {
  if (cubes_.size() < 2) return 0;
  std::unordered_map<size_t, std::vector<int>> buckets;
  buckets.reserve(cubes_.size());
  std::vector<Cube> kept;
  kept.reserve(cubes_.size());
  int dropped = 0;
  for (const Cube& c : cubes_) {
    std::vector<int>& bucket = buckets[c.raw().hash()];
    bool dup = false;
    for (int ki : bucket) {
      if (kept[ki] == c) {
        dup = true;
        break;
      }
    }
    if (dup) {
      ++dropped;
      continue;
    }
    bucket.push_back(static_cast<int>(kept.size()));
    kept.push_back(c);
  }
  if (dropped > 0) {
    cubes_ = std::move(kept);
    invalidate_personality();
    obs::counter_add("perf.cover.dedup_drops", dropped);
  }
  return dropped;
}

void Cover::make_scc() {
  // Hash-based exact-duplicate prefilter: O(n) removal of repeats before the
  // quadratic containment pass (duplicates are contained cubes, so the final
  // cover is unchanged -- SCC would drop them anyway, just more slowly).
  dedup();
  // Sort by descending weight so that containers precede containees; then a
  // single forward pass removes contained cubes.
  std::stable_sort(cubes_.begin(), cubes_.end(), [](const Cube& a, const Cube& b) {
    return a.weight() > b.weight();
  });
  std::vector<Cube> kept;
  kept.reserve(cubes_.size());
  for (const Cube& c : cubes_) {
    bool contained = false;
    for (const Cube& k : kept) {
      if (k.contains(c)) {
        contained = true;
        break;
      }
    }
    if (!contained) kept.push_back(c);
  }
  cubes_ = std::move(kept);
  invalidate_personality();
}

Cover cofactor(const Cover& F, const Cube& p) {
  Cover R(F.spec());
  R.reserve(F.size());
  for (const Cube& c : F) {
    // The cofactor of an intersecting cube is non-empty by construction, so
    // skip add()'s nonempty() rescan.
    if (c.intersects(F.spec(), p)) R.add_nonempty(c.cofactor(F.spec(), p));
  }
  return R;
}

namespace {

/// Reusable per-node working storage for the tautology recursion. A single
/// instance is threaded through the whole recursion; every field is dead by
/// the time a recursive call reuses it, so no node ever re-allocates.
struct TautScratch {
  std::vector<int32_t> nonfull;    // per-var count of non-full parts
  std::vector<uint64_t> binate_or; // per-seg union over non-full parts
  std::vector<int32_t> parent;     // union-find over variables
  std::vector<int32_t> first_var;  // per-cube first non-full variable
  std::vector<int> unate;
};

bool tautology_rec(const Cover& F, TautScratch& sc) {
  if (F.empty()) return F.spec().total_bits() == 0;
  const CubeSpec& spec = F.spec();
  const int nv = spec.num_vars();

  // One fused word-parallel scan gathers everything the node needs:
  //  - full-cube fast accept (a full cube covers the universe),
  //  - the union of all cubes (orall fast reject),
  //  - per-variable non-full counts (binateness, for branch selection),
  //  - the per-segment union over NON-FULL parts only (unate detection),
  //  - a union-find over co-occurring non-full variables (components).
  sc.nonfull.assign(nv, 0);
  sc.binate_or.assign(spec.num_segs(), 0);
  sc.parent.resize(nv);
  for (int v = 0; v < nv; ++v) sc.parent[v] = v;
  auto find = [&sc](int x) {
    while (sc.parent[x] != x) {
      sc.parent[x] = sc.parent[sc.parent[x]];
      x = sc.parent[x];
    }
    return x;
  };
  sc.first_var.clear();
  Cube orall(spec);
  for (const Cube& c : F) {
    const uint64_t* w = c.raw().data();
    orall.raw() |= c.raw();
    int first = -1;
    for (int v = 0; v < nv; ++v) {
      const int sb = spec.seg_begin(v), se = spec.seg_end(v);
      if (se - sb == 1) {
        // Common case: the variable lives in one storage word.
        const CubeSpec::VarSeg& s = spec.seg(sb);
        const uint64_t part = w[s.word] & s.mask;
        if (part == s.mask) continue;
        sc.binate_or[sb] |= part;
      } else {
        bool full = true;
        for (int si = sb; si < se; ++si) {
          const CubeSpec::VarSeg& s = spec.seg(si);
          if ((w[s.word] & s.mask) != s.mask) full = false;
        }
        if (full) continue;
        for (int si = sb; si < se; ++si) {
          const CubeSpec::VarSeg& s = spec.seg(si);
          sc.binate_or[si] |= w[s.word] & s.mask;
        }
      }
      ++sc.nonfull[v];
      if (first < 0)
        first = v;
      else
        sc.parent[find(v)] = find(first);
    }
    if (first < 0) return true;  // full cube: covers the universe
    sc.first_var.push_back(first);
  }
  // Fast reject: if some value of some variable appears in no cube, the
  // corresponding slice of the universe is uncovered.
  if (!orall.is_full(spec)) return false;

  // Unate reduction (espresso's UNATE_REDUCE, MV form): variable v is unate
  // when some value k of v appears in no non-full part -- the union of the
  // non-full v-parts misses k. Cofactoring F against v=k then keeps exactly
  // the cubes full in v, and every other branch v=j is a superset of that
  // cofactor, so
  //   tautology(F)  <=>  tautology({c in F : c full in every unate v}).
  sc.unate.clear();
  for (int v = 0; v < nv; ++v) {
    if (sc.nonfull[v] == 0) continue;  // full everywhere: no reduction value
    for (int si = spec.seg_begin(v); si < spec.seg_end(v); ++si) {
      if (sc.binate_or[si] != spec.seg(si).mask) {
        sc.unate.push_back(v);
        break;
      }
    }
  }
  if (!sc.unate.empty()) {
    obs::counter_add("perf.tautology.unate_reductions");
    Cover G(spec);
    G.reserve(F.size());
    for (const Cube& c : F) {
      bool keep = true;
      for (int v : sc.unate) {
        if (!c.part_full(spec, v)) {
          keep = false;
          break;
        }
      }
      if (keep) G.add_nonempty(c);
    }
    // Every cube was non-full in some unate variable: the v=k cofactor is
    // empty, so a whole slice of the universe is uncovered.
    if (G.empty()) return false;
    return tautology_rec(G, sc);
  }

  // Component splitting: two variables interact when some cube has non-full
  // parts in both. When the binate variables fall apart into >= 2 groups,
  // F = F1 u F2 u ... with each Fg a cylinder over its group, and the
  // uncovered region is the product of the per-group uncovered regions, so
  //   tautology(F)  <=>  tautology(Fg) for SOME g.
  // Build ALL component subcovers before recursing: the scratch is reused
  // by the recursive calls.
  int root0 = find(sc.first_var[0]);
  bool split = false;
  for (int i = 1; i < F.size() && !split; ++i)
    split = find(sc.first_var[i]) != root0;
  if (split) {
    obs::counter_add("perf.tautology.component_splits");
    std::vector<int> roots;
    std::vector<Cover> groups;
    for (int i = 0; i < F.size(); ++i) {
      int r = find(sc.first_var[i]);
      int g = 0;
      while (g < static_cast<int>(roots.size()) && roots[g] != r) ++g;
      if (g == static_cast<int>(roots.size())) {
        roots.push_back(r);
        groups.emplace_back(spec);
      }
      groups[g].add_nonempty(F[i]);
    }
    for (const Cover& G : groups) {
      if (tautology_rec(G, sc)) return true;
    }
    return false;
  }

  // Branch on the most-binate variable (same rule as select_var, computed
  // from the counts this node's scan already gathered).
  int v = -1, best_count = 0, best_size = 0;
  for (int u = 0; u < nv; ++u) {
    if (sc.nonfull[u] == 0) continue;
    if (v == -1 || sc.nonfull[u] > best_count ||
        (sc.nonfull[u] == best_count && spec.size(u) < best_size)) {
      v = u;
      best_count = sc.nonfull[u];
      best_size = spec.size(u);
    }
  }
  if (v < 0) return true;  // unreachable: some cube would be full
  for (int k = 0; k < spec.size(v); ++k) {
    Cover Fk = cofactor_value(F, v, k);
    if (!tautology_rec(Fk, sc)) return false;
  }
  return true;
}

}  // namespace

bool tautology(const Cover& F) {
  obs::counter_add("logic.tautology_calls");
  TautScratch sc;
  return tautology_rec(F, sc);
}

bool covers_cube(const Cover& F, const Cube& c) {
  if (F.single_cube_contains(c)) return true;
  return tautology(cofactor(F, c));
}

bool covers_cover(const Cover& F, const Cover& G) {
  for (const Cube& g : G) {
    if (!covers_cube(F, g)) return false;
  }
  return true;
}

Cover complement(const Cover& F) {
  obs::counter_add("logic.complement_calls");
  const CubeSpec& spec = F.spec();
  Cover R(spec);
  if (F.empty()) {
    R.add(Cube::full(spec));
    return R;
  }
  for (const Cube& c : F) {
    if (c.is_full(spec)) return R;  // complement of universe is empty
  }
  if (F.size() == 1) {
    // Complement of a single cube: for each non-full variable part, a cube
    // admitting exactly the missing values of that variable.
    const Cube& c = F[0];
    for (int v = 0; v < spec.num_vars(); ++v) {
      if (c.part_full(spec, v)) continue;
      Cube d = Cube::full(spec);
      for (int k = 0; k < spec.size(v); ++k) {
        if (c.get(spec.bit(v, k)))
          d.clear(spec.bit(v, k));
      }
      R.add(d);
    }
    return R;
  }
  int v = select_var(F);
  for (int k = 0; k < spec.size(v); ++k) {
    Cube vk = Cube::full(spec);
    vk.set_value(spec, v, k);
    Cover Ck = complement(cofactor_value(F, v, k));
    for (Cube c : Ck) {
      c.raw() &= vk.raw();
      R.add(c);
    }
  }
  R.make_scc();
  return R;
}

Cube supercube_of(const Cover& F) {
  Cube s(F.spec());
  for (const Cube& c : F) s.raw() |= c.raw();
  return s;
}

bool covers_minterm(const Cover& F, const Cube& m) {
  return F.single_cube_contains(m);
}

namespace {
long double covered_fraction(const Cover& F) {
  const CubeSpec& spec = F.spec();
  if (F.empty()) return 0.0L;
  for (const Cube& c : F) {
    if (c.is_full(spec)) return 1.0L;
  }
  int v = select_var(F);
  if (v < 0) return 1.0L;
  long double sum = 0.0L;
  for (int k = 0; k < spec.size(v); ++k) {
    sum += covered_fraction(cofactor_value(F, v, k));
  }
  return sum / spec.size(v);
}
}  // namespace

long double count_minterms(const Cover& F) {
  long double total = Cube::full(F.spec()).minterms(F.spec());
  return covered_fraction(F) * total;
}

}  // namespace nova::logic
