// Variable layout for positional-cube notation.
//
// A CubeSpec describes a product space of multiple-valued variables.
// Variable v with `size(v)` values occupies `size(v)` consecutive bit
// positions in every cube; a binary variable is simply a 2-valued variable.
// Multi-output functions are represented with the output part as the last
// variable (the characteristic-function view: minimizing chi(x, j) over
// (inputs..., output-index j) is exactly multi-output minimization).
#pragma once

#include <numeric>
#include <vector>

#include "check/contract.hpp"

namespace nova::logic {

class CubeSpec {
 public:
  CubeSpec() = default;
  explicit CubeSpec(std::vector<int> sizes) : sizes_(std::move(sizes)) {
    offsets_.reserve(sizes_.size() + 1);
    int off = 0;
    for (int s : sizes_) {
      NOVA_CONTRACT(cheap, s >= 1, "variable size must be >= 1");
      offsets_.push_back(off);
      off += s;
    }
    offsets_.push_back(off);
  }

  /// Spec with `n` binary variables (and nothing else).
  static CubeSpec binary(int n) { return CubeSpec(std::vector<int>(n, 2)); }

  int num_vars() const { return static_cast<int>(sizes_.size()); }
  int total_bits() const { return offsets_.empty() ? 0 : offsets_.back(); }
  int size(int v) const { return sizes_[v]; }
  int offset(int v) const { return offsets_[v]; }
  bool is_binary(int v) const { return sizes_[v] == 2; }

  /// Bit position of value `k` of variable `v`.
  int bit(int v, int k) const {
    NOVA_CONTRACT(paranoid, k >= 0 && k < sizes_[v],
                  "value index out of range for variable");
    return offsets_[v] + k;
  }

  bool operator==(const CubeSpec& o) const { return sizes_ == o.sizes_; }
  bool operator!=(const CubeSpec& o) const { return !(*this == o); }

 private:
  std::vector<int> sizes_;
  std::vector<int> offsets_;
};

}  // namespace nova::logic
