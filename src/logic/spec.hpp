// Variable layout for positional-cube notation.
//
// A CubeSpec describes a product space of multiple-valued variables.
// Variable v with `size(v)` values occupies `size(v)` consecutive bit
// positions in every cube; a binary variable is simply a 2-valued variable.
// Multi-output functions are represented with the output part as the last
// variable (the characteristic-function view: minimizing chi(x, j) over
// (inputs..., output-index j) is exactly multi-output minimization).
//
// Besides the (offset, size) layout the spec precomputes, per variable, the
// list of (word index, mask) segments its bit range occupies in the packed
// 64-bit-word cube storage, plus a bit -> variable lookup table. These let
// every per-variable cube kernel (part emptiness/fullness, distance,
// intersection, cofactor feasibility) run as a handful of word operations
// instead of per-bit probes; see docs/PERFORMANCE.md.
#pragma once

#include <numeric>
#include <vector>

#include "check/contract.hpp"

namespace nova::logic {

class CubeSpec {
 public:
  /// One 64-bit-word slice of a variable's bit range: `mask` selects the
  /// variable's bits inside word `word` of the cube storage.
  struct VarSeg {
    int32_t word = 0;
    uint64_t mask = 0;
  };

  CubeSpec() = default;
  explicit CubeSpec(std::vector<int> sizes) : sizes_(std::move(sizes)) {
    offsets_.reserve(sizes_.size() + 1);
    int off = 0;
    for (int s : sizes_) {
      NOVA_CONTRACT(cheap, s >= 1, "variable size must be >= 1");
      offsets_.push_back(off);
      off += s;
    }
    offsets_.push_back(off);
    build_segments();
  }

  /// Spec with `n` binary variables (and nothing else).
  static CubeSpec binary(int n) { return CubeSpec(std::vector<int>(n, 2)); }

  int num_vars() const { return static_cast<int>(sizes_.size()); }
  int total_bits() const { return offsets_.empty() ? 0 : offsets_.back(); }
  int size(int v) const { return sizes_[v]; }
  int offset(int v) const { return offsets_[v]; }
  bool is_binary(int v) const { return sizes_[v] == 2; }

  /// Bit position of value `k` of variable `v`.
  int bit(int v, int k) const {
    NOVA_CONTRACT(paranoid, k >= 0 && k < sizes_[v],
                  "value index out of range for variable");
    return offsets_[v] + k;
  }

  /// Variable owning bit position `b` (O(1) table lookup).
  int var_of_bit(int b) const {
    NOVA_CONTRACT(paranoid, b >= 0 && b < total_bits(),
                  "bit index out of range");
    return bit_var_[b];
  }

  /// Word segments of variable v: indices [seg_begin(v), seg_end(v)) into
  /// seg(). A variable narrower than 64 bits that does not straddle a word
  /// boundary has exactly one segment (the common case).
  int seg_begin(int v) const { return seg_off_[v]; }
  int seg_end(int v) const { return seg_off_[v + 1]; }
  int num_segs() const { return static_cast<int>(segs_.size()); }
  const VarSeg& seg(int i) const { return segs_[i]; }
  /// True iff variable v occupies a single storage word.
  bool single_seg(int v) const { return seg_off_[v + 1] - seg_off_[v] == 1; }

  bool operator==(const CubeSpec& o) const { return sizes_ == o.sizes_; }
  bool operator!=(const CubeSpec& o) const { return !(*this == o); }

 private:
  void build_segments() {
    seg_off_.reserve(sizes_.size() + 1);
    bit_var_.resize(total_bits());
    for (int v = 0; v < num_vars(); ++v) {
      seg_off_.push_back(static_cast<int>(segs_.size()));
      int lo = offsets_[v];
      int hi = lo + sizes_[v];  // exclusive
      for (int b = lo; b < hi; ++b) bit_var_[b] = v;
      for (int w = lo >> 6; w <= (hi - 1) >> 6; ++w) {
        int first = w << 6, last = first + 63;
        int from = lo > first ? lo : first;
        int to = hi - 1 < last ? hi - 1 : last;
        uint64_t m = (~uint64_t{0}) >> (63 - (to - first));
        m &= (~uint64_t{0}) << (from - first);
        segs_.push_back({w, m});
      }
    }
    seg_off_.push_back(static_cast<int>(segs_.size()));
  }

  std::vector<int> sizes_;
  std::vector<int> offsets_;
  std::vector<VarSeg> segs_;
  std::vector<int> seg_off_;
  std::vector<int32_t> bit_var_;
};

}  // namespace nova::logic
