// Exact two-level minimization for small instances (Quine-McCluskey
// generalized to multiple-valued covers).
//
// Primes are computed as the Blake canonical form by iterated consensus
// with absorption; a minimum cover is then selected by branch-and-bound
// unate covering with essential-column extraction and row/column dominance.
// Intended for verification and for small blocks; everything is guarded by
// explicit work caps (`optimal` reports whether the bound was proven).
#pragma once

#include "logic/cover.hpp"
#include "util/budget.hpp"

namespace nova::logic {

struct ExactMinOptions {
  int max_primes = 4000;       ///< cap on the Blake canonical form size
  int max_minterms = 1 << 14;  ///< cap on covering-matrix rows
  long max_nodes = 200000;     ///< branch-and-bound node budget
  /// Optional cooperative budget probed per consensus round and per
  /// branch-and-bound node; exhaustion triggers the same greedy fallback
  /// as blowing a cap (optimal=false, result still a valid cover).
  util::Budget* budget = nullptr;
};

struct ExactMinResult {
  Cover cover;          ///< a minimum (or best-found) cover of ON using DC
  bool optimal = false; ///< true when minimality was proven within budget
  int num_primes = 0;
  int num_rows = 0;     ///< covering-matrix rows (ON minterms)
};

/// All prime implicants of ON u DC (Blake canonical form). Returns an
/// empty cover if the prime count exceeds opts.max_primes.
Cover blake_primes(const Cover& on, const Cover& dc,
                   const ExactMinOptions& opts = {});

/// MV consensus of two cubes on variable v; empty if undefined.
Cube consensus(const CubeSpec& spec, const Cube& a, const Cube& b, int v);

/// Exact minimization; falls back to a greedy cover (optimal=false) when a
/// cap is hit.
ExactMinResult exact_minimize(const Cover& on, const Cover& dc,
                              const ExactMinOptions& opts = {});
ExactMinResult exact_minimize(const Cover& on,
                              const ExactMinOptions& opts = {});

}  // namespace nova::logic
