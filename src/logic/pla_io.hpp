// Berkeley espresso .pla format reader/writer for binary-input,
// multi-output covers (type fd: '1' = on-set, '-' = don't-care output).
//
// Supported directives: .i .o .p .ilb .ob .type .e/.end; '#' comments.
// The in-memory representation is the characteristic-function cover used
// throughout this library (inputs as binary variables, outputs as the last
// multi-valued variable).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "logic/cover.hpp"

namespace nova::logic {

/// Hard caps on declared (.i/.o) widths and actual row counts; oversize
/// headers fail with a line-numbered parse error instead of allocating.
inline constexpr int kMaxPlaInputs = 4096;
inline constexpr int kMaxPlaOutputs = 4096;
inline constexpr int kMaxPlaTerms = 1 << 22;

struct Pla {
  int num_inputs = 0;
  int num_outputs = 0;
  std::vector<std::string> input_labels;   ///< optional (.ilb)
  std::vector<std::string> output_labels;  ///< optional (.ob)
  Cover on;  ///< characteristic-function cover (last var = outputs)
  Cover dc;  ///< '-' output entries

  CubeSpec spec() const;
};

/// Parses .pla text; throws std::runtime_error with line info on errors.
Pla parse_pla(std::istream& in);
Pla parse_pla_string(const std::string& text);

/// Writes .pla text (type fd). Cubes with dc-output entries are emitted
/// from the dc cover with '-' outputs.
void write_pla(const Pla& pla, std::ostream& out);
std::string write_pla_string(const Pla& pla);

}  // namespace nova::logic
