#include "logic/espresso.hpp"

#include <algorithm>
#include <numeric>

#include "check/contract.hpp"
#include "check/faultinject.hpp"
#include "logic/exact.hpp"  // consensus()
#include "obs/obs.hpp"

namespace nova::logic {
namespace {

/// Incremental feasibility tracker for expanding one cube against OFF.
///
/// For every off-cube d the expansion invariant is dist(cur, d) >= 1, i.e.
/// at least one variable part of cur is disjoint from d's. Raising bit b
/// (variable v) can only destroy disjointness in v. A raise is infeasible
/// iff some off-cube has exactly one disjoint variable left and that raise
/// would intersect it.
class ExpandTracker {
 public:
  ExpandTracker(const CubeSpec& spec, const Cube& start, const Cover& off)
      : spec_(spec), off_(off) {
    const int nv = spec.num_vars();
    disjoint_.assign(off.size(), std::vector<char>(nv, 0));
    count_.assign(off.size(), 0);
    danger_.assign(spec.total_bits(), 0);
    for (int di = 0; di < off.size(); ++di) {
      for (int v = 0; v < nv; ++v) {
        if (start.disjoint_var(spec, off[di], v)) {
          disjoint_[di][v] = 1;
          ++count_[di];
        }
      }
      // An off-cube intersecting the starting cube means ON and OFF overlap
      // (inconsistent input); poison the tracker so no raise is attempted.
      if (count_[di] == 0) poisoned_.push_back(di);
      if (count_[di] == 1) add_danger(di);
    }
  }

  bool feasible(int b) const {
    if (!poisoned_.empty()) return false;  // inconsistent input: no raises
    return danger_[b] == 0;
  }

  bool inconsistent() const { return !poisoned_.empty(); }

  /// Commits a feasible raise of bit b on `cur` (already updated by caller).
  void raise(int b, const Cube& /*cur*/) {
    int v = spec_.var_of_bit(b);
    for (int di = 0; di < off_.size(); ++di) {
      if (!disjoint_[di][v]) continue;
      if (!off_[di].get(b)) continue;
      // Variable v of off-cube di now intersects the expanded cube.
      if (count_[di] == 1) remove_danger(di);
      disjoint_[di][v] = 0;
      --count_[di];
      if (count_[di] == 1) add_danger(di);
      if (count_[di] == 0) poisoned_.push_back(di);
    }
  }

 private:
  void add_danger(int di) { bump_danger(di, +1); }
  void remove_danger(int di) { bump_danger(di, -1); }
  void bump_danger(int di, int delta) {
    int v = -1;
    for (int u = 0; u < spec_.num_vars(); ++u) {
      if (disjoint_[di][u]) {
        v = u;
        break;
      }
    }
    if (v < 0) return;
    // Walk the set bits of the off-cube's v-part word-parallel.
    const uint64_t* w = off_[di].raw().data();
    for (int si = spec_.seg_begin(v); si < spec_.seg_end(v); ++si) {
      const CubeSpec::VarSeg& s = spec_.seg(si);
      uint64_t part = w[s.word] & s.mask;
      while (part != 0) {
        danger_[(s.word << 6) + __builtin_ctzll(part)] += delta;
        part &= part - 1;
      }
    }
  }

  const CubeSpec& spec_;
  const Cover& off_;
  std::vector<std::vector<char>> disjoint_;
  std::vector<int> count_;
  std::vector<int> danger_;
  std::vector<int> poisoned_;
};

/// Expands one cube to a prime against OFF, preferring raises present in
/// many other cubes of F (so the expanded cube is likely to cover them).
Cube expand_cube(const Cube& c, const Cover& off,
                 const std::vector<int32_t>& score, const CubeSpec& spec) {
  Cube cur = c;
  ExpandTracker tracker(spec, c, off);
  if (tracker.inconsistent()) return cur;
  const int nbits = spec.total_bits();
  while (true) {
    int best = -1, best_score = -1;
    for (int b = 0; b < nbits; ++b) {
      if (cur.get(b)) continue;
      if (!tracker.feasible(b)) continue;
      if (score[b] > best_score) {
        best_score = score[b];
        best = b;
      }
    }
    if (best < 0) break;
    cur.set(best);
    tracker.raise(best, cur);
  }
  return cur;
}

struct Cost {
  int cubes;
  long weight;
  bool operator<(const Cost& o) const {
    return cubes != o.cubes ? cubes < o.cubes : weight < o.weight;
  }
};

Cost cost_of(const Cover& F) { return {F.size(), F.total_weight()}; }

/// Paranoid postcondition of minimization: ON subseteq result u DC and
/// result subseteq ON u DC (result may shed on-cubes that the don't-care
/// set absorbs), decided with the tautology-based covering checks.
void contract_minimization_post(const Cover& result, const Cover& on,
                                const Cover& dc) {
  if (!check::active(check::levels::paranoid)) return;
  obs::Span span("check.espresso_post");
  Cover rdc = result;
  rdc.add_all(dc);
  NOVA_CONTRACT(paranoid, covers_cover(rdc, on),
                "espresso result no longer covers the on-set");
  Cover ondc = on;
  ondc.add_all(dc);
  NOVA_CONTRACT(paranoid, covers_cover(ondc, result),
                "espresso result intersects the off-set");
}

/// LAST_GASP-style escape from local minima: reduce every cube maximally
/// and independently, then try pairwise supercube merges of the reduced
/// cubes; any merge that misses the off-set is a candidate new prime seed.
/// Returns an improved cover, or F unchanged.
Cover last_gasp(const Cover& F, const Cover& dc, const Cover& off) {
  const CubeSpec& spec = F.spec();
  // Independent maximal reduction (all against the original F).
  std::vector<Cube> red;
  red.reserve(F.size());
  for (int i = 0; i < F.size(); ++i) {
    Cover rest(spec);
    for (int j = 0; j < F.size(); ++j) {
      if (j != i) rest.add_nonempty(F[j]);
    }
    rest.add_all(dc);
    Cover rc = cofactor(rest, F[i]);
    if (tautology(rc)) continue;  // fully redundant cube: no seed from it
    Cube sc = supercube_of(complement(rc));
    Cube r = F[i].intersect(sc);
    if (r.nonempty(spec)) red.push_back(r);
  }
  // Pairwise merges that avoid the off-set.
  Cover merged(spec);
  for (size_t i = 0; i < red.size(); ++i) {
    for (size_t j = i + 1; j < red.size(); ++j) {
      Cube m = red[i].supercube(red[j]);
      bool hits = false;
      for (const Cube& d : off) {
        if (m.intersects(spec, d)) {
          hits = true;
          break;
        }
      }
      if (!hits && !merged.single_cube_contains(m)) merged.add(m);
    }
  }
  if (merged.empty()) return F;
  Cover trial = F;
  trial.add_all(merged);
  trial.make_scc();
  trial = irredundant(trial, dc);
  return cost_of(trial) < cost_of(F) ? trial : F;
}

}  // namespace

Cover expand(const Cover& F, const Cover& off) {
  obs::Span span("espresso.expand");
  obs::counter_add("espresso.expand_calls");
  obs::counter_add("espresso.expand_cubes_in", F.size());
  const CubeSpec& spec = F.spec();
  // Bit scores: how many cubes of F assert each bit. Raising popular bits
  // makes the expanded cube more likely to swallow other cubes. These are
  // exactly the cover's column counts (personality cache).
  const std::vector<int32_t>& score = F.column_counts();
  // Process smallest cubes first: they gain the most from expansion.
  std::vector<int> order(F.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](int a, int b) { return F[a].weight() < F[b].weight(); });

  Cover R(spec);
  std::vector<char> covered(F.size(), 0);
  long raises = 0;
  for (int idx : order) {
    if (covered[idx]) continue;
    Cube p = expand_cube(F[idx], off, score, spec);
    raises += p.weight() - F[idx].weight();
    // Mark any remaining cube swallowed by the new prime.
    for (int j = 0; j < F.size(); ++j) {
      if (!covered[j] && p.contains(F[j])) covered[j] = 1;
    }
    covered[idx] = 1;
    R.add(p);
  }
  R.make_scc();
  obs::counter_add("perf.expand.raises", raises);
  obs::counter_add("espresso.expand_cubes_out", R.size());
  return R;
}

Cover irredundant(const Cover& F, const Cover& dc) {
  obs::Span span("espresso.irredundant");
  obs::counter_add("espresso.irredundant_calls");
  // Sequential redundancy removal: drop cube i if the remaining cubes plus
  // the don't-care set still cover it. Order by descending weight so large
  // (likely-overlapping) cubes are considered for deletion first... large
  // cubes are *kept*; testing small cubes first removes specialists that the
  // big primes already cover.
  std::vector<char> alive(F.size(), 1);
  std::vector<int> order(F.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](int a, int b) { return F[a].weight() < F[b].weight(); });
  for (int i : order) {
    Cover rest(F.spec());
    for (int j = 0; j < F.size(); ++j) {
      if (j != i && alive[j]) rest.add_nonempty(F[j]);
    }
    rest.add_all(dc);
    if (covers_cube(rest, F[i])) alive[i] = 0;
  }
  Cover R(F.spec());
  for (int i = 0; i < F.size(); ++i) {
    if (alive[i]) R.add(F[i]);
  }
  obs::counter_add("espresso.irredundant_removed", F.size() - R.size());
  return R;
}

Cover reduce(const Cover& F, const Cover& dc) {
  obs::Span span("espresso.reduce");
  obs::counter_add("espresso.reduce_calls");
  // reduce(c) = c  ∩  supercube( complement( (F \ c  ∪  DC) cofactored by c ) )
  Cover cur = F;
  std::vector<int> order(F.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](int a, int b) { return F[a].weight() > F[b].weight(); });
  for (int i : order) {
    Cover rest(cur.spec());
    for (int j = 0; j < cur.size(); ++j) {
      if (j != i) rest.add_nonempty(cur[j]);
    }
    rest.add_all(dc);
    Cover rc = cofactor(rest, cur[i]);
    if (tautology(rc)) continue;  // fully redundant: irredundant handles it
    Cover comp = complement(rc);
    Cube sc = supercube_of(comp);
    Cube reduced = cur[i].intersect(sc);
    if (reduced.nonempty(cur.spec())) cur[i] = reduced;
  }
  return cur;
}

std::pair<Cover, Cover> essentials(const Cover& F, const Cover& dc) {
  obs::Span span("espresso.essentials");
  // A prime e is essential iff it covers a minterm no other prime covers.
  // The espresso test: e is NOT essential iff it is covered by the other
  // cubes *augmented with their consensus terms against e* (the consensus
  // captures coverage by overlapping primes not in the current cover).
  const CubeSpec& spec = F.spec();
  Cover ess(spec), rest(spec);
  for (int i = 0; i < F.size(); ++i) {
    Cover others(spec);
    for (int j = 0; j < F.size(); ++j) {
      if (j != i) others.add_nonempty(F[j]);
    }
    others.add_all(dc);
    Cover aug = others;
    for (const Cube& g : others) {
      // Theorem (espresso-II): only distance-1 consensus terms are needed;
      // a distance-0 cube g already covers its overlap with e itself (and
      // its consensus can degenerate to e, voiding the test).
      if (g.distance(spec, F[i]) != 1) continue;
      for (int v = 0; v < spec.num_vars(); ++v) {
        Cube c = consensus(spec, g, F[i], v);
        if (c.nonempty(spec) && !g.contains(c)) aug.add(c);
      }
    }
    if (covers_cube(aug, F[i]))
      rest.add(F[i]);
    else
      ess.add(F[i]);
  }
  return {ess, rest};
}

Cover espresso(const Cover& on, const Cover& dc, const EspressoOptions& opts,
               EspressoStats* stats) {
  obs::Span span("espresso");
  obs::counter_add("espresso.calls");
  obs::counter_add("espresso.input_cubes", on.size());
  const CubeSpec& spec = on.spec();
  util::Budget* bud = opts.budget;
  Cover F = on;
  F.make_scc();
  if (F.empty()) return F;

  // Anytime early-out: F always satisfies ON subseteq F subseteq ON u DC
  // at this point and at every phase boundary below, so on exhaustion the
  // current cover is returned as the (valid, less minimized) best-so-far.
  auto out_of_budget = [&](Cover R) {
    if (stats) stats->budget_exhausted = true;
    obs::counter_add("espresso.budget_exhausted");
    R.make_scc();
    contract_minimization_post(R, on, dc);
    return R;
  };
  if (!util::budget_charge(bud, F.size())) return out_of_budget(std::move(F));

  // Off-set = complement of ON u DC.
  Cover ondc = F;
  ondc.add_all(dc);
  Cover off = complement(ondc);
  check::fault::point("espresso.offset", bud);
  if (stats) stats->offset_cubes = off.size();
  obs::counter_peak("espresso.offset_cubes_peak", off.size());
  if (bud != nullptr &&
      !bud->charge_alloc(static_cast<long>(off.size()) *
                         ((spec.total_bits() + 7) / 8))) {
    return out_of_budget(std::move(F));
  }
  if (off.size() > opts.max_offset_cubes) {
    if (stats) stats->offset_capped = true;
    obs::counter_add("espresso.offset_capped");
    Cover R = irredundant(F, dc);
    R.make_scc();
    obs::counter_add("espresso.output_cubes", R.size());
    contract_minimization_post(R, on, dc);
    return R;
  }

  check::fault::point("espresso.expand", bud);
  F = expand(F, off);
  if (!util::budget_charge(bud, F.size())) return out_of_budget(std::move(F));
  F = irredundant(F, dc);
  if (!util::budget_charge(bud, F.size())) return out_of_budget(std::move(F));

  auto [E, F2] = essentials(F, dc);
  F = F2;
  Cover dce = dc;
  dce.add_all(E);

  Cost best = cost_of(F);
  if (!opts.single_pass) {
    for (int it = 0; it < opts.max_iterations; ++it) {
      if (!util::budget_charge(bud, F.size())) {
        if (stats) stats->budget_exhausted = true;
        obs::counter_add("espresso.budget_exhausted");
        break;  // F u E below is the valid best-so-far
      }
      if (stats) stats->iterations = it + 1;
      obs::counter_add("espresso.iterations");
      Cover G = reduce(F, dce);
      G = expand(G, off);
      G = irredundant(G, dce);
      Cost c = cost_of(G);
      if (c < best) {
        best = c;
        F = G;
        continue;
      }
      // Converged: try the LAST_GASP escape before giving up.
      G = last_gasp(F, dce, off);
      c = cost_of(G);
      if (c < best) {
        best = c;
        F = G;
        obs::counter_add("espresso.last_gasp_accepts");
      } else {
        break;
      }
    }
  }
  F.add_all(E);
  F.make_scc();
  obs::counter_add("espresso.output_cubes", F.size());
  contract_minimization_post(F, on, dc);
  (void)spec;
  return F;
}

Cover espresso(const Cover& on, const EspressoOptions& opts,
               EspressoStats* stats) {
  return espresso(on, Cover(on.spec()), opts, stats);
}

}  // namespace nova::logic
