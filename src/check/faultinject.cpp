#include "check/faultinject.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace nova::check::fault {

namespace {

// Keep in sync with the probe calls in the pipeline; the sweep tests and
// docs/ROBUSTNESS.md enumerate exactly this list.
const char* const kSites[] = {
    "kiss.parse",           // fsm/kiss_io.cpp, after the header scan
    "pla.parse",            // logic/pla_io.cpp, after the header scan
    "constraints.extract",  // constraints/input_constraints.cpp
    "espresso.expand",      // logic/espresso.cpp, per EXPAND pass
    "espresso.offset",      // logic/espresso.cpp, after the off-set build
    "embed.search",         // encoding/embed.cpp, per pos_equiv call
    "exact.minimize",       // logic/exact.cpp, before branch-and-bound
    "driver.evaluate",      // nova/nova.cpp, encoded-PLA evaluation
    "driver.verify",        // nova/robust.cpp, ladder verification step
    "serve.journal",        // serve/journal.cpp, per journal append
    "serve.job",            // serve/serve.cpp, before each job attempt
    "serve.report",         // serve/serve.cpp, final batch-report write
};

// Every mutable slot is an atomic so that arm()/disarm() from one thread
// while other threads probe is a data race on nothing: the batch server's
// soak mode re-arms per attempt from worker threads. `site` points into
// kSites (string literals with static storage), never at owned memory.
struct State {
  std::atomic<bool> armed{false};
  std::atomic<const char*> site{nullptr};
  std::atomic<long> nth{1};
  std::atomic<Kind> kind{Kind::kError};
  std::atomic<long> hits{0};
  std::atomic<bool> fired{false};
  std::mutex mu;  ///< serializes writers only
};

State& state() {
  static State s;
  return s;
}

const char* canonical_site(const std::string& site) {
  for (const char* s : kSites) {
    if (site == s) return s;
  }
  return nullptr;
}

void arm_locked(State& s, const std::string& spec) {
  auto c1 = spec.find(':');
  if (c1 == std::string::npos || c1 == 0)
    throw std::invalid_argument("NOVA_FAULT spec must be site:nth[:kind]: " +
                                spec);
  const char* site = canonical_site(spec.substr(0, c1));
  if (site == nullptr)
    throw std::invalid_argument("NOVA_FAULT names unknown site '" +
                                spec.substr(0, c1) + "'");
  auto c2 = spec.find(':', c1 + 1);
  std::string nth_str = spec.substr(
      c1 + 1, c2 == std::string::npos ? std::string::npos : c2 - c1 - 1);
  long nth = std::atol(nth_str.c_str());
  if (nth < 1)
    throw std::invalid_argument("NOVA_FAULT nth must be >= 1: " + spec);
  Kind kind = Kind::kError;
  if (c2 != std::string::npos) {
    std::string k = spec.substr(c2 + 1);
    if (k == "error")
      kind = Kind::kError;
    else if (k == "alloc")
      kind = Kind::kAlloc;
    else if (k == "timeout")
      kind = Kind::kTimeout;
    else
      throw std::invalid_argument("NOVA_FAULT kind must be error|alloc|timeout: " +
                                  spec);
  }
  // Disarm first so concurrent probes never see a half-written config.
  s.armed.store(false, std::memory_order_release);
  s.site.store(site, std::memory_order_relaxed);
  s.nth.store(nth, std::memory_order_relaxed);
  s.kind.store(kind, std::memory_order_relaxed);
  s.hits.store(0, std::memory_order_relaxed);
  s.fired.store(false, std::memory_order_relaxed);
  s.armed.store(true, std::memory_order_release);
}

// Arms from the environment exactly once per process (tests use arm()
// directly). A malformed NOVA_FAULT aborts loudly: a typo silently testing
// nothing is worse than a hard failure.
void arm_from_env_once() {
  static std::once_flag flag;
  std::call_once(flag, [] {
    const char* v = std::getenv("NOVA_FAULT");
    if (v == nullptr || *v == '\0') return;
    State& s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    arm_locked(s, v);
  });
}

}  // namespace

const std::vector<std::string>& registered_sites() {
  static const std::vector<std::string> sites(std::begin(kSites),
                                              std::end(kSites));
  return sites;
}

void arm(const std::string& spec) {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  arm_locked(s, spec);
}

void disarm() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.armed.store(false, std::memory_order_release);
  s.hits.store(0, std::memory_order_relaxed);
  s.fired.store(false, std::memory_order_relaxed);
}

bool armed() {
  arm_from_env_once();
  return state().armed.load(std::memory_order_acquire);
}

namespace detail {

bool should_fire(const char* site) {
  State& s = state();
  const char* armed_site = s.site.load(std::memory_order_relaxed);
  if (armed_site == nullptr ||
      (armed_site != site && std::strcmp(armed_site, site) != 0))
    return false;
  long hit = s.hits.fetch_add(1, std::memory_order_relaxed) + 1;
  if (hit != s.nth.load(std::memory_order_relaxed)) return false;
  // fetch_add makes reaching nth unique, but guard against wrap-around
  // re-fires on pathological long runs anyway.
  return !s.fired.exchange(true, std::memory_order_relaxed);
}

Kind armed_kind() { return state().kind.load(std::memory_order_relaxed); }

}  // namespace detail

}  // namespace nova::check::fault
