#include "check/contract.hpp"

#include <cstdlib>

#include "obs/obs.hpp"

namespace nova::check {

namespace {

Level clamp_to_compiled(Level l) {
  return compiled(l) ? l : kCompiledMax;
}

Level level_from_env() {
  const char* e = std::getenv("NOVA_CHECK_LEVEL");
  Level l = e ? parse_level(e, Level::kCheap) : Level::kCheap;
  return clamp_to_compiled(l);
}

}  // namespace

namespace detail {
Level g_level = level_from_env();
}  // namespace detail

Level set_level(Level l) {
  Level prev = detail::g_level;
  detail::g_level = clamp_to_compiled(l);
  return prev;
}

Level parse_level(const std::string& s, Level fallback) {
  if (s == "off" || s == "0") return Level::kOff;
  if (s == "cheap" || s == "1") return Level::kCheap;
  if (s == "paranoid" || s == "2") return Level::kParanoid;
  return fallback;
}

void fail(const char* expr, const std::string& msg, const char* file,
          int line) {
  obs::counter_add("check.violations");
  throw ContractViolation(std::string(file) + ":" + std::to_string(line) +
                              ": contract violated: " + msg + " [" + expr +
                              "]",
                          file, line);
}

}  // namespace nova::check
