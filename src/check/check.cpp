#include "check/check.hpp"

#include <set>
#include <string>

#include "obs/obs.hpp"

namespace nova::check {

namespace {

// Validator-internal contract: always live when the validator is called
// (the caller already decided to validate), still counted and reported
// through the common fail() path.
#define NOVA_VALIDATE(expr, msg)                           \
  do {                                                     \
    if (!(expr)) fail(#expr, (msg), __FILE__, __LINE__);   \
  } while (0)

std::string at(const char* ctx, const std::string& what) {
  return std::string(ctx) + ": " + what;
}

bool pattern_ok(const std::string& p, int width) {
  if (static_cast<int>(p.size()) != width) return false;
  for (char c : p) {
    if (c != '0' && c != '1' && c != '-') return false;
  }
  return true;
}

/// Brute-force face-satisfaction oracle: the minimal face spanned by the
/// member codes, with its vertices enumerated one by one. Independent of
/// the Face/supercube_face machinery on purpose.
bool oracle_constraint_satisfied(const encoding::Encoding& enc,
                                 const util::BitVec& states) {
  uint64_t ands = ~uint64_t{0}, ors = 0;
  bool any = false;
  for (int s = states.first(); s >= 0; s = states.next(s + 1)) {
    ands &= enc.codes[s];
    ors |= enc.codes[s];
    any = true;
  }
  if (!any) return true;
  const uint64_t kmask =
      enc.nbits >= 64 ? ~uint64_t{0} : ((uint64_t{1} << enc.nbits) - 1);
  const uint64_t varying = (ands ^ ors) & kmask;
  // Enumerate every vertex of the face: fixed bits from `ands`, all value
  // combinations of the varying bits.
  std::vector<int> vbits;
  for (int b = 0; b < enc.nbits; ++b) {
    if ((varying >> b) & 1) vbits.push_back(b);
  }
  for (uint64_t v = 0; v < (uint64_t{1} << vbits.size()); ++v) {
    uint64_t vertex = ands & kmask & ~varying;
    for (size_t i = 0; i < vbits.size(); ++i) {
      if ((v >> i) & 1) vertex |= uint64_t{1} << vbits[i];
    }
    for (int s = 0; s < enc.num_states(); ++s) {
      if (enc.codes[s] == vertex && !states.get(s)) return false;
    }
  }
  return true;
}

}  // namespace

void check_cover(const logic::Cover& F, const char* ctx) {
  obs::Span span("check.cover");
  const logic::CubeSpec& spec = F.spec();
  for (int v = 0; v < spec.num_vars(); ++v) {
    NOVA_VALIDATE(spec.size(v) >= 1, at(ctx, "variable with size < 1"));
  }
  for (int i = 0; i < F.size(); ++i) {
    NOVA_VALIDATE(F[i].raw().size() == spec.total_bits(),
                  at(ctx, "cube " + std::to_string(i) +
                              " width mismatch: " +
                              std::to_string(F[i].raw().size()) + " bits vs " +
                              std::to_string(spec.total_bits()) + " in spec"));
    for (int v = 0; v < spec.num_vars(); ++v) {
      NOVA_VALIDATE(!F[i].part_empty(spec, v),
                    at(ctx, "cube " + std::to_string(i) +
                                " has an empty part for variable " +
                                std::to_string(v)));
    }
  }
}

void check_fsm(const fsm::Fsm& fsm, const char* ctx) {
  obs::Span span("check.fsm");
  const int n = fsm.num_states();
  NOVA_VALIDATE(fsm.num_inputs() >= 0 && fsm.num_outputs() >= 0,
                at(ctx, "negative input/output count"));
  if (n > 0) {
    NOVA_VALIDATE(fsm.reset_state() >= 0 && fsm.reset_state() < n,
                  at(ctx, "reset state index " +
                              std::to_string(fsm.reset_state()) +
                              " out of range [0, " + std::to_string(n) + ")"));
  }
  std::set<std::string> names;
  for (const auto& name : fsm.state_names()) {
    NOVA_VALIDATE(!name.empty(), at(ctx, "empty state name"));
    NOVA_VALIDATE(names.insert(name).second,
                  at(ctx, "duplicate state name '" + name + "'"));
  }
  for (size_t i = 0; i < fsm.transitions().size(); ++i) {
    const auto& t = fsm.transitions()[i];
    const std::string row = "transition " + std::to_string(i);
    NOVA_VALIDATE(pattern_ok(t.input, fsm.num_inputs()),
                  at(ctx, row + " has a bad input pattern '" + t.input + "'"));
    NOVA_VALIDATE(
        pattern_ok(t.output, fsm.num_outputs()),
        at(ctx, row + " has a bad output pattern '" + t.output + "'"));
    NOVA_VALIDATE(t.present >= -1 && t.present < n,
                  at(ctx, row + " present-state index out of range"));
    NOVA_VALIDATE(t.next >= -1 && t.next < n,
                  at(ctx, row + " next-state index out of range"));
  }
}

void check_encoding(const encoding::Encoding& enc, int num_states,
                    const std::vector<constraints::InputConstraint>& ics,
                    const char* ctx) {
  check_encoding(enc, num_states, ics, {}, ctx);
}

void check_encoding(const encoding::Encoding& enc, int num_states,
                    const std::vector<constraints::InputConstraint>& ics,
                    const std::vector<constraints::OutputConstraint>& ocs,
                    const char* ctx) {
  obs::Span span("check.encoding");
  NOVA_VALIDATE(enc.nbits >= 1 && enc.nbits <= 63,
                at(ctx, "code length " + std::to_string(enc.nbits) +
                            " outside [1, 63]"));
  NOVA_VALIDATE(enc.num_states() == num_states,
                at(ctx, std::to_string(enc.codes.size()) + " codes for " +
                            std::to_string(num_states) + " states"));
  const uint64_t kmask = (uint64_t{1} << enc.nbits) - 1;
  for (int s = 0; s < enc.num_states(); ++s) {
    NOVA_VALIDATE((enc.codes[s] & ~kmask) == 0,
                  at(ctx, "code of state " + std::to_string(s) +
                              " does not fit in " + std::to_string(enc.nbits) +
                              " bits"));
  }
  NOVA_VALIDATE(enc.injective(), at(ctx, "duplicate state codes"));
  for (size_t i = 0; i < ics.size(); ++i) {
    const auto& ic = ics[i];
    NOVA_VALIDATE(ic.states.size() == num_states,
                  at(ctx, "input constraint " + std::to_string(i) +
                              " has width " + std::to_string(ic.states.size()) +
                              ", expected " + std::to_string(num_states)));
    if (enc.nbits <= 16) {
      // Cross-check the library predicate against the brute-force oracle.
      const bool lib = encoding::constraint_satisfied(enc, ic);
      const bool oracle = oracle_constraint_satisfied(enc, ic.states);
      NOVA_VALIDATE(lib == oracle,
                    at(ctx, "constraint_satisfied disagrees with the "
                            "brute-force face oracle on constraint " +
                                std::to_string(i) + " {" +
                                ic.states.to_string() + "}"));
    }
  }
  for (size_t i = 0; i < ocs.size(); ++i) {
    const auto& oc = ocs[i];
    NOVA_VALIDATE(oc.covering >= 0 && oc.covering < num_states &&
                      oc.covered >= 0 && oc.covered < num_states,
                  at(ctx, "output constraint " + std::to_string(i) +
                              " has out-of-range state indices"));
    NOVA_VALIDATE(oc.covering != oc.covered,
                  at(ctx, "output constraint " + std::to_string(i) +
                              " is self-covering"));
    // Bit-wise cross-check of the covering predicate.
    const uint64_t u = enc.codes[oc.covering], v = enc.codes[oc.covered];
    bool manual = u != v;
    for (int b = 0; b < enc.nbits && manual; ++b) {
      if (((v >> b) & 1) && !((u >> b) & 1)) manual = false;
    }
    NOVA_VALIDATE(encoding::covering_satisfied(enc, oc) == manual,
                  at(ctx, "covering_satisfied disagrees with the bit-wise "
                          "check on output constraint " +
                              std::to_string(i)));
  }
}

void check_espresso_post(const logic::Cover& result, const logic::Cover& on,
                         const logic::Cover& dc, const char* ctx) {
  obs::Span span("check.espresso_post");
  check_cover(result, ctx);
  NOVA_VALIDATE(result.spec() == on.spec(),
                at(ctx, "result spec differs from on-set spec"));
  // The defining contract is ON subseteq result u DC: minimization may
  // shed on-cubes that the don't-care set absorbs.
  logic::Cover rdc = result;
  rdc.add_all(dc);
  NOVA_VALIDATE(logic::covers_cover(rdc, on),
                at(ctx, "minimized cover fails to cover the on-set"));
  logic::Cover ondc = on;
  ondc.add_all(dc);
  NOVA_VALIDATE(logic::covers_cover(ondc, result),
                at(ctx, "minimized cover intersects the off-set"));
}

#undef NOVA_VALIDATE

}  // namespace nova::check
