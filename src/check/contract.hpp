// Leveled contract (invariant) checking: the library's replacement for raw
// assert().
//
//   NOVA_CONTRACT(cheap,    expr, msg)   // O(1)-ish checks, hot-path safe
//   NOVA_CONTRACT(paranoid, expr, msg)   // deep structural postconditions
//
// Whether a contract is live is decided twice:
//  - at configure time: the NOVA_CHECK_LEVEL CMake option (OFF|CHEAP|
//    PARANOID) sets the compiled ceiling via the NOVA_CHECK_MAX_LEVEL
//    definition; contracts above the ceiling are compiled out entirely
//    (the condition is never evaluated and no code is generated);
//  - at run time: the NOVA_CHECK_LEVEL environment variable (off|cheap|
//    paranoid, default cheap) or set_level() selects the active level,
//    clamped to the compiled ceiling.
//
// A failing contract increments the obs counter "check.violations" (so
// traced runs surface violations in their report) and throws
// ContractViolation carrying file:line, the failed expression and the
// message. The message operand is evaluated only on failure, so call sites
// may build diagnostic strings without a fast-path cost.
#pragma once

#include <stdexcept>
#include <string>

#ifndef NOVA_CHECK_MAX_LEVEL
#define NOVA_CHECK_MAX_LEVEL 2
#endif

namespace nova::check {

enum class Level : int { kOff = 0, kCheap = 1, kParanoid = 2 };

/// Compiled ceiling, from the NOVA_CHECK_LEVEL CMake option.
inline constexpr Level kCompiledMax = static_cast<Level>(NOVA_CHECK_MAX_LEVEL);

constexpr bool compiled(Level l) {
  return static_cast<int>(l) <= static_cast<int>(kCompiledMax);
}

/// Level tokens accepted by NOVA_CONTRACT's first argument.
namespace levels {
inline constexpr Level cheap = Level::kCheap;
inline constexpr Level paranoid = Level::kParanoid;
}  // namespace levels

/// Thrown when a contract or a deep validator fails.
class ContractViolation : public std::logic_error {
 public:
  ContractViolation(const std::string& what_arg, std::string file, int line)
      : std::logic_error(what_arg), file_(std::move(file)), line_(line) {}

  const std::string& file() const { return file_; }
  int line() const { return line_; }

 private:
  std::string file_;
  int line_;
};

namespace detail {
// Plain (non-atomic) read on the contract fast path: one load + compare.
extern Level g_level;
}  // namespace detail

/// Active runtime level (never above the compiled ceiling).
inline Level level() { return detail::g_level; }

/// True when contracts at level `l` are live right now.
inline bool active(Level l) {
  return static_cast<int>(detail::g_level) >= static_cast<int>(l);
}

/// Sets the runtime level (clamped to the compiled ceiling); returns the
/// previous level.
Level set_level(Level l);

/// Parses "off"/"cheap"/"paranoid" (or "0"/"1"/"2"); `fallback` on anything
/// else.
Level parse_level(const std::string& s, Level fallback);

/// Records the violation (obs counter "check.violations") and throws
/// ContractViolation. Used by NOVA_CONTRACT and by the deep validators.
[[noreturn]] void fail(const char* expr, const std::string& msg,
                       const char* file, int line);

/// RAII level override for tests and paranoid sweeps.
class ScopedLevel {
 public:
  explicit ScopedLevel(Level l) : prev_(set_level(l)) {}
  ~ScopedLevel() { set_level(prev_); }
  ScopedLevel(const ScopedLevel&) = delete;
  ScopedLevel& operator=(const ScopedLevel&) = delete;

 private:
  Level prev_;
};

}  // namespace nova::check

#define NOVA_CONTRACT(level, expr, msg)                                     \
  do {                                                                      \
    if constexpr (::nova::check::compiled(::nova::check::levels::level)) {  \
      if (::nova::check::active(::nova::check::levels::level) && !(expr)) { \
        ::nova::check::fail(#expr, (msg), __FILE__, __LINE__);              \
      }                                                                     \
    }                                                                       \
  } while (0)
