// Deterministic fault injection for robustness testing.
//
// A fixed registry of named probe sites is compiled into the hot layers
// (espresso, embedding, constraint extraction, KISS/PLA parsing, the
// driver ladder). Each site costs one relaxed atomic load when injection
// is disarmed. Arm a fault with the NOVA_FAULT environment variable or
// fault::arm():
//
//   NOVA_FAULT=site:nth[:kind]
//
//   site  one of fault::registered_sites()
//   nth   1-based hit count at which the fault fires (once)
//   kind  error   (default) throw fault::FaultInjected
//         alloc   throw std::bad_alloc, as a failed allocation would
//         timeout trip the active Budget (falls back to `error` at probe
//                 sites that have no budget in scope)
//
// The sweep test (test_faultinject.cpp) iterates every site x kind and
// proves each injected fault surfaces as a clean structured Outcome --
// never a crash, hang, or invalid encoding. See docs/ROBUSTNESS.md.
#pragma once

#include <new>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/budget.hpp"

namespace nova::check::fault {

/// Thrown by an armed `error`-kind probe (and what a `timeout` probe falls
/// back to without a budget in scope). Derives from runtime_error so the
/// pipeline's existing error handling funnels it to a structured Outcome.
struct FaultInjected : std::runtime_error {
  explicit FaultInjected(const std::string& site)
      : std::runtime_error("injected fault at " + site), site(site) {}
  std::string site;
};

enum class Kind { kError, kAlloc, kTimeout };

/// Every probe site compiled into the pipeline, for sweep tests and docs.
const std::vector<std::string>& registered_sites();

/// Arms a fault from a "site:nth[:kind]" spec; throws std::invalid_argument
/// on an unknown site or malformed spec. Replaces any armed fault.
void arm(const std::string& spec);

/// Disarms injection entirely (also clears the armed-from-env state).
void disarm();

/// True when a fault is armed (env or arm()); the fast path for probes.
bool armed();

namespace detail {
// Hit bookkeeping + firing decision; only called when armed.
bool should_fire(const char* site);
Kind armed_kind();
}  // namespace detail

/// Probe: fires the armed fault when `site` reaches its nth hit. `budget`
/// lets `timeout` faults trip the cooperative budget instead of throwing;
/// pass null where no budget is in scope.
inline void point(const char* site, util::Budget* budget = nullptr) {
  if (!armed()) return;
  if (!detail::should_fire(site)) return;
  switch (detail::armed_kind()) {
    case Kind::kAlloc:
      throw std::bad_alloc();
    case Kind::kTimeout:
      if (budget != nullptr) {
        budget->force_exhaust(util::BudgetStop::kCancelled);
        return;
      }
      [[fallthrough]];
    case Kind::kError:
      throw FaultInjected(site);
  }
}

}  // namespace nova::check::fault
