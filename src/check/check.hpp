// Deep structural validators for the core pipeline datatypes.
//
// Each validator checks unconditionally when called -- gating on
// nova::check::level() is the caller's job (the driver wires them in at the
// paranoid level; tests call them directly). Every validator opens an obs
// span named "check.<validator>", so paranoid runs show where validation
// time goes, and raises ContractViolation (after bumping the
// "check.violations" counter) on the first defect found.
#pragma once

#include <vector>

#include "check/contract.hpp"
#include "constraints/constraints.hpp"
#include "encoding/encoding.hpp"
#include "fsm/fsm.hpp"
#include "logic/cover.hpp"

namespace nova::check {

/// Well-formed positional-cube cover: every cube has the spec's bit width
/// and denotes a non-empty set (no empty variable part).
void check_cover(const logic::Cover& F, const char* ctx);

/// Structurally consistent FSM: valid transition patterns and widths,
/// state indices in range, reset state in range, unique state names.
void check_fsm(const fsm::Fsm& fsm, const char* ctx);

/// Well-formed encoding over `ics`: code width in [1,63], one code per
/// state, codes fit in nbits and are pairwise distinct. For every input
/// constraint, the library's face-satisfaction predicate is cross-checked
/// against a brute-force oracle (enumerate the minimal face's vertices;
/// satisfied iff the face contains all-and-only member codes) whenever
/// nbits <= 16. Output constraints are checked for representability
/// (covering != covered, indices in range) and the covering predicate is
/// cross-checked bit-wise.
void check_encoding(const encoding::Encoding& enc, int num_states,
                    const std::vector<constraints::InputConstraint>& ics,
                    const char* ctx);
void check_encoding(const encoding::Encoding& enc, int num_states,
                    const std::vector<constraints::InputConstraint>& ics,
                    const std::vector<constraints::OutputConstraint>& ocs,
                    const char* ctx);

/// The defining contract of two-level minimization: ON subseteq result u DC
/// and result subseteq ON u DC, decided with the library's tautology-based
/// covering checks. Also validates the result cover structurally.
void check_espresso_post(const logic::Cover& result, const logic::Cover& on,
                         const logic::Cover& dc, const char* ctx);

}  // namespace nova::check
