#include "check/lint.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <sstream>

#include "constraints/input_constraints.hpp"
#include "constraints/symbolic_min.hpp"
#include "fsm/kiss_io.hpp"
#include "logic/pla_io.hpp"

namespace nova::check {

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kError:
      return "error";
    case Severity::kWarning:
      return "warning";
    case Severity::kNote:
      return "note";
  }
  return "unknown";
}

std::string Diagnostic::render() const {
  std::string s = file;
  if (line > 0) s += ":" + std::to_string(line);
  s += ": ";
  s += severity_name(severity);
  s += ": " + message + " [" + id + "]";
  return s;
}

int LintResult::errors() const {
  int n = 0;
  for (const auto& d : diags) n += d.severity == Severity::kError;
  return n;
}

int LintResult::warnings() const {
  int n = 0;
  for (const auto& d : diags) n += d.severity == Severity::kWarning;
  return n;
}

void LintResult::add(Severity sev, std::string id, std::string file, int line,
                     std::string message) {
  diags.push_back(
      {sev, std::move(id), std::move(file), line, std::move(message)});
}

namespace {

bool pattern_chars_ok(const std::string& p) {
  for (char c : p) {
    if (c != '0' && c != '1' && c != '-') return false;
  }
  return true;
}

/// True iff cube(b) is a subset of cube(a) over '0'/'1'/'-' patterns.
bool pattern_contains(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] != '-' && a[i] != b[i]) return false;
  }
  return true;
}

struct KissRow {
  std::string in, ps, ns, out;
  int line = 0;
};

}  // namespace

LintResult lint_kiss_text(const std::string& text, const std::string& filename,
                          const LintOptions& opts) {
  LintResult res;
  auto err = [&](const std::string& id, int line, const std::string& msg) {
    res.add(Severity::kError, id, filename, line, msg);
  };
  auto warn = [&](const std::string& id, int line, const std::string& msg) {
    res.add(Severity::kWarning, id, filename, line, msg);
  };

  int ni = -1, no = -1, np = -1, ns = -1;
  std::string reset_name;
  int reset_line = 0;
  std::vector<KissRow> rows;

  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ss(line);
    std::string tok;
    if (!(ss >> tok)) continue;
    if (tok == ".i") {
      if (!(ss >> ni) || ni < 0) err("parse-error", lineno, "bad .i directive");
      if (ni > fsm::kMaxKissInputs) {
        err("resource-limit", lineno,
            ".i " + std::to_string(ni) + " exceeds the parser's input cap of " +
                std::to_string(fsm::kMaxKissInputs));
        return res;
      }
    } else if (tok == ".o") {
      if (!(ss >> no) || no < 0) err("parse-error", lineno, "bad .o directive");
      if (no > fsm::kMaxKissOutputs) {
        err("resource-limit", lineno,
            ".o " + std::to_string(no) +
                " exceeds the parser's output cap of " +
                std::to_string(fsm::kMaxKissOutputs));
        return res;
      }
    } else if (tok == ".p") {
      if (!(ss >> np)) err("parse-error", lineno, "bad .p directive");
      if (np > fsm::kMaxKissTerms) {
        err("resource-limit", lineno,
            ".p " + std::to_string(np) + " exceeds the parser's term cap of " +
                std::to_string(fsm::kMaxKissTerms));
        return res;
      }
    } else if (tok == ".s") {
      if (!(ss >> ns)) err("parse-error", lineno, "bad .s directive");
      if (ns > fsm::kMaxKissStates) {
        err("resource-limit", lineno,
            ".s " + std::to_string(ns) + " exceeds the parser's state cap of " +
                std::to_string(fsm::kMaxKissStates));
        return res;
      }
    } else if (tok == ".r") {
      if (!(ss >> reset_name)) err("parse-error", lineno, "bad .r directive");
      reset_line = lineno;
    } else if (tok == ".e" || tok == ".end") {
      break;
    } else if (tok[0] == '.') {
      continue;  // unknown dot-directive: the parser ignores these too
    } else {
      KissRow r;
      r.in = tok;
      r.line = lineno;
      if (!(ss >> r.ps >> r.ns >> r.out)) {
        err("malformed-row", lineno,
            "transition row needs 4 fields (input present next output)");
        continue;
      }
      rows.push_back(std::move(r));
    }
  }

  if (ni < 0 || no < 0) {
    err("missing-header", 0, "missing .i or .o directive");
    // Infer widths from the first row so row-level checks still run.
    if (!rows.empty()) {
      if (ni < 0) ni = static_cast<int>(rows[0].in.size());
      if (no < 0) no = static_cast<int>(rows[0].out.size());
    }
  }

  std::vector<char> bad(rows.size(), 0);
  for (size_t idx = 0; idx < rows.size(); ++idx) {
    const auto& r = rows[idx];
    if (ni >= 0 && static_cast<int>(r.in.size()) != ni) {
      err("width-mismatch", r.line,
          "input pattern '" + r.in + "' has " + std::to_string(r.in.size()) +
              " columns, .i says " + std::to_string(ni));
      bad[idx] = 1;
    } else if (!pattern_chars_ok(r.in)) {
      err("bad-literal", r.line,
          "input pattern '" + r.in + "' contains characters outside 0/1/-");
      bad[idx] = 1;
    }
    if (no >= 0 && static_cast<int>(r.out.size()) != no) {
      err("width-mismatch", r.line,
          "output pattern '" + r.out + "' has " + std::to_string(r.out.size()) +
              " columns, .o says " + std::to_string(no));
      bad[idx] = 1;
    } else if (!pattern_chars_ok(r.out)) {
      err("bad-literal", r.line,
          "output pattern '" + r.out + "' contains characters outside 0/1/-");
      bad[idx] = 1;
    }
  }

  if (np >= 0 && np != static_cast<int>(rows.size())) {
    err("count-mismatch", 0,
        ".p says " + std::to_string(np) + " terms, table has " +
            std::to_string(rows.size()));
  }

  if (ni < 0 || no < 0) return res;

  // Drop the malformed rows (already reported) and analyze the rest, so one
  // bad line does not mask semantic problems elsewhere in the table.
  {
    std::vector<KissRow> good;
    good.reserve(rows.size());
    for (size_t idx = 0; idx < rows.size(); ++idx) {
      if (!bad[idx]) good.push_back(std::move(rows[idx]));
    }
    rows = std::move(good);
  }

  // Build the FSM model exactly like the parser: present states interned
  // first (table order), then next states.
  fsm::Fsm fsm(ni, no);
  for (const auto& r : rows) {
    if (r.ps != "*") fsm.intern_state(r.ps);
  }
  for (const auto& r : rows) {
    if (r.ns != "*") fsm.intern_state(r.ns);
  }
  for (const auto& r : rows) {
    try {
      fsm.add_transition(r.in, r.ps, r.ns, r.out);
    } catch (const std::invalid_argument& e) {
      err("parse-error", r.line, e.what());
      return res;
    }
  }

  if (!reset_name.empty()) {
    auto s = fsm.find_state(reset_name);
    if (!s) {
      err("unknown-state", reset_line,
          ".r names unknown state '" + reset_name + "'");
    } else {
      fsm.set_reset_state(*s);
    }
  }
  if (ns >= 0 && ns != fsm.num_states()) {
    err("count-mismatch", 0,
        ".s says " + std::to_string(ns) + " states, table has " +
            std::to_string(fsm.num_states()));
  }

  // Pairwise transition analysis: conflicts, duplicates, shadowed rows.
  const auto& ts = fsm.transitions();
  for (size_t i = 0; i < ts.size(); ++i) {
    for (size_t j = i + 1; j < ts.size(); ++j) {
      const bool same_state = ts[i].present == ts[j].present ||
                              ts[i].present == -1 || ts[j].present == -1;
      if (!same_state) continue;
      if (!fsm::input_patterns_intersect(ts[i].input, ts[j].input)) continue;
      bool conflict =
          ts[i].next != ts[j].next && ts[i].next != -1 && ts[j].next != -1;
      for (size_t k = 0; k < ts[i].output.size() && !conflict; ++k) {
        const char a = ts[i].output[k], b = ts[j].output[k];
        conflict = (a == '0' && b == '1') || (a == '1' && b == '0');
      }
      if (conflict) {
        err("conflicting-transitions", rows[j].line,
            "non-deterministic: input cube overlaps row at line " +
                std::to_string(rows[i].line) +
                " with a different next state or opposing outputs");
        continue;
      }
      const bool same_outcome =
          ts[i].next == ts[j].next && ts[i].output == ts[j].output;
      if (rows[i].in == rows[j].in && ts[i].present == ts[j].present &&
          same_outcome) {
        warn("duplicate-transition", rows[j].line,
             "row repeats the transition at line " +
                 std::to_string(rows[i].line));
      } else if (same_outcome && ts[i].present == ts[j].present &&
                 pattern_contains(ts[i].input, ts[j].input)) {
        warn("redundant-transition", rows[j].line,
             "row is contained in the transition at line " +
                 std::to_string(rows[i].line));
      }
    }
  }

  // Reachability and dead ends.
  auto seen = fsm.reachable_states();
  for (int s = 0; s < fsm.num_states(); ++s) {
    if (!seen[s]) {
      warn("unreachable-state", 0,
           "state '" + fsm.state_name(s) + "' is unreachable from the reset "
           "state '" + fsm.state_name(fsm.reset_state()) + "'");
    }
  }
  for (int s = 0; s < fsm.num_states(); ++s) {
    bool outgoing = false;
    for (const auto& t : ts) {
      if (t.present == s || t.present == -1) {
        outgoing = true;
        break;
      }
    }
    if (!outgoing) {
      warn("dead-end-state", 0,
           "state '" + fsm.state_name(s) + "' has no outgoing transitions");
    }
  }

  // Inputs that no row ever observes.
  for (int c = 0; c < ni && !rows.empty(); ++c) {
    bool used = false;
    for (const auto& t : ts) {
      if (t.input[c] != '-') {
        used = true;
        break;
      }
    }
    if (!used) {
      warn("unused-input", 0,
           "input column " + std::to_string(c) + " is '-' in every row");
    }
  }

  if (opts.analyze_constraints && fsm.num_states() > 0) {
    // Covering cycles in the output-constraint clusters are unsatisfiable
    // under any encoding: u > v and (transitively) v > u force u == v.
    auto sm = constraints::symbolic_minimize(fsm);
    std::map<int, std::vector<int>> adj;
    for (const auto& cl : sm.clusters) {
      for (const auto& e : cl.edges) adj[e.covering].push_back(e.covered);
    }
    std::map<int, int> color;  // 0 new, 1 open, 2 done
    std::vector<int> cycle;
    std::function<bool(int)> dfs = [&](int u) -> bool {
      color[u] = 1;
      for (int v : adj[u]) {
        if (color[v] == 1) {
          cycle = {u, v};
          return true;
        }
        if (color[v] == 0 && dfs(v)) return true;
      }
      color[u] = 2;
      return false;
    };
    for (const auto& [u, _] : adj) {
      if (color[u] == 0 && dfs(u)) break;
    }
    if (!cycle.empty()) {
      warn("unsatisfiable-constraints", 0,
           "output covering constraints form a cycle through states '" +
               fsm.state_name(cycle[0]) + "' and '" +
               fsm.state_name(cycle[1]) +
               "'; no encoding can satisfy all of them");
    }
  }

  return res;
}

LintResult lint_pla_text(const std::string& text,
                         const std::string& filename) {
  LintResult res;
  auto err = [&](const std::string& id, int line, const std::string& msg) {
    res.add(Severity::kError, id, filename, line, msg);
  };
  auto warn = [&](const std::string& id, int line, const std::string& msg) {
    res.add(Severity::kWarning, id, filename, line, msg);
  };

  struct PlaRow {
    std::string in, out;
    int line = 0;
  };
  int ni = -1, no = -1, np = -1;
  int nilb = -1, nob = -1;
  std::vector<PlaRow> rows;

  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ss(line);
    std::string tok;
    if (!(ss >> tok)) continue;
    if (tok == ".i") {
      if (!(ss >> ni) || ni < 0) err("parse-error", lineno, "bad .i directive");
      if (ni > logic::kMaxPlaInputs) {
        err("resource-limit", lineno,
            ".i " + std::to_string(ni) + " exceeds the parser's input cap of " +
                std::to_string(logic::kMaxPlaInputs));
        return res;
      }
    } else if (tok == ".o") {
      if (!(ss >> no) || no < 0) err("parse-error", lineno, "bad .o directive");
      if (no > logic::kMaxPlaOutputs) {
        err("resource-limit", lineno,
            ".o " + std::to_string(no) +
                " exceeds the parser's output cap of " +
                std::to_string(logic::kMaxPlaOutputs));
        return res;
      }
    } else if (tok == ".p") {
      if (!(ss >> np)) err("parse-error", lineno, "bad .p directive");
      if (np > logic::kMaxPlaTerms) {
        err("resource-limit", lineno,
            ".p " + std::to_string(np) + " exceeds the parser's term cap of " +
                std::to_string(logic::kMaxPlaTerms));
        return res;
      }
    } else if (tok == ".ilb" || tok == ".ob") {
      int n = 0;
      std::string l;
      while (ss >> l) ++n;
      (tok == ".ilb" ? nilb : nob) = n;
    } else if (tok == ".type") {
      std::string t;
      if ((ss >> t) && t != "fd" && t != "f") {
        warn("unsupported-type", lineno,
             ".type " + t + " is read with type-fd semantics");
      }
    } else if (tok == ".e" || tok == ".end") {
      break;
    } else if (tok[0] == '.') {
      continue;
    } else {
      PlaRow r;
      r.in = tok;
      r.line = lineno;
      if (!(ss >> r.out)) {
        err("malformed-row", lineno, "cube row needs input and output fields");
        continue;
      }
      rows.push_back(std::move(r));
    }
  }

  if (ni < 0 && !rows.empty()) ni = static_cast<int>(rows[0].in.size());
  if (no < 0 && !rows.empty()) no = static_cast<int>(rows[0].out.size());

  for (const auto& r : rows) {
    if (static_cast<int>(r.in.size()) != ni) {
      err("width-mismatch", r.line,
          "input field has " + std::to_string(r.in.size()) +
              " columns, expected " + std::to_string(ni));
      continue;
    }
    if (static_cast<int>(r.out.size()) != no) {
      err("width-mismatch", r.line,
          "output field has " + std::to_string(r.out.size()) +
              " columns, expected " + std::to_string(no));
      continue;
    }
    for (char c : r.in) {
      if (c != '0' && c != '1' && c != '-' && c != 'x' && c != '2') {
        err("bad-literal", r.line,
            std::string("bad input character '") + c +
                "' (the reader would silently drop this cube)");
        break;
      }
    }
    for (char c : r.out) {
      if (c != '0' && c != '1' && c != '-' && c != '2' && c != '4' &&
          c != '~') {
        err("bad-literal", r.line,
            std::string("bad output character '") + c + "'");
        break;
      }
    }
  }

  if (np >= 0 && np != static_cast<int>(rows.size())) {
    warn("count-mismatch", 0,
         ".p says " + std::to_string(np) + " terms, file has " +
             std::to_string(rows.size()));
  }
  if (nilb >= 0 && ni >= 0 && nilb != ni) {
    warn("label-mismatch", 0,
         ".ilb has " + std::to_string(nilb) + " labels for " +
             std::to_string(ni) + " inputs");
  }
  if (nob >= 0 && no >= 0 && nob != no) {
    warn("label-mismatch", 0,
         ".ob has " + std::to_string(nob) + " labels for " +
             std::to_string(no) + " outputs");
  }

  // Duplicate and shadowed rows (same outputs, contained input cube).
  auto cube_contains = [](const std::string& a, const std::string& b) {
    for (size_t i = 0; i < a.size(); ++i) {
      char ca = a[i] == 'x' || a[i] == '2' ? '-' : a[i];
      char cb = b[i] == 'x' || b[i] == '2' ? '-' : b[i];
      if (ca != '-' && ca != cb) return false;
    }
    return true;
  };
  for (size_t i = 0; i < rows.size(); ++i) {
    if (static_cast<int>(rows[i].in.size()) != ni) continue;
    for (size_t j = i + 1; j < rows.size(); ++j) {
      if (static_cast<int>(rows[j].in.size()) != ni) continue;
      if (rows[i].out != rows[j].out) continue;
      if (rows[i].in == rows[j].in) {
        warn("duplicate-row", rows[j].line,
             "row repeats the cube at line " + std::to_string(rows[i].line));
      } else if (cube_contains(rows[i].in, rows[j].in)) {
        warn("redundant-term", rows[j].line,
             "row is contained in the cube at line " +
                 std::to_string(rows[i].line));
      }
    }
  }

  return res;
}

LintResult lint_encoding_text(const fsm::Fsm& fsm, const std::string& text,
                              const std::string& filename) {
  LintResult res;
  auto err = [&](const std::string& id, int line, const std::string& msg) {
    res.add(Severity::kError, id, filename, line, msg);
  };

  const int n = fsm.num_states();
  std::vector<int> code_line(n, 0);
  encoding::Encoding enc;
  enc.codes.assign(n, 0);

  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ss(line);
    std::string name, bits;
    if (!(ss >> name)) continue;
    if (!(ss >> bits)) {
      err("parse-error", lineno, "expected '<state> <code-bits>'");
      continue;
    }
    auto s = fsm.find_state(name);
    if (!s) {
      err("unknown-state", lineno, "unknown state '" + name + "'");
      continue;
    }
    bool ok = !bits.empty() && bits.size() <= 63;
    for (char c : bits) ok = ok && (c == '0' || c == '1');
    if (!ok) {
      err("bad-literal", lineno, "code '" + bits + "' is not a 0/1 string");
      continue;
    }
    if (enc.nbits == 0) {
      enc.nbits = static_cast<int>(bits.size());
    } else if (static_cast<int>(bits.size()) != enc.nbits) {
      err("width-mismatch", lineno,
          "code '" + bits + "' has " + std::to_string(bits.size()) +
              " bits, earlier codes have " + std::to_string(enc.nbits));
      continue;
    }
    uint64_t code = 0;  // MSB-first rendering, matching Encoding::code_string
    for (int b = 0; b < enc.nbits; ++b) {
      if (bits[enc.nbits - 1 - b] == '1') code |= uint64_t{1} << b;
    }
    if (code_line[*s] != 0) {
      err("duplicate-code", lineno,
          "state '" + name + "' already has a code at line " +
              std::to_string(code_line[*s]));
      continue;
    }
    enc.codes[*s] = code;
    code_line[*s] = lineno;
  }

  for (int s = 0; s < n; ++s) {
    if (code_line[s] == 0) {
      err("missing-code", 0, "state '" + fsm.state_name(s) + "' has no code");
    }
  }
  if (res.errors() > 0) return res;

  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      if (enc.codes[a] == enc.codes[b]) {
        err("duplicate-code", code_line[b],
            "states '" + fsm.state_name(a) + "' and '" + fsm.state_name(b) +
                "' share code " + enc.code_string(a));
      }
    }
  }
  if (res.errors() > 0) return res;

  // Face-embedding constraint satisfaction (informative).
  auto ics = constraints::extract_input_constraints(fsm).constraints;
  for (const auto& ic : ics) {
    if (encoding::constraint_satisfied(enc, ic)) continue;
    std::string members;
    for (int s = ic.states.first(); s >= 0; s = ic.states.next(s + 1)) {
      if (!members.empty()) members += ", ";
      members += fsm.state_name(s);
    }
    res.add(Severity::kWarning, "unsatisfied-constraint", filename, 0,
            "face constraint {" + members + "} (weight " +
                std::to_string(ic.weight) + ") is not satisfied");
  }
  return res;
}

obs::Json lint_to_json(const LintResult& res) {
  using obs::Json;
  Json diags = Json::array();
  for (const auto& d : res.diags) {
    Json j = Json::object();
    j.set("file", d.file);
    j.set("line", d.line);
    j.set("severity", severity_name(d.severity));
    j.set("id", d.id);
    j.set("message", d.message);
    diags.push_back(std::move(j));
  }
  Json j = Json::object();
  j.set("version", 1);
  j.set("errors", res.errors());
  j.set("warnings", res.warnings());
  j.set("diagnostics", std::move(diags));
  return j;
}

}  // namespace nova::check
