// Static lint engine behind the `nova_check` CLI: diagnostics over KISS2
// texts, PLA texts, and completed encodings.
//
// Linting never throws on malformed input -- syntax problems become
// error-severity diagnostics with file:line locations. Severity "error"
// marks input the NOVA pipeline would reject or silently miscompute
// (parse failures, conflicting transitions, duplicate codes); "warning"
// marks suspicious-but-usable constructs (unreachable states, duplicate
// rows, unsatisfied constraints).
#pragma once

#include <string>
#include <vector>

#include "encoding/encoding.hpp"
#include "fsm/fsm.hpp"
#include "obs/json.hpp"

namespace nova::check {

enum class Severity { kError, kWarning, kNote };

const char* severity_name(Severity s);

struct Diagnostic {
  Severity severity = Severity::kError;
  std::string id;       ///< stable machine-readable class, e.g. "parse-error"
  std::string file;     ///< source file name ("<string>" for in-memory text)
  int line = 0;         ///< 1-based; 0 = whole-file diagnostic
  std::string message;

  /// "file:line: severity: message [id]" (line omitted when 0).
  std::string render() const;
};

struct LintResult {
  std::vector<Diagnostic> diags;

  int errors() const;
  int warnings() const;
  void add(Severity sev, std::string id, std::string file, int line,
           std::string message);
};

struct LintOptions {
  /// Run constraint extraction (MV minimization) and report covering-cycle
  /// clusters that no encoding can fully satisfy. Costs an espresso run.
  bool analyze_constraints = false;
};

/// Lints KISS2 text. Diagnostic classes: parse-error, missing-header,
/// malformed-row, width-mismatch, bad-literal, count-mismatch,
/// resource-limit (declared .i/.o/.s/.p count exceeds the parser's hard
/// cap -- the parser would refuse the file), unknown-state,
/// conflicting-transitions, duplicate-transition, redundant-transition,
/// unreachable-state, dead-end-state, unused-input,
/// unsatisfiable-constraints (with analyze_constraints).
LintResult lint_kiss_text(const std::string& text, const std::string& filename,
                          const LintOptions& opts = {});

/// Lints PLA text. Diagnostic classes: parse-error, malformed-row,
/// width-mismatch, bad-literal, count-mismatch, resource-limit,
/// label-mismatch, duplicate-row, redundant-term.
LintResult lint_pla_text(const std::string& text, const std::string& filename);

/// Lints a completed encoding (state -> code lines) against a parsed FSM.
/// Diagnostic classes: parse-error, bad-literal, width-mismatch,
/// unknown-state, duplicate-code, missing-code, unsatisfied-constraint.
LintResult lint_encoding_text(const fsm::Fsm& fsm, const std::string& text,
                              const std::string& filename);

/// Machine-readable report:
///   {"version":1, "errors":N, "warnings":N,
///    "diagnostics":[{"file","line","severity","id","message"}]}
obs::Json lint_to_json(const LintResult& res);

}  // namespace nova::check
