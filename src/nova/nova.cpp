#include "nova/nova.hpp"

#include <optional>

#include <stdexcept>

#include "check/check.hpp"
#include "check/contract.hpp"
#include "check/faultinject.hpp"
#include "constraints/input_constraints.hpp"
#include "constraints/symbolic_min.hpp"
#include "encoding/embed.hpp"
#include "encoding/polish.hpp"

namespace nova::driver {

using encoding::InputConstraint;
using logic::Cover;
using logic::Cube;
using logic::CubeSpec;

long pla_area(int num_inputs, int nbits, int num_outputs, int cubes) {
  return static_cast<long>(2 * (num_inputs + nbits) + nbits + num_outputs) *
         cubes;
}

namespace {

/// Spec of the encoded PLA: binary inputs, binary state bits, and the output
/// characteristic variable (next-state bits then primary outputs).
CubeSpec encoded_spec(const fsm::Fsm& fsm, int nbits) {
  std::vector<int> sizes(fsm.num_inputs() + nbits, 2);
  sizes.push_back(std::max(nbits + fsm.num_outputs(), 1));
  return CubeSpec(std::move(sizes));
}

long count_sop_literals(const Cover& g, int num_binary_vars) {
  long lits = 0;
  for (const auto& c : g) {
    for (int v = 0; v < num_binary_vars; ++v) {
      if (!c.part_full(g.spec(), v)) ++lits;
    }
  }
  return lits;
}

}  // namespace

EvalResult evaluate_encoding(const fsm::Fsm& fsm, const Encoding& enc,
                             const logic::EspressoOptions& opts) {
  const int ni = fsm.num_inputs();
  const int nb = enc.nbits;
  const int no = fsm.num_outputs();
  EvalResult ev;
  ev.spec = encoded_spec(fsm, nb);
  const CubeSpec& spec = ev.spec;
  const int ov = ni + nb;  // index of the output variable
  check::fault::point("driver.evaluate", opts.budget);

  Cover on(spec), dc(spec), specified(spec);
  for (const auto& t : fsm.transitions()) {
    Cube base = Cube::full(spec);
    base.set_binary_from_pla(spec, 0, t.input);
    if (t.present >= 0) {
      uint64_t code = enc.codes[t.present];
      for (int b = 0; b < nb; ++b)
        base.set_value(spec, ni + b, static_cast<int>((code >> b) & 1));
    }
    specified.add(base);

    Cube onc = base;
    for (int k = 0; k < spec.size(ov); ++k) onc.clear(spec.bit(ov, k));
    if (t.next >= 0) {
      uint64_t ncode = enc.codes[t.next];
      for (int b = 0; b < nb; ++b) {
        if ((ncode >> b) & 1) onc.set(spec.bit(ov, b));
      }
    }
    for (int j = 0; j < no; ++j) {
      if (t.output[j] == '1') onc.set(spec.bit(ov, nb + j));
    }
    on.add(onc);

    for (int j = 0; j < no; ++j) {
      if (t.output[j] == '-') {
        Cube d = base;
        d.set_value(spec, ov, nb + j);
        dc.add(d);
      }
    }
    if (t.next < 0 && nb > 0) {
      Cube d = base;
      for (int k = 0; k < spec.size(ov); ++k) d.clear(spec.bit(ov, k));
      for (int b = 0; b < nb; ++b) d.set(spec.bit(ov, b));
      dc.add(d);
    }
  }
  // Unspecified transitions and unused state codes: fully don't-care.
  // Skipped once the budget is exhausted: the complement can be the most
  // expensive step here, and dropping it only under-approximates the
  // don't-care set -- the minimized result stays functionally correct,
  // just larger.
  if (util::budget_ok(opts.budget)) {
    dc.add_all(logic::complement(specified));
    dc.make_scc();
  }

  if (check::active(check::levels::cheap)) {
    check::check_cover(on, "evaluate_encoding on-set");
  }
  ev.minimized = logic::espresso(on, dc, opts);
  if (check::active(check::levels::paranoid)) {
    check::check_espresso_post(ev.minimized, on, dc, "evaluate_encoding");
  }
  ev.metrics.nbits = nb;
  ev.metrics.cubes = ev.minimized.size();
  ev.metrics.area = pla_area(ni, nb, no, ev.metrics.cubes);
  ev.metrics.sop_literals = count_sop_literals(ev.minimized, ni + nb);
  return ev;
}

std::vector<std::vector<Cube>> per_output_sops(const EvalResult& ev,
                                               int num_outputs_total) {
  const CubeSpec& spec = ev.spec;
  const int ov = spec.num_vars() - 1;
  std::vector<std::vector<Cube>> out(num_outputs_total);
  for (const auto& c : ev.minimized) {
    for (int j = 0; j < num_outputs_total && j < spec.size(ov); ++j) {
      if (c.get(spec.bit(ov, j))) out[j].push_back(c);
    }
  }
  return out;
}

std::string simulate_pla(const EvalResult& ev, const fsm::Fsm& fsm,
                         const std::string& input_bits, uint64_t state_code) {
  const CubeSpec& spec = ev.spec;
  const int ni = fsm.num_inputs();
  const int nb = ev.metrics.nbits;
  const int ov = ni + nb;
  // Structured rejection of malformed stimulus: a wrong-width or
  // non-binary input pattern or an out-of-range present-state code would
  // otherwise index past the cube spec (contract abort at best).
  if (static_cast<int>(input_bits.size()) != ni)
    throw std::invalid_argument(
        "simulate_pla: input_bits has " + std::to_string(input_bits.size()) +
        " characters, the machine has " + std::to_string(ni) + " inputs");
  for (char c : input_bits) {
    if (c != '0' && c != '1')
      throw std::invalid_argument(
          std::string("simulate_pla: input_bits character '") + c +
          "' is not 0 or 1");
  }
  if (nb < 64 && state_code >= (uint64_t{1} << nb))
    throw std::invalid_argument(
        "simulate_pla: state_code " + std::to_string(state_code) +
        " does not fit in " + std::to_string(nb) + " state bits");
  Cube point = Cube::full(spec);
  point.set_binary_from_pla(spec, 0, input_bits);
  for (int b = 0; b < nb; ++b)
    point.set_value(spec, ni + b, static_cast<int>((state_code >> b) & 1));
  std::string result(nb + fsm.num_outputs(), '0');
  for (const auto& c : ev.minimized) {
    // The cube fires iff its input/state part covers the point.
    bool fires = true;
    for (int v = 0; v < ov && fires; ++v) {
      for (int k = 0; k < spec.size(v); ++k) {
        int b = spec.bit(v, k);
        if (point.get(b) && !c.get(b)) fires = false;
      }
    }
    if (!fires) continue;
    for (int j = 0; j < nb + fsm.num_outputs(); ++j) {
      if (j < spec.size(ov) && c.get(spec.bit(ov, j))) result[j] = '1';
    }
  }
  return result;
}

PlaMetrics one_hot_metrics(const fsm::Fsm& fsm,
                           const logic::EspressoOptions& opts) {
  auto r = constraints::extract_input_constraints(fsm, opts);
  PlaMetrics m;
  m.nbits = fsm.num_states();
  m.cubes = r.minimized_cubes;
  m.area = pla_area(fsm.num_inputs(), m.nbits, fsm.num_outputs(), m.cubes);
  return m;
}

NovaResult encode_fsm(const fsm::Fsm& fsm, const NovaOptions& opts) {
  NovaResult res;
  if (opts.trace) res.report = std::make_shared<obs::Report>();
  // The session installs the report as the thread's active collector; all
  // spans/counters below (and in the instrumented layers) land in it.
  std::optional<obs::TraceSession> session;
  if (res.report) session.emplace(*res.report);

  const int n = fsm.num_states();
  util::Rng rng(opts.seed);
  util::Budget* bud = opts.budget;
  // Phase-local espresso options carrying the run's budget; with a null
  // budget this is bit-identical to passing opts.espresso through.
  logic::EspressoOptions eopts = opts.espresso;
  eopts.budget = bud;
  {
    obs::Span run_span("nova.run", &res.phases.total);
    if (check::active(check::levels::cheap)) {
      check::check_fsm(fsm, "encode_fsm input");
    }

    // --- extract: input constraints / symbolic minimization -------------
    std::vector<InputConstraint> ics;
    std::optional<constraints::SymbolicMinResult> sm;
    {
      obs::Span span("nova.extract", &res.phases.extract);
      if (opts.algorithm == Algorithm::kIoHybrid ||
          opts.algorithm == Algorithm::kIoVariant) {
        sm = constraints::symbolic_minimize(fsm, eopts);
        ics = sm->ic;
      } else if (opts.algorithm != Algorithm::kRandom &&
                 opts.algorithm != Algorithm::kMustangFanout &&
                 opts.algorithm != Algorithm::kMustangFanin) {
        ics = constraints::extract_input_constraints(fsm, eopts).constraints;
      }
    }

    // --- embed: run the selected encoding algorithm ----------------------
    bool polishable = false;
    {
      obs::Span span("nova.embed", &res.phases.embed);
      switch (opts.algorithm) {
        case Algorithm::kIExact: {
          encoding::InputGraph ig(ics, n);
          encoding::ExactOptions eo;
          eo.max_work = opts.exact_work;
          eo.budget = bud;
          auto er = encoding::iexact_code(ig, eo);
          if (!er.success) {
            res.success = false;
            break;
          }
          res.enc = std::move(er.enc);
          break;
        }
        case Algorithm::kIHybrid: {
          encoding::HybridOptions ho;
          ho.nbits = opts.nbits;
          ho.max_work = opts.max_work;
          ho.seed = opts.seed;
          ho.restarts = opts.restarts;
          ho.threads = opts.threads;
          ho.budget = bud;
          auto hr = encoding::ihybrid_code(ics, n, ho);
          res.enc = std::move(hr.enc);
          res.clength_all = hr.clength_all;
          polishable = true;
          break;
        }
        case Algorithm::kIGreedy: {
          encoding::GreedyOptions go;
          go.nbits = opts.nbits;
          go.seed = opts.seed;
          go.restarts = opts.restarts;
          go.threads = opts.threads;
          go.budget = bud;
          auto gr = encoding::igreedy_code(ics, n, go);
          res.enc = std::move(gr.enc);
          polishable = true;
          break;
        }
        case Algorithm::kIoHybrid: {
          encoding::HybridOptions ho;
          ho.nbits = opts.nbits;
          ho.max_work = opts.max_work;
          ho.budget = bud;
          auto ir = encoding::iohybrid_code(sm->ic, sm->clusters, n, ho);
          res.enc = std::move(ir.enc);
          break;
        }
        case Algorithm::kIoVariant: {
          std::vector<InputConstraint> oo;
          for (const auto& s : sm->output_only_ic) oo.push_back({s, 1});
          encoding::HybridOptions ho;
          ho.nbits = opts.nbits;
          ho.max_work = opts.max_work;
          ho.budget = bud;
          auto ir = encoding::iovariant_code(oo, sm->clusters,
                                             sm->cluster_ic, n, ho);
          res.enc = std::move(ir.enc);
          break;
        }
        case Algorithm::kKiss: {
          encoding::HybridOptions ho;
          ho.max_work = opts.max_work;
          ho.budget = bud;
          auto kr = encoding::kiss_code(ics, n, ho);
          res.enc = std::move(kr.enc);
          break;
        }
        case Algorithm::kMustangFanout:
        case Algorithm::kMustangFanin: {
          auto variant = opts.algorithm == Algorithm::kMustangFanout
                             ? encoding::MustangVariant::kFanout
                             : encoding::MustangVariant::kFanin;
          res.enc = encoding::mustang_code(fsm, opts.nbits, variant, rng);
          break;
        }
        case Algorithm::kRandom: {
          int k = std::max(opts.nbits, encoding::min_code_length(n));
          res.enc = encoding::random_encoding(n, k, rng);
          break;
        }
      }
    }
    if (res.success) {
      // --- polish: satisfaction-directed local improvement --------------
      if (opts.polish && polishable) {
        obs::Span span("nova.polish", &res.phases.polish);
        encoding::polish_encoding(res.enc, ics);
      }

      if (check::active(check::levels::paranoid)) {
        check::check_encoding(res.enc, n, ics, "encode_fsm result");
      }

      auto sat = encoding::summarize_satisfaction(res.enc, ics);
      res.constraints_total = sat.satisfied + sat.unsatisfied;
      res.constraints_satisfied = sat.satisfied;
      res.weight_satisfied = sat.weight_satisfied;
      res.weight_unsatisfied = sat.weight_unsatisfied;

      // --- final: encoded-PLA construction + espresso -------------------
      obs::Span span("nova.final", &res.phases.final_espresso);
      EvalResult ev = evaluate_encoding(fsm, res.enc, eopts);
      res.metrics = ev.metrics;
    }
  }
  if (bud != nullptr && bud->exhausted()) {
    res.budget_exhausted = true;
    obs::counter_add("robust.budget_exhausted");
  }
  res.seconds = res.phases.total;
  return res;
}

std::string dump_report(const NovaResult& res, int indent) {
  using obs::Json;
  Json j = Json::object();
  j.set("success", res.success);
  j.set("budget_exhausted", res.budget_exhausted);
  Json metrics = Json::object();
  metrics.set("nbits", res.metrics.nbits);
  metrics.set("cubes", res.metrics.cubes);
  metrics.set("area", res.metrics.area);
  metrics.set("sop_literals", res.metrics.sop_literals);
  j.set("metrics", std::move(metrics));
  Json sat = Json::object();
  sat.set("constraints_total", res.constraints_total);
  sat.set("constraints_satisfied", res.constraints_satisfied);
  sat.set("weight_satisfied", res.weight_satisfied);
  sat.set("weight_unsatisfied", res.weight_unsatisfied);
  sat.set("clength_all", res.clength_all);
  j.set("satisfaction", std::move(sat));
  Json phases = Json::object();
  phases.set("extract", res.phases.extract);
  phases.set("embed", res.phases.embed);
  phases.set("polish", res.phases.polish);
  phases.set("final", res.phases.final_espresso);
  phases.set("total", res.phases.total);
  j.set("phases", std::move(phases));
  j.set("trace", res.report ? res.report->to_json() : Json());
  return j.dump(indent);
}

}  // namespace nova::driver
