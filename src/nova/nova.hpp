// Top-level driver: encode an FSM's states with any of the library's
// algorithms, build the encoded two-level (PLA) implementation, minimize it
// and report the paper's area metric
//   area = (2*(#inputs + #bits) + #bits + #outputs) * #cubes.
#pragma once

#include <memory>
#include <string>

#include "encoding/baselines.hpp"
#include "encoding/hybrid.hpp"
#include "encoding/io.hpp"
#include "fsm/fsm.hpp"
#include "logic/espresso.hpp"
#include "obs/obs.hpp"

namespace nova::driver {

using encoding::Encoding;

long pla_area(int num_inputs, int nbits, int num_outputs, int cubes);

struct PlaMetrics {
  int nbits = 0;
  int cubes = 0;
  long area = 0;
  long sop_literals = 0;  ///< literal count of the minimized SOP
};

struct EvalResult {
  PlaMetrics metrics;
  logic::CubeSpec spec;     ///< encoded PLA spec (inputs, state bits, outputs)
  logic::Cover minimized;   ///< minimized encoded cover
};

/// Builds the binary PLA implied by (fsm, enc), minimizes it with espresso
/// and reports metrics. The don't-care set includes '-' outputs, unspecified
/// next states, unspecified transitions and unused state codes.
EvalResult evaluate_encoding(const fsm::Fsm& fsm, const Encoding& enc,
                             const logic::EspressoOptions& opts = {});

/// Per-output sum-of-products view of an encoded, minimized cover: for
/// output j, the cubes (over the binary input+state variables) asserting it.
/// Consumed by the multilevel optimizer (mlopt).
std::vector<std::vector<logic::Cube>> per_output_sops(const EvalResult& ev,
                                                      int num_outputs_total);

/// Simulates the minimized PLA for one (input, present-code) point.
/// Returns nbits+num_outputs bits: next-state code then outputs.
/// Throws std::invalid_argument (never asserts or reads out of range) when
/// `input_bits` is not exactly num_inputs() characters of {0,1} or when
/// `state_code` does not fit in the encoding's nbits.
std::string simulate_pla(const EvalResult& ev, const fsm::Fsm& fsm,
                         const std::string& input_bits, uint64_t state_code);

enum class Algorithm {
  kIExact,
  kIHybrid,
  kIGreedy,
  kIoHybrid,
  kIoVariant,
  kKiss,
  kMustangFanout,
  kMustangFanin,
  kRandom,
};

struct NovaOptions {
  Algorithm algorithm = Algorithm::kIHybrid;
  int nbits = 0;             ///< 0 = minimum code length
  long max_work = 20000;     ///< embedding work budget per semiexact call
  long exact_work = 500000;  ///< total budget for iexact
  uint64_t seed = 1;
  /// Embedding restarts for ihybrid/igreedy (see HybridOptions::restarts):
  /// restart 0 is the unperturbed legacy run, the best result wins with
  /// ties broken by restart index. 1 = single attempt (bit-identical to
  /// the pre-restart behavior).
  int restarts = 1;
  /// Worker threads for the restart fan-out; 0 = NOVA_THREADS env variable
  /// (falling back to the hardware concurrency). Any value yields the same
  /// encoding for a given (seed, restarts).
  int threads = 0;
  /// Apply the satisfaction-directed polish pass after ihybrid/igreedy.
  bool polish = false;
  /// Collect a full obs::Report (spans + counters) for this run; defaults
  /// to the NOVA_TRACE environment variable. Per-phase seconds in
  /// NovaResult::phases are reported regardless of this flag.
  bool trace = obs::env_trace_enabled();
  /// Optional cooperative budget threaded through every phase (constraint
  /// extraction, embedding, final espresso). On exhaustion the run does
  /// not fail: each phase returns its best-so-far result and the final
  /// evaluation degrades minimization quality only. Work limits are
  /// charged per restart attempt (deterministic at any thread count);
  /// the deadline is shared. Null = unlimited, bit-identical to the
  /// pre-budget pipeline. See docs/ROBUSTNESS.md.
  util::Budget* budget = nullptr;
  logic::EspressoOptions espresso;
};

/// Wall-clock seconds per pipeline phase (always populated, trace or not).
struct PhaseSeconds {
  double extract = 0.0;  ///< constraint extraction incl. MV minimization
  double embed = 0.0;    ///< the encoding algorithm (embedding/backtracking)
  double polish = 0.0;   ///< satisfaction-directed polish pass
  double final_espresso = 0.0;  ///< encoded-PLA build + final minimization
  double total = 0.0;           ///< whole encode_fsm call
};

struct NovaResult {
  bool success = true;       ///< false when iexact exhausted its budget
  /// True when NovaOptions::budget tripped somewhere in the run; the
  /// result is still valid, just potentially less optimized.
  bool budget_exhausted = false;
  Encoding enc;
  PlaMetrics metrics;
  int constraints_total = 0;
  int constraints_satisfied = 0;
  int weight_satisfied = 0;
  int weight_unsatisfied = 0;
  int clength_all = -1;      ///< ihybrid: length at which all ICs satisfied
  PhaseSeconds phases;
  double seconds = 0.0;      ///< == phases.total (kept for compatibility)
  /// Span/counter registry of the run; non-null iff NovaOptions::trace.
  std::shared_ptr<obs::Report> report;
};

/// One-stop encoding + evaluation with the selected algorithm.
NovaResult encode_fsm(const fsm::Fsm& fsm, const NovaOptions& opts = {});

/// Serializes a NovaResult to JSON: success flag, PLA metrics, constraint
/// satisfaction, per-phase seconds, and (when traced) the full span tree
/// and counters under "trace". indent < 0 gives compact output.
std::string dump_report(const NovaResult& res, int indent = 2);

/// The 1-hot baseline: cube count of the minimized 1-hot PLA (equal to the
/// minimized multiple-valued cover cardinality) and the resulting area.
PlaMetrics one_hot_metrics(const fsm::Fsm& fsm,
                           const logic::EspressoOptions& opts = {});

}  // namespace nova::driver
