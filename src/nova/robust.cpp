#include "nova/robust.hpp"

#include <exception>
#include <new>
#include <optional>
#include <utility>

#include "check/faultinject.hpp"
#include "encoding/encoding.hpp"
#include "obs/obs.hpp"

namespace nova::driver {

namespace {

const char* algorithm_name(Algorithm a) {
  switch (a) {
    case Algorithm::kIExact:
      return "iexact";
    case Algorithm::kIHybrid:
      return "ihybrid";
    case Algorithm::kIGreedy:
      return "igreedy";
    case Algorithm::kIoHybrid:
      return "iohybrid";
    case Algorithm::kIoVariant:
      return "iovariant";
    case Algorithm::kKiss:
      return "kiss";
    case Algorithm::kMustangFanout:
      return "mustang-fanout";
    case Algorithm::kMustangFanin:
      return "mustang-fanin";
    case Algorithm::kRandom:
      return "random";
  }
  return "unknown";
}

/// The bottom rung: states coded 0..n-1 at the minimum length. Always
/// injective, always verifiable; the evaluation itself is anytime (an
/// exhausted budget only degrades minimization quality).
NovaResult sequential_result(const fsm::Fsm& fsm, const NovaOptions& opts) {
  NovaResult res;
  const int n = fsm.num_states();
  int nbits = encoding::min_code_length(n);
  if (opts.nbits > nbits) nbits = opts.nbits;
  res.enc.nbits = nbits;
  res.enc.codes.resize(n);
  for (int i = 0; i < n; ++i) res.enc.codes[i] = static_cast<uint64_t>(i);
  logic::EspressoOptions eopts = opts.espresso;
  eopts.budget = opts.budget;
  EvalResult ev = evaluate_encoding(fsm, res.enc, eopts);
  res.metrics = ev.metrics;
  if (opts.budget != nullptr && opts.budget->exhausted())
    res.budget_exhausted = true;
  return res;
}

}  // namespace

util::Outcome<RobustResult> encode_fsm_robust(const fsm::Fsm& fsm,
                                              const NovaOptions& opts,
                                              const RobustOptions& ropts) {
  NovaOptions base = opts;
  // Honor the environment budget knobs when the caller didn't bring a
  // budget of their own. The Budget lives on this frame; every rung below
  // shares it, so a deadline spans the whole ladder.
  util::Budget env_budget;
  if (base.budget == nullptr && ropts.budget_from_env) {
    env_budget = util::Budget::from_env();
    if (env_budget.limited()) base.budget = &env_budget;
  }

  // With tracing on, collect the whole ladder (all rungs plus the robust.*
  // counters) into one report instead of one report per encode_fsm call.
  std::shared_ptr<obs::Report> report;
  std::optional<obs::TraceSession> session;
  if (base.trace) {
    report = std::make_shared<obs::Report>();
    session.emplace(*report);
    base.trace = false;  // rungs join this session's ambient report
  }

  RobustResult rr;
  const auto fail_rung = [&rr](Algorithm a, const std::string& why) {
    obs::counter_add("robust.downgrades");
    rr.notes.push_back(std::string(algorithm_name(a)) + ": " + why);
    ++rr.downgrades;
  };
  const auto accept = [&](NovaResult nr, Algorithm a) {
    rr.nova = std::move(nr);
    rr.used = a;
    rr.verified = true;
    if (report) rr.nova.report = report;
    util::Outcome<RobustResult> out;
    if (rr.nova.budget_exhausted ||
        (base.budget != nullptr && base.budget->exhausted())) {
      out.status = util::Status::kBudgetExhausted;
      if (base.budget != nullptr) out.stop = base.budget->stop_reason();
      obs::counter_add("robust.budget_exhausted");
    }
    if (rr.downgrades > 0) out.status = util::Status::kDegraded;
    for (size_t i = 0; i < rr.notes.size(); ++i) {
      if (i > 0) out.detail += "; ";
      out.detail += rr.notes[i];
    }
    out.value = std::move(rr);
    return out;
  };

  std::vector<Algorithm> ladder{base.algorithm};
  if (ropts.allow_downgrade) {
    for (Algorithm a : {Algorithm::kIHybrid, Algorithm::kIGreedy}) {
      if (a != base.algorithm) ladder.push_back(a);
    }
  }

  for (Algorithm algo : ladder) {
    obs::counter_add("robust.rungs_tried");
    try {
      obs::Span span("robust.rung");
      NovaOptions ro = base;
      ro.algorithm = algo;
      NovaResult nr = encode_fsm(fsm, ro);
      if (!nr.success || nr.enc.num_states() != fsm.num_states() ||
          !nr.enc.injective()) {
        fail_rung(algo, "no usable encoding (budget or work cap exhausted)");
        continue;
      }
      check::fault::point("driver.verify", base.budget);
      VerifyResult vr = verify_encoding(fsm, nr.enc, ropts.verify);
      if (!vr.equivalent) {
        obs::counter_add("robust.verify_failures");
        fail_rung(algo, "verification failed: " + vr.detail);
        continue;
      }
      return accept(std::move(nr), algo);
    } catch (const check::fault::FaultInjected& e) {
      obs::counter_add("robust.faults_caught");
      fail_rung(algo, std::string("injected fault: ") + e.what());
    } catch (const std::bad_alloc&) {
      obs::counter_add("robust.faults_caught");
      fail_rung(algo, "allocation failure");
    } catch (const std::exception& e) {
      obs::counter_add("robust.faults_caught");
      fail_rung(algo, std::string("error: ") + e.what());
    }
  }

  if (!ropts.allow_downgrade) {
    util::Outcome<RobustResult> out = util::Outcome<RobustResult>::failure(
        rr.notes.empty() ? "encoding failed" : rr.notes.front());
    if (base.budget != nullptr) out.stop = base.budget->stop_reason();
    return out;
  }

  // Bottom rung. Two attempts: an injected fault fires exactly once, so a
  // fault consumed by the first attempt cannot fail the retry.
  for (int attempt = 0; attempt < 2; ++attempt) {
    try {
      obs::Span span("robust.rung");
      obs::counter_add("robust.sequential_fallback");
      NovaResult nr = sequential_result(fsm, base);
      check::fault::point("driver.verify", base.budget);
      VerifyResult vr = verify_encoding(fsm, nr.enc, ropts.verify);
      if (!vr.equivalent) {
        obs::counter_add("robust.verify_failures");
        fail_rung(Algorithm::kRandom, "sequential verification failed: " +
                                          vr.detail);
        continue;
      }
      ++rr.downgrades;  // reaching the bottom rung is itself a downgrade
      obs::counter_add("robust.downgrades");
      rr.used_sequential = true;
      util::Outcome<RobustResult> out = accept(std::move(nr),
                                               base.algorithm);
      out.status = util::Status::kDegraded;
      return out;
    } catch (const std::exception& e) {
      obs::counter_add("robust.faults_caught");
      fail_rung(Algorithm::kRandom, std::string("sequential rung: ") +
                                        e.what());
    }
  }

  util::Outcome<RobustResult> out = util::Outcome<RobustResult>::failure(
      "all rungs failed including the sequential fallback");
  for (const std::string& n : rr.notes) out.detail += "; " + n;
  if (base.budget != nullptr) out.stop = base.budget->stop_reason();
  return out;
}

}  // namespace nova::driver
