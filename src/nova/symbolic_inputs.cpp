#include "nova/symbolic_inputs.hpp"

#include <map>

#include "constraints/constraints.hpp"
#include "encoding/hybrid.hpp"
#include "fsm/fsm.hpp"
#include "logic/espresso.hpp"

namespace nova::driver {

using constraints::InputConstraint;
using logic::Cover;
using logic::Cube;
using logic::CubeSpec;

SymbolicInputResult encode_with_symbolic_inputs(
    const fsm::Fsm& fsm, const SymbolicInputOptions& opts) {
  SymbolicInputResult res;
  const int n = fsm.num_states();
  const int no = fsm.num_outputs();
  if (n == 0) return res;

  // Distinct input patterns must be pairwise disjoint to act as the values
  // of one symbolic variable.
  std::map<std::string, int> symbol_of;
  for (const auto& t : fsm.transitions()) {
    if (!symbol_of.count(t.input)) {
      int id = static_cast<int>(symbol_of.size());
      symbol_of[t.input] = id;
    }
  }
  std::vector<std::string> symbols(symbol_of.size());
  for (const auto& [pat, id] : symbol_of) symbols[id] = pat;
  for (size_t i = 0; i < symbols.size(); ++i) {
    for (size_t j = i + 1; j < symbols.size(); ++j) {
      if (fsm::input_patterns_intersect(symbols[i], symbols[j])) return res;
    }
  }
  res.applied = true;
  res.num_input_symbols = static_cast<int>(symbols.size());
  res.input_symbols = symbols;
  const int m = res.num_input_symbols;

  // Two-multiple-valued-variable symbolic cover: (input symbol, present
  // state) -> (next state, outputs).
  CubeSpec spec({std::max(m, 1), std::max(n, 1), n + no});
  Cover on(spec), dc(spec), specified(spec);
  for (const auto& t : fsm.transitions()) {
    Cube base = Cube::full(spec);
    base.set_value(spec, 0, symbol_of[t.input]);
    if (t.present >= 0) base.set_value(spec, 1, t.present);
    specified.add(base);
    Cube onc = base;
    for (int k = 0; k < spec.size(2); ++k) onc.clear(spec.bit(2, k));
    if (t.next >= 0) onc.set(spec.bit(2, t.next));
    for (int j = 0; j < no; ++j) {
      if (t.output[j] == '1') onc.set(spec.bit(2, n + j));
    }
    on.add(onc);
    for (int j = 0; j < no; ++j) {
      if (t.output[j] == '-') {
        Cube d = base;
        d.set_value(spec, 2, n + j);
        dc.add(d);
      }
    }
    if (t.next < 0) {
      Cube d = base;
      for (int k = 0; k < spec.size(2); ++k) d.clear(spec.bit(2, k));
      for (int s = 0; s < n; ++s) d.set(spec.bit(2, s));
      dc.add(d);
    }
  }
  dc.add_all(logic::complement(specified));

  Cover g = logic::espresso(on, dc, opts.espresso);

  // Constraints on each multiple-valued variable.
  std::vector<InputConstraint> state_ics, input_ics;
  for (const auto& c : g) {
    util::BitVec sv(n), iv(m);
    for (int s = 0; s < n; ++s) {
      if (c.get(spec.bit(1, s))) sv.set(s);
    }
    for (int i = 0; i < m; ++i) {
      if (c.get(spec.bit(0, i))) iv.set(i);
    }
    state_ics.push_back({sv, 1});
    input_ics.push_back({iv, 1});
  }
  state_ics = constraints::normalize_constraints(std::move(state_ics), n);
  input_ics = constraints::normalize_constraints(std::move(input_ics), m);
  res.state_constraints = static_cast<int>(state_ics.size());
  res.input_constraints = static_cast<int>(input_ics.size());

  // Embed each variable independently (two class-A problems).
  encoding::HybridOptions sho;
  sho.nbits = opts.state_bits;
  sho.max_work = opts.max_work;
  res.state_enc = encoding::ihybrid_code(state_ics, n, sho).enc;
  encoding::HybridOptions iho;
  iho.nbits = opts.input_bits;
  iho.max_work = opts.max_work;
  res.input_enc = encoding::ihybrid_code(input_ics, m, iho).enc;

  // Encoded PLA: bi input bits + bs state bits -> bs next bits + outputs.
  const int bi = res.input_enc.nbits;
  const int bs = res.state_enc.nbits;
  std::vector<int> esz(bi + bs, 2);
  esz.push_back(std::max(bs + no, 1));
  CubeSpec espec(std::move(esz));
  const int ov = bi + bs;
  Cover eon(espec), edc(espec), especified(espec);
  for (const auto& t : fsm.transitions()) {
    Cube base = Cube::full(espec);
    uint64_t icode = res.input_enc.codes[symbol_of[t.input]];
    for (int b = 0; b < bi; ++b)
      base.set_value(espec, b, static_cast<int>((icode >> b) & 1));
    if (t.present >= 0) {
      uint64_t scode = res.state_enc.codes[t.present];
      for (int b = 0; b < bs; ++b)
        base.set_value(espec, bi + b, static_cast<int>((scode >> b) & 1));
    }
    especified.add(base);
    Cube onc = base;
    for (int k = 0; k < espec.size(ov); ++k) onc.clear(espec.bit(ov, k));
    if (t.next >= 0) {
      uint64_t ncode = res.state_enc.codes[t.next];
      for (int b = 0; b < bs; ++b) {
        if ((ncode >> b) & 1) onc.set(espec.bit(ov, b));
      }
    }
    for (int j = 0; j < no; ++j) {
      if (t.output[j] == '1') onc.set(espec.bit(ov, bs + j));
    }
    eon.add(onc);
    for (int j = 0; j < no; ++j) {
      if (t.output[j] == '-') {
        Cube d = base;
        d.set_value(espec, ov, bs + j);
        edc.add(d);
      }
    }
    if (t.next < 0 && bs > 0) {
      Cube d = base;
      for (int k = 0; k < espec.size(ov); ++k) d.clear(espec.bit(ov, k));
      for (int b = 0; b < bs; ++b) d.set(espec.bit(ov, b));
      edc.add(d);
    }
  }
  edc.add_all(logic::complement(especified));
  Cover eg = logic::espresso(eon, edc, opts.espresso);

  res.metrics.nbits = bs;
  res.metrics.cubes = eg.size();
  res.metrics.area = pla_area(bi, bs, no, eg.size());
  long lits = 0;
  for (const auto& c : eg) {
    for (int v = 0; v < bi + bs; ++v) {
      if (!c.part_full(espec, v)) ++lits;
    }
  }
  res.metrics.sop_literals = lits;
  return res;
}

}  // namespace nova::driver
