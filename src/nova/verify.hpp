// Functional verification of an encoded implementation against its FSM:
// drive both with random input stimulus and compare next-state codes and
// specified outputs. This is the library-level version of the equivalence
// oracle used throughout the test suite.
#pragma once

#include <string>

#include "nova/nova.hpp"

namespace nova::driver {

struct VerifyOptions {
  int steps = 500;
  uint64_t seed = 1;
  /// Restart from the reset state when an unspecified transition is hit.
  bool restart_on_unspecified = true;
};

struct VerifyResult {
  bool equivalent = true;
  int steps_run = 0;
  int unspecified_hits = 0;
  std::string detail;  ///< first mismatch, human-readable
};

/// Checks that the minimized encoded PLA implements the FSM: for every
/// specified transition visited, the PLA's next-state code equals the code
/// of the FSM's next state and all specified outputs match.
VerifyResult verify_encoding(const fsm::Fsm& fsm, const Encoding& enc,
                             const EvalResult& ev,
                             const VerifyOptions& opts = {});

/// Convenience: builds the evaluation internally.
VerifyResult verify_encoding(const fsm::Fsm& fsm, const Encoding& enc,
                             const VerifyOptions& opts = {});

}  // namespace nova::driver
