// Simultaneous encoding of states AND symbolic proper inputs (the paper's
// asterisked benchmarks: "encoding of inputs and states").
//
// The machine's distinct input patterns are reinterpreted as the values of
// one symbolic input variable; multiple-valued minimization then produces
// input constraints on BOTH multi-valued variables, and each is embedded
// independently (both are class-A problems, section 2.1). The final PLA
// reads encoded input bits instead of the raw primary inputs.
#pragma once

#include "nova/nova.hpp"

namespace nova::driver {

struct SymbolicInputOptions {
  int state_bits = 0;  ///< 0 = minimum
  int input_bits = 0;  ///< 0 = minimum
  long max_work = 20000;
  logic::EspressoOptions espresso;
};

struct SymbolicInputResult {
  /// False when the machine's input patterns overlap (no clean symbolic
  /// reinterpretation exists); nothing else is filled in then.
  bool applied = false;
  int num_input_symbols = 0;
  Encoding state_enc;
  Encoding input_enc;  ///< codes[i] = code of the i-th input symbol
  std::vector<std::string> input_symbols;  ///< pattern per symbol
  PlaMetrics metrics;  ///< area uses encoded input bits, per the paper
  int state_constraints = 0;
  int input_constraints = 0;
};

SymbolicInputResult encode_with_symbolic_inputs(
    const fsm::Fsm& fsm, const SymbolicInputOptions& opts = {});

}  // namespace nova::driver
