// Robust (anytime, non-crashing) front door for the encoding pipeline.
//
// encode_fsm_robust runs the requested algorithm under a cooperative budget
// and a degradation ladder: when a rung throws, exhausts the budget without
// a usable result, or produces an encoding that fails functional
// verification, the driver downgrades --
//   requested -> ihybrid -> igreedy -> sequential codes
// -- and tries again. The sequential rung (codes 0..n-1 at the minimum
// code length) cannot fail, so a usable, verify-clean encoding is always
// returned; only a catastrophic double fault yields Status::kFailed.
// Every downgrade is recorded as a robust.* counter and a span event in
// the obs run report. See docs/ROBUSTNESS.md.
#pragma once

#include <string>
#include <vector>

#include "nova/nova.hpp"
#include "nova/verify.hpp"
#include "util/outcome.hpp"

namespace nova::driver {

struct RobustOptions {
  /// Functional verification applied to every rung's encoding before it is
  /// accepted (random-stimulus equivalence against the FSM).
  VerifyOptions verify;
  /// When false the ladder is disabled: the requested algorithm either
  /// succeeds or the outcome is kFailed. Default on.
  bool allow_downgrade = true;
  /// Budget for the whole ladder when NovaOptions::budget is null; by
  /// default the environment knobs (NOVA_DEADLINE_MS / NOVA_WORK_BUDGET)
  /// are honored. An explicit NovaOptions::budget always wins.
  bool budget_from_env = true;
};

struct RobustResult {
  NovaResult nova;       ///< result of the accepted rung
  Algorithm used = Algorithm::kIHybrid;  ///< algorithm that produced it
  bool used_sequential = false;  ///< the bottom (sequential-codes) rung won
  int downgrades = 0;    ///< rungs abandoned before the accepted one
  bool verified = false; ///< accepted encoding passed verify_encoding
  /// One human-readable line per abandoned rung (what failed and why).
  std::vector<std::string> notes;
};

/// Never throws; never hangs past the budget by more than one checkpoint
/// interval. The outcome is usable() unless even the sequential fallback
/// could not be evaluated and verified.
util::Outcome<RobustResult> encode_fsm_robust(const fsm::Fsm& fsm,
                                              const NovaOptions& opts = {},
                                              const RobustOptions& ropts = {});

}  // namespace nova::driver
