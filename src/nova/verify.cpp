#include "nova/verify.hpp"

#include "util/rng.hpp"

namespace nova::driver {

VerifyResult verify_encoding(const fsm::Fsm& fsm, const Encoding& enc,
                             const EvalResult& ev,
                             const VerifyOptions& opts) {
  VerifyResult res;
  util::Rng rng(opts.seed);
  int state = fsm.num_states() > 0 ? fsm.reset_state() : 0;
  for (int i = 0; i < opts.steps; ++i) {
    ++res.steps_run;
    std::string in(fsm.num_inputs(), '0');
    for (auto& c : in) c = rng.chance(0.5) ? '1' : '0';
    auto ref = fsm.step(state, in);
    if (!ref || ref->first < 0) {
      ++res.unspecified_hits;
      if (opts.restart_on_unspecified) state = fsm.reset_state();
      continue;
    }
    std::string got = simulate_pla(ev, fsm, in, enc.codes[state]);
    uint64_t ncode = 0;
    for (int b = 0; b < enc.nbits; ++b) {
      if (got[b] == '1') ncode |= uint64_t{1} << b;
    }
    if (ncode != enc.codes[ref->first]) {
      res.equivalent = false;
      std::string got_code(enc.nbits, '0');  // MSB-first like code_string()
      for (int b = 0; b < enc.nbits; ++b)
        got_code[enc.nbits - 1 - b] = got[b];
      res.detail = "next-state mismatch at step " + std::to_string(i) +
                   " on transition " + fsm.state_name(state) + " --" + in +
                   "--> " + fsm.state_name(ref->first) + ": expected code " +
                   enc.code_string(ref->first) + ", PLA produced " + got_code;
      return res;
    }
    for (int j = 0; j < fsm.num_outputs(); ++j) {
      if (ref->second[j] != '-' && got[enc.nbits + j] != ref->second[j]) {
        res.equivalent = false;
        res.detail = "output " + std::to_string(j) + " mismatch at step " +
                     std::to_string(i) + " on transition " +
                     fsm.state_name(state) + " --" + in + "--> " +
                     fsm.state_name(ref->first) + ": expected '" +
                     ref->second[j] + "', PLA produced '" +
                     got[enc.nbits + j] + "'";
        return res;
      }
    }
    state = ref->first;
  }
  return res;
}

VerifyResult verify_encoding(const fsm::Fsm& fsm, const Encoding& enc,
                             const VerifyOptions& opts) {
  EvalResult ev = evaluate_encoding(fsm, enc);
  return verify_encoding(fsm, enc, ev, opts);
}

}  // namespace nova::driver
