// Constraint types produced by multiple-valued / symbolic minimization and
// consumed by the encoding algorithms.
#pragma once

#include <string>
#include <vector>

#include "util/bitvec.hpp"

namespace nova::constraints {

/// A face-embedding (input) constraint: the set of states that must share a
/// face of the encoding cube containing no other state's code (paper 2.2).
struct InputConstraint {
  util::BitVec states;  ///< characteristic vector over the FSM's states
  int weight = 1;       ///< # of product terms saved by satisfying it

  int cardinality() const { return states.count(); }
};

/// An output (covering) constraint: code(covering) must bit-wise cover
/// code(covered) and differ from it (paper section VI).
struct OutputConstraint {
  int covering = -1;
  int covered = -1;
  bool operator==(const OutputConstraint& o) const {
    return covering == o.covering && covered == o.covered;
  }
};

/// A cluster OC_i: the covering edges into next state i, with the gain w_i
/// obtained only if the whole cluster (and its companion IC_i) is satisfied.
struct OutputCluster {
  int next_state = -1;
  std::vector<OutputConstraint> edges;
  int weight = 0;
};

/// Parses "1110000"-style characteristic vectors (paper examples).
InputConstraint make_constraint(const std::string& bits, int weight = 1);

/// Deduplicates constraints by state set, summing weights; drops trivial
/// sets (cardinality < 2 or = num_states).
std::vector<InputConstraint> normalize_constraints(
    std::vector<InputConstraint> ics, int num_states);

}  // namespace nova::constraints
