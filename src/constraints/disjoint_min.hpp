// Disjoint minimization of a state transition table (the preprocessing the
// paper's symbolic minimization assumes, section 6.1): rows with the same
// (present state, next state, output pattern) are grouped and their input
// patterns minimized together as a single-output function, so each
// behavioural class is represented by as few rows as possible without
// introducing any sharing across classes.
#pragma once

#include "fsm/fsm.hpp"
#include "logic/espresso.hpp"

namespace nova::constraints {

struct DisjointMinResult {
  fsm::Fsm fsm;
  int rows_before = 0;
  int rows_after = 0;
};

DisjointMinResult disjoint_minimize(const fsm::Fsm& fsm,
                                    const logic::EspressoOptions& opts = {});

}  // namespace nova::constraints
