// Input-constraint extraction by output-disjoint multiple-valued
// minimization of the FSM's symbolic cover (paper section 2.2).
//
// The effect of MV minimization is to group present states that are mapped
// by some input into the same next state and assert the same outputs; every
// non-trivial present-state literal of the minimized cover is an input
// constraint, weighted by the number of product terms carrying it.
#pragma once

#include "constraints/constraints.hpp"
#include "fsm/fsm.hpp"
#include "logic/espresso.hpp"

namespace nova::constraints {

struct InputConstraintResult {
  std::vector<InputConstraint> constraints;
  int minimized_cubes = 0;  ///< cardinality of the minimized MV cover
  int symbolic_cubes = 0;   ///< rows of the symbolic cover before minimization
};

InputConstraintResult extract_input_constraints(
    const fsm::Fsm& fsm, const logic::EspressoOptions& opts = {});

}  // namespace nova::constraints
