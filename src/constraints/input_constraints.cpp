#include "constraints/input_constraints.hpp"

#include "check/contract.hpp"
#include "check/faultinject.hpp"
#include "fsm/symbolic.hpp"
#include "obs/obs.hpp"

namespace nova::constraints {

using logic::Cover;

InputConstraintResult extract_input_constraints(
    const fsm::Fsm& fsm, const logic::EspressoOptions& opts) {
  obs::Span span("constraints.extract");
  check::fault::point("constraints.extract", opts.budget);
  InputConstraintResult res;
  fsm::SymbolicCover sc = fsm::build_symbolic_cover(fsm);
  res.symbolic_cubes = sc.on.size();
  obs::counter_add("constraints.symbolic_cubes", res.symbolic_cubes);

  Cover minimized;
  {
    obs::Span mv("constraints.minimize");
    minimized = logic::espresso(sc.on, sc.dc, opts);
  }
  res.minimized_cubes = minimized.size();
  obs::counter_add("constraints.mv_minimized_cubes", res.minimized_cubes);

  const int pv = sc.present_var();
  const int n = sc.num_states;
  std::vector<InputConstraint> raw;
  raw.reserve(minimized.size());
  for (const auto& cube : minimized) {
    InputConstraint ic;
    ic.states = util::BitVec(n);
    for (int s = 0; s < n; ++s) {
      if (cube.get(sc.spec.bit(pv, s))) ic.states.set(s);
    }
    ic.weight = 1;
    raw.push_back(std::move(ic));
  }
  res.constraints = normalize_constraints(std::move(raw), n);
  for (const auto& ic : res.constraints) {
    NOVA_CONTRACT(cheap, ic.states.size() == n && !ic.states.none(),
                  "extracted input constraint is empty or mis-sized");
  }
  return res;
}

}  // namespace nova::constraints
