// Symbolic minimization (paper section 6.1, the "revisited" variant).
//
// For each next state i, its on-set is minimized against a don't-care set
// containing the on-sets of states not yet constrained to be covered by i,
// and an off-set containing the on-sets of states that i already covers
// (transitively) in the covering DAG G. A stage is accepted only when it
// reduces the number of implicants of next state i (second modification in
// the paper); binary outputs carry their full on/off description through
// every stage (first modification).
//
// The result is the pair (IC, OC): input constraints clustered per next
// state, and output covering clusters OC_i with gains w_i.
#pragma once

#include "constraints/constraints.hpp"
#include "fsm/fsm.hpp"
#include "logic/espresso.hpp"

namespace nova::constraints {

struct SymbolicMinResult {
  /// All input constraints from the final symbolic cover, deduplicated and
  /// weighted by occurrence count.
  std::vector<InputConstraint> ic;
  /// One cluster per accepted next state: covering edges into it + gain w_i.
  std::vector<OutputCluster> clusters;
  /// Companion input constraints IC_i (state sets) per cluster, aligned with
  /// `clusters`; used by iovariant_code.
  std::vector<std::vector<util::BitVec>> cluster_ic;
  /// IC_o: input constraints related only to the proper outputs.
  std::vector<util::BitVec> output_only_ic;
  /// Upper bound on the encoded cover cardinality implied by the symbolic
  /// cover (number of implicants accumulated into FinalP).
  int final_cubes = 0;
  /// Rows of the original symbolic cover.
  int rows_before = 0;
};

SymbolicMinResult symbolic_minimize(const fsm::Fsm& fsm,
                                    const logic::EspressoOptions& opts = {});

}  // namespace nova::constraints
