#include "constraints/constraints.hpp"

#include <algorithm>
#include <map>

#include "check/contract.hpp"
#include "obs/obs.hpp"

namespace nova::constraints {

InputConstraint make_constraint(const std::string& bits, int weight) {
  InputConstraint ic;
  ic.states = util::BitVec::from_string(bits);
  ic.weight = weight;
  return ic;
}

std::vector<InputConstraint> normalize_constraints(
    std::vector<InputConstraint> ics, int num_states) {
  obs::counter_add("constraints.generated",
                   static_cast<long>(ics.size()));
  std::map<util::BitVec, int> weights;
  for (auto& ic : ics) {
    int c = ic.cardinality();
    if (c < 2 || c >= num_states) continue;
    weights[ic.states] += ic.weight;
  }
  std::vector<InputConstraint> out;
  out.reserve(weights.size());
  for (auto& [set, w] : weights) out.push_back({set, w});
  // Stable order: descending weight, then descending cardinality, then set.
  std::sort(out.begin(), out.end(),
            [](const InputConstraint& a, const InputConstraint& b) {
              if (a.weight != b.weight) return a.weight > b.weight;
              int ca = a.cardinality(), cb = b.cardinality();
              if (ca != cb) return ca > cb;
              return a.states < b.states;
            });
  obs::counter_add("constraints.deduplicated",
                   static_cast<long>(ics.size() - out.size()));
  obs::counter_add("constraints.normalized", static_cast<long>(out.size()));
  if (check::active(check::levels::paranoid)) {
    for (size_t i = 0; i < out.size(); ++i) {
      int c = out[i].cardinality();
      NOVA_CONTRACT(paranoid, c >= 2 && c < num_states,
                    "normalized constraint has trivial cardinality");
      NOVA_CONTRACT(paranoid, out[i].weight >= 1,
                    "normalized constraint has non-positive weight");
      NOVA_CONTRACT(paranoid, out[i].states.size() == num_states,
                    "normalized constraint width differs from state count");
      NOVA_CONTRACT(paranoid, i == 0 || out[i - 1].states != out[i].states,
                    "normalize_constraints emitted a duplicate state set");
    }
  }
  return out;
}

}  // namespace nova::constraints
