#include "constraints/disjoint_min.hpp"

#include <map>
#include <tuple>

namespace nova::constraints {

using logic::Cover;
using logic::Cube;
using logic::CubeSpec;

DisjointMinResult disjoint_minimize(const fsm::Fsm& fsm,
                                    const logic::EspressoOptions& opts) {
  DisjointMinResult res;
  res.rows_before = fsm.num_transitions();
  fsm::Fsm out(fsm.num_inputs(), fsm.num_outputs());
  out.set_name(fsm.name());
  // Preserve state numbering.
  for (int s = 0; s < fsm.num_states(); ++s)
    out.intern_state(fsm.state_name(s));

  // Group rows by identical behaviour.
  using Key = std::tuple<int, int, std::string>;
  std::map<Key, std::vector<const fsm::Transition*>> groups;
  for (const auto& t : fsm.transitions()) {
    groups[{t.present, t.next, t.output}].push_back(&t);
  }

  CubeSpec spec = CubeSpec::binary(fsm.num_inputs());
  for (auto& [key, rows] : groups) {
    auto [present, next, output] = key;
    if (rows.size() == 1 || fsm.num_inputs() == 0) {
      for (const auto* t : rows)
        out.add_transition(t->input, present, next, output);
      continue;
    }
    // Minimize the union of the input patterns as a 1-output function.
    Cover on(spec);
    for (const auto* t : rows) {
      Cube c = Cube::full(spec);
      c.set_binary_from_pla(spec, 0, t->input);
      on.add(c);
    }
    Cover g = logic::espresso(on, opts);
    for (const auto& c : g) {
      std::string pat(fsm.num_inputs(), '-');
      for (int v = 0; v < fsm.num_inputs(); ++v) {
        bool v0 = c.get(spec.bit(v, 0)), v1 = c.get(spec.bit(v, 1));
        pat[v] = v0 && v1 ? '-' : (v1 ? '1' : '0');
      }
      out.add_transition(pat, present, next, output);
    }
  }
  out.set_reset_state(fsm.reset_state());
  res.rows_after = out.num_transitions();
  res.fsm = std::move(out);
  return res;
}

}  // namespace nova::constraints
