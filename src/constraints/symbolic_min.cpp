#include "constraints/symbolic_min.hpp"

#include <algorithm>
#include <numeric>

#include "obs/obs.hpp"

namespace nova::constraints {

using logic::Cover;
using logic::Cube;
using logic::CubeSpec;
using util::BitVec;

namespace {

/// Incremental transitive reachability over the covering DAG G.
class Reach {
 public:
  explicit Reach(int n) : n_(n), r_(n, std::vector<char>(n, 0)) {}
  bool path(int u, int v) const { return u == v ? true : r_[u][v] != 0; }
  /// Adds edge u -> v and closes transitively.
  void add_edge(int u, int v) {
    if (r_[u][v]) return;
    // Everything reaching u now also reaches everything v reaches.
    for (int a = 0; a < n_; ++a) {
      if (a != u && !path(a, u)) continue;
      for (int b = 0; b < n_; ++b) {
        if (b == a) continue;
        if (b == v || path(v, b)) r_[a][b] = 1;
      }
    }
  }

 private:
  int n_;
  std::vector<std::vector<char>> r_;
};

/// Extracts the present-state literal of a cube as a BitVec over states.
BitVec present_set(const Cube& c, const CubeSpec& spec, int pv, int n) {
  BitVec b(n);
  for (int s = 0; s < n; ++s) {
    if (c.get(spec.bit(pv, s))) b.set(s);
  }
  return b;
}

}  // namespace

SymbolicMinResult symbolic_minimize(const fsm::Fsm& fsm,
                                    const logic::EspressoOptions& opts) {
  obs::Span span("constraints.symbolic_min");
  SymbolicMinResult res;
  const int n = fsm.num_states();
  const int ni = fsm.num_inputs();
  const int no = fsm.num_outputs();
  res.rows_before = fsm.num_transitions();
  if (n == 0) return res;

  // Stage spec: binary inputs, present-state MV variable, output variable
  // with value 0 = "next state is i" and values 1..no = the binary outputs.
  std::vector<int> sizes(ni, 2);
  sizes.push_back(n);
  sizes.push_back(1 + no);
  CubeSpec spec(std::move(sizes));
  const int pv = ni;
  const int ov = ni + 1;

  // Row bases (input x present, output part full) and output assertions.
  const auto& rows = fsm.transitions();
  const int nrows = static_cast<int>(rows.size());
  std::vector<Cube> base(nrows, Cube(spec));
  for (int r = 0; r < nrows; ++r) {
    Cube b = Cube::full(spec);
    b.set_binary_from_pla(spec, 0, rows[r].input);
    if (rows[r].present >= 0) b.set_value(spec, pv, rows[r].present);
    base[r] = b;
  }
  // On-set row indices per next state.
  std::vector<std::vector<int>> on_rows(n);
  for (int r = 0; r < nrows; ++r) {
    if (rows[r].next >= 0) on_rows[rows[r].next].push_back(r);
  }

  // The unspecified (input x present) region, don't-care for everything.
  Cover specified(spec);
  for (int r = 0; r < nrows; ++r) specified.add(base[r]);
  Cover unspecified = logic::complement(specified);

  Reach reach(n);
  // Edges into state i discovered at stage i (cluster OC_i).
  // Stage order: decreasing on-set size (larger on-sets first have more to
  // gain and constrain later stages the least).
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return on_rows[a].size() > on_rows[b].size();
  });

  // Accumulated FinalP implicants with their owning next state (-1 = output
  // only), used for IC extraction.
  struct Implicant {
    Cube cube;
    int next_state;
  };
  std::vector<Implicant> finalp;

  for (int i : order) {
    if (on_rows[i].empty()) continue;

    Cover on(spec), dc(spec);
    // ON: rows of next state i assert value 0 plus their high outputs;
    // all other rows assert their high outputs (complete binary-output
    // description, first modification).
    for (int r = 0; r < nrows; ++r) {
      Cube c = base[r];
      for (int k = 0; k < spec.size(ov); ++k) c.clear(spec.bit(ov, k));
      if (rows[r].next == i) c.set(spec.bit(ov, 0));
      for (int j = 0; j < no; ++j) {
        if (rows[r].output[j] == '1') c.set(spec.bit(ov, 1 + j));
      }
      on.add(c);
      // DC: '-' outputs of every row.
      for (int j = 0; j < no; ++j) {
        if (rows[r].output[j] == '-') {
          Cube d = base[r];
          d.set_value(spec, ov, 1 + j);
          dc.add(d);
        }
      }
      // DC for value 0: rows whose next state j is not (yet) covered by i.
      if (rows[r].next != i) {
        int j = rows[r].next;
        bool off = j >= 0 && reach.path(i, j) && i != j;
        if (!off) {
          Cube d = base[r];
          d.set_value(spec, ov, 0);
          dc.add(d);
        }
      }
    }
    dc.add_all(unspecified);

    Cover mb = logic::espresso(on, dc, opts);
    // M_i: minimized implicants asserting "next state is i".
    std::vector<Cube> mi;
    for (const Cube& c : mb) {
      if (c.get(spec.bit(ov, 0))) mi.push_back(c);
    }
    const int before = static_cast<int>(on_rows[i].size());
    const int after = static_cast<int>(mi.size());

    if (after < before) {
      // Accepted: record gain and the covering edges (j, i): any next state
      // j whose on-set rows are intersected by M_i must cover i.
      OutputCluster cluster;
      cluster.next_state = i;
      cluster.weight = before - after;
      std::vector<char> hit(n, 0);
      for (const Cube& m : mi) {
        for (int r = 0; r < nrows; ++r) {
          int j = rows[r].next;
          if (j < 0 || j == i || hit[j]) continue;
          if (m.intersects(spec, base[r])) hit[j] = 1;
        }
      }
      for (int j = 0; j < n; ++j) {
        if (hit[j] && !reach.path(i, j)) {
          cluster.edges.push_back({j, i});
          reach.add_edge(j, i);
        }
      }
      std::vector<BitVec> ics;
      for (const Cube& m : mi) {
        finalp.push_back({m, i});
        BitVec ps = present_set(m, spec, pv, n);
        if (ps.count() >= 2 && ps.count() < n) ics.push_back(ps);
      }
      res.clusters.push_back(std::move(cluster));
      res.cluster_ic.push_back(std::move(ics));
    } else {
      // Rejected: keep the original rows for this next state.
      for (int r : on_rows[i]) {
        Cube c = base[r];
        for (int k = 0; k < spec.size(ov); ++k) c.clear(spec.bit(ov, k));
        c.set(spec.bit(ov, 0));
        for (int j = 0; j < no; ++j) {
          if (rows[r].output[j] == '1') c.set(spec.bit(ov, 1 + j));
        }
        finalp.push_back({c, i});
      }
    }
  }

  // IC_o: constraints related only to the proper outputs -- minimize the
  // output projection (next-state field ignored).
  if (no > 0) {
    std::vector<int> osz(ni, 2);
    osz.push_back(n);
    osz.push_back(no);
    CubeSpec ospec(std::move(osz));
    Cover oon(ospec), odc(ospec);
    Cover ospecified(ospec);
    for (int r = 0; r < nrows; ++r) {
      Cube b = Cube::full(ospec);
      b.set_binary_from_pla(ospec, 0, rows[r].input);
      if (rows[r].present >= 0) b.set_value(ospec, pv, rows[r].present);
      ospecified.add(b);
      Cube c = b;
      for (int k = 0; k < no; ++k) c.clear(ospec.bit(ov, k));
      bool any = false;
      for (int j = 0; j < no; ++j) {
        if (rows[r].output[j] == '1') {
          c.set(ospec.bit(ov, j));
          any = true;
        }
        if (rows[r].output[j] == '-') {
          Cube d = b;
          d.set_value(ospec, ov, j);
          odc.add(d);
        }
      }
      if (any) oon.add(c);
    }
    odc.add_all(logic::complement(ospecified));
    Cover om = logic::espresso(oon, odc, opts);
    for (const Cube& c : om) {
      BitVec ps = present_set(c, ospec, pv, n);
      if (ps.count() >= 2 && ps.count() < n) res.output_only_ic.push_back(ps);
      finalp.push_back({c, -1});
    }
  }

  res.final_cubes = static_cast<int>(finalp.size());
  obs::counter_add("constraints.symbolic_final_cubes", res.final_cubes);
  obs::counter_add("constraints.symbolic_clusters",
                   static_cast<long>(res.clusters.size()));

  // Aggregate all input constraints with occurrence weights.
  std::vector<InputConstraint> raw;
  for (const auto& imp : finalp) {
    BitVec ps(n);
    // finalp cubes live in two specs with identical input/present layout.
    for (int s = 0; s < n; ++s) {
      if (imp.cube.get(spec.bit(pv, s))) ps.set(s);
    }
    raw.push_back({ps, 1});
  }
  res.ic = normalize_constraints(std::move(raw), n);
  return res;
}

}  // namespace nova::constraints
