// The benchmark workload of the paper's Table I: 30 FSMs plus the extra
// machines of Table V.
//
// Machines whose KISS2 text we can state exactly are embedded verbatim
// (shift registers, counters, the lion/train family, and other small
// classics). The remaining MCNC'89 / industrial examples are reproduced by
// a deterministic *structured* generator that matches each example's
// Table-I statistics (#inputs / #outputs / #states / #terms): states are
// grouped into modes, and global input patterns map whole groups to common
// next states -- exactly the structure multiple-valued minimization turns
// into input constraints. See DESIGN.md ("Substitutions").
#pragma once

#include <string>
#include <vector>

#include "fsm/fsm.hpp"

namespace nova::bench_data {

struct BenchmarkInfo {
  std::string name;
  int inputs = 0;
  int outputs = 0;
  int states = 0;
  int terms = 0;       ///< transition rows
  bool synthetic = false;  ///< true = structured stand-in, false = exact text
};

/// The 30 rows of Table I, ordered by increasing number of states (the
/// order used by the paper's Figures VIII-X).
const std::vector<BenchmarkInfo>& table1_benchmarks();

/// The extra machines of Table V (lion, lion9, modulo12, tav, dol).
const std::vector<BenchmarkInfo>& table5_extras();

/// Loads a benchmark by name (from either list). Throws on unknown names.
fsm::Fsm load_benchmark(const std::string& name);

/// Structured FSM generator (exposed for tests): `seed` controls all
/// choices; the result has exactly `states` states, <= `terms` rows, and is
/// deterministic and valid (no conflicting transitions).
fsm::Fsm generate_structured_fsm(const std::string& name, int inputs,
                                 int outputs, int states, int terms,
                                 uint64_t seed);

}  // namespace nova::bench_data
