// Embedded KISS2 texts (see kiss_texts.cpp for provenance notes).
#pragma once

namespace nova::bench_data {

extern const char* kShiftregKiss;
extern const char* kModulo12Kiss;
extern const char* kLionKiss;
extern const char* kLion9Kiss;
extern const char* kTrain11Kiss;
extern const char* kBbtasKiss;
extern const char* kDk27Kiss;
extern const char* kTavKiss;
extern const char* kBeecountKiss;

}  // namespace nova::bench_data
