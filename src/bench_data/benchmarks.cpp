#include "bench_data/benchmarks.hpp"

#include <algorithm>
#include <stdexcept>

#include "bench_data/kiss_texts.hpp"
#include "fsm/kiss_io.hpp"
#include "util/rng.hpp"

namespace nova::bench_data {

using fsm::Fsm;

namespace {

/// Table-I statistics (MCNC'89 dimensions; `terms` of the very large tbk is
/// scaled down -- see DESIGN.md). synthetic=false rows are embedded texts.
std::vector<BenchmarkInfo> make_table1() {
  return {
      // name       in  out states terms synthetic
      {"dk15", 3, 5, 4, 32, true},
      {"bbtas", 2, 2, 6, 24, false},
      {"beecount", 3, 4, 7, 28, false},
      {"dk14", 3, 5, 7, 56, true},
      {"dk27", 1, 2, 7, 14, false},
      {"dk17", 2, 3, 8, 32, true},
      {"ex6", 5, 8, 8, 34, true},
      {"scud", 7, 6, 8, 60, true},
      {"shiftreg", 1, 1, 8, 16, false},
      {"ex5", 2, 2, 9, 32, true},
      {"bbara", 4, 2, 10, 60, true},
      {"ex3", 2, 2, 10, 36, true},
      {"iofsm", 4, 4, 10, 30, true},
      {"physrec", 12, 7, 11, 40, true},
      {"train11", 2, 1, 11, 23, false},
      {"dk512", 1, 3, 15, 30, true},
      {"mark1", 5, 16, 15, 22, true},
      {"bbsse", 7, 7, 16, 56, true},
      {"cse", 7, 7, 16, 91, true},
      {"ex2", 2, 2, 19, 72, true},
      {"keyb", 7, 2, 19, 170, true},
      {"ex1", 9, 19, 20, 138, true},
      {"s1", 8, 6, 20, 107, true},
      {"donfile", 2, 1, 24, 96, true},
      {"dk16", 2, 3, 27, 108, true},
      {"styr", 9, 10, 30, 166, true},
      {"sand", 11, 9, 32, 184, true},
      {"tbk", 6, 3, 32, 192, true},
      {"planet", 7, 19, 48, 115, true},
      {"scf", 27, 56, 121, 166, true},
  };
}

std::vector<BenchmarkInfo> make_table5_extras() {
  return {
      {"lion", 2, 1, 4, 11, false},
      {"lion9", 2, 1, 9, 32, false},
      {"modulo12", 1, 1, 12, 24, false},
      {"tav", 4, 4, 4, 16, false},
      {"dol", 2, 3, 5, 20, true},
  };
}

}  // namespace

const std::vector<BenchmarkInfo>& table1_benchmarks() {
  static const std::vector<BenchmarkInfo> t = make_table1();
  return t;
}

const std::vector<BenchmarkInfo>& table5_extras() {
  static const std::vector<BenchmarkInfo> t = make_table5_extras();
  return t;
}

Fsm generate_structured_fsm(const std::string& name, int inputs, int outputs,
                            int states, int terms, uint64_t seed) {
  util::Rng rng(seed);
  Fsm f(inputs, outputs);
  for (int s = 0; s < states; ++s) f.intern_state("s" + std::to_string(s));

  // Disjoint global input patterns: enumerate the first `active` inputs
  // fully, leave the rest dashed. `active` is chosen so that
  // states * 2^active comes closest to the requested number of terms.
  int active = 1;
  while (active < std::min(inputs, 4) &&
         states * (1 << (active + 1)) <= terms + terms / 3)
    ++active;
  const int npat = 1 << active;
  std::vector<std::string> patterns(npat, std::string(inputs, '-'));
  for (int p = 0; p < npat; ++p) {
    for (int b = 0; b < active; ++b)
      patterns[p][b] = ((p >> b) & 1) ? '1' : '0';
  }

  // Group structure: states are partitioned into modes; several patterns
  // act uniformly on whole groups (this is what MV minimization compresses
  // into input constraints).
  const int ngroups = std::max(2, states / 5);
  std::vector<int> group(states);
  std::vector<std::vector<int>> members(ngroups);
  for (int s = 0; s < states; ++s) {
    group[s] = s % ngroups;
    members[group[s]].push_back(s);
  }
  // A representative target state per (group, pattern).
  auto rep = [&](int g, int p) {
    const auto& m = members[(g + p) % ngroups];
    return m[p % m.size()];
  };

  // Output pattern generator: a function of (group, pattern) with a little
  // per-state salt and occasional don't-cares.
  auto make_output = [&](int g, int p, int s) {
    std::string out(outputs, '0');
    for (int j = 0; j < outputs; ++j) {
      uint64_t h = (uint64_t)g * 0x9e3779b9u + (uint64_t)p * 0x85ebca6bu +
                   (uint64_t)j * 0xc2b2ae35u + (uint64_t)(s % 3) * 0x27d4eb2fu;
      h ^= h >> 13;
      int r = static_cast<int>(h % 8);
      out[j] = r < 3 ? '1' : (r == 7 ? '-' : '0');
    }
    return out;
  };

  // Row budget: drop exactly grid - terms rows (chosen by shuffle) when the
  // full grid exceeds `terms`; dropped rows become don't-care regions.
  const int grid = states * npat;
  std::vector<char> keep(grid, 1);
  if (grid > terms) {
    std::vector<int> idx(grid);
    for (int i = 0; i < grid; ++i) idx[i] = i;
    rng.shuffle(idx);
    // Never drop a state's last remaining row: a state with no rows at all
    // would vanish from the written KISS2 table, so the emitted .s count
    // could not round-trip through the parser.
    std::vector<int> left(states, npat);
    int dropped = 0;
    for (int i = 0; i < grid && dropped < grid - terms; ++i) {
      const int s = idx[i] / npat;
      if (left[s] <= 1) continue;
      keep[idx[i]] = 0;
      --left[s];
      ++dropped;
    }
  }

  for (int s = 0; s < states; ++s) {
    for (int p = 0; p < npat; ++p) {
      if (!keep[s * npat + p]) continue;  // unspecified transition
      int mode = p % 3;
      int next;
      std::string out;
      if (mode == 0) {
        // Group goto: every state of a group jumps to the group's
        // representative with a common output.
        next = rep(group[s], p);
        out = make_output(group[s], p, 0);  // no per-state salt: uniform
      } else if (mode == 1) {
        // Chain within the group: successor in the member list.
        const auto& m = members[group[s]];
        int pos = static_cast<int>(
            std::find(m.begin(), m.end(), s) - m.begin());
        next = m[(pos + 1) % m.size()];
        out = make_output(group[s], p, s);
      } else {
        // Mostly self-loop with per-state outputs; occasional cross jump.
        next = (rng.next() % 4 == 0) ? rep((group[s] + 1) % ngroups, p) : s;
        out = make_output(group[s], p, s);
      }
      f.add_transition(patterns[p], s, next, out);
    }
  }
  f.set_name(name);
  f.set_reset_state(0);
  return f;
}

Fsm load_benchmark(const std::string& name) {
  static const std::pair<const char*, const char*> kTexts[] = {
      {"shiftreg", kShiftregKiss}, {"modulo12", kModulo12Kiss},
      {"lion", kLionKiss},         {"lion9", kLion9Kiss},
      {"train11", kTrain11Kiss},   {"bbtas", kBbtasKiss},
      {"dk27", kDk27Kiss},         {"tav", kTavKiss},
      {"beecount", kBeecountKiss},
  };
  for (const auto& [n, text] : kTexts) {
    if (name == n) return fsm::parse_kiss_string(text, name);
  }
  auto find_info = [&](const std::vector<BenchmarkInfo>& list)
      -> const BenchmarkInfo* {
    for (const auto& b : list) {
      if (b.name == name) return &b;
    }
    return nullptr;
  };
  const BenchmarkInfo* info = find_info(table1_benchmarks());
  if (!info) info = find_info(table5_extras());
  if (!info) throw std::runtime_error("unknown benchmark: " + name);
  // Seed derived from the name for stable, distinct machines.
  uint64_t seed = 0xcbf29ce484222325ull;
  for (char c : name) seed = (seed ^ static_cast<unsigned char>(c)) *
                             0x100000001b3ull;
  return generate_structured_fsm(info->name, info->inputs, info->outputs,
                                 info->states, info->terms, seed);
}

}  // namespace nova::bench_data
