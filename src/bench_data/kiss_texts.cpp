// Embedded KISS2 sources for the benchmark machines whose tables we can
// state exactly: classic small machines (shift register, modulo counter,
// the lion/train family of Kohavi-style detectors, and small controllers).
#include "bench_data/kiss_texts.hpp"

namespace nova::bench_data {

// 3-bit shift register: state = register contents b2b1b0, output = b0,
// next state shifts the input in from the left.
const char* kShiftregKiss =
    ".i 1\n.o 1\n.s 8\n.p 16\n.r st0\n"
    "0 st0 st0 0\n"
    "1 st0 st4 0\n"
    "0 st1 st0 1\n"
    "1 st1 st4 1\n"
    "0 st2 st1 0\n"
    "1 st2 st5 0\n"
    "0 st3 st1 1\n"
    "1 st3 st5 1\n"
    "0 st4 st2 0\n"
    "1 st4 st6 0\n"
    "0 st5 st2 1\n"
    "1 st5 st6 1\n"
    "0 st6 st3 0\n"
    "1 st6 st7 0\n"
    "0 st7 st3 1\n"
    "1 st7 st7 1\n"
    ".e\n";

// Modulo-12 counter: count on input 1, hold on 0; output 1 at the wrap.
const char* kModulo12Kiss =
    ".i 1\n.o 1\n.s 12\n.p 24\n.r s0\n"
    "0 s0 s0 0\n1 s0 s1 0\n"
    "0 s1 s1 0\n1 s1 s2 0\n"
    "0 s2 s2 0\n1 s2 s3 0\n"
    "0 s3 s3 0\n1 s3 s4 0\n"
    "0 s4 s4 0\n1 s4 s5 0\n"
    "0 s5 s5 0\n1 s5 s6 0\n"
    "0 s6 s6 0\n1 s6 s7 0\n"
    "0 s7 s7 0\n1 s7 s8 0\n"
    "0 s8 s8 0\n1 s8 s9 0\n"
    "0 s9 s9 0\n1 s9 s10 0\n"
    "0 s10 s10 0\n1 s10 s11 0\n"
    "0 s11 s11 0\n1 s11 s0 1\n"
    ".e\n";

// The two-sensor "lion" cave detector (Kohavi): 4 states.
const char* kLionKiss =
    ".i 2\n.o 1\n.s 4\n.p 11\n.r st0\n"
    "-0 st0 st0 0\n"
    "11 st0 st0 0\n"
    "01 st0 st1 0\n"
    "-1 st1 st1 1\n"
    "10 st1 st2 1\n"
    "00 st2 st2 1\n"
    "-1 st2 st1 1\n"
    "10 st2 st3 1\n"
    "-0 st3 st3 1\n"
    "01 st3 st3 1\n"
    "11 st3 st3 1\n"
    ".e\n";

// 9-state unfolded variant of lion: the walk advances on a single-sensor
// change (01 or 10) and holds on 00/11; no state re-use along the walk.
const char* kLion9Kiss =
    ".i 2\n.o 1\n.s 9\n.p 32\n.r st0\n"
    "-0 st0 st0 0\n"
    "11 st0 st0 0\n"
    "01 st0 st1 1\n"
    "00 st1 st1 1\n"
    "11 st1 st1 1\n"
    "01 st1 st2 1\n"
    "10 st1 st2 1\n"
    "00 st2 st2 0\n"
    "11 st2 st2 0\n"
    "01 st2 st3 0\n"
    "10 st2 st3 0\n"
    "00 st3 st3 1\n"
    "11 st3 st3 1\n"
    "01 st3 st4 1\n"
    "10 st3 st4 1\n"
    "00 st4 st4 0\n"
    "11 st4 st4 0\n"
    "01 st4 st5 0\n"
    "10 st4 st5 0\n"
    "00 st5 st5 1\n"
    "11 st5 st5 1\n"
    "01 st5 st6 1\n"
    "10 st5 st6 1\n"
    "00 st6 st6 0\n"
    "11 st6 st6 0\n"
    "01 st6 st7 0\n"
    "10 st6 st7 0\n"
    "00 st7 st7 1\n"
    "11 st7 st7 1\n"
    "01 st7 st8 1\n"
    "10 st7 st8 1\n"
    "-- st8 st8 1\n"
    ".e\n";

// Train detector with 11 states: two track sensors, output = train present.
const char* kTrain11Kiss =
    ".i 2\n.o 1\n.s 11\n.p 23\n.r st0\n"
    "00 st0 st0 0\n"
    "10 st0 st1 0\n"
    "01 st0 st2 0\n"
    "11 st0 st3 0\n"
    "-- st1 st4 1\n"
    "-- st2 st5 1\n"
    "-- st3 st6 1\n"
    "00 st4 st4 1\n"
    "1- st4 st7 1\n"
    "-1 st4 st7 1\n"
    "00 st5 st5 1\n"
    "1- st5 st8 1\n"
    "-1 st5 st8 1\n"
    "00 st6 st6 1\n"
    "1- st6 st9 1\n"
    "-1 st6 st9 1\n"
    "-- st7 st10 1\n"
    "-- st8 st10 1\n"
    "-- st9 st10 1\n"
    "00 st10 st0 0\n"
    "10 st10 st10 1\n"
    "01 st10 st10 1\n"
    "11 st10 st10 1\n"
    ".e\n";

// Small bus arbiter in the style of bbtas: 6 states, 2 request lines,
// 2 grant outputs; fully specified.
const char* kBbtasKiss =
    ".i 2\n.o 2\n.s 6\n.p 24\n.r st0\n"
    "00 st0 st0 00\n"
    "01 st0 st1 00\n"
    "10 st0 st2 00\n"
    "11 st0 st1 00\n"
    "00 st1 st0 00\n"
    "01 st1 st3 00\n"
    "10 st1 st3 00\n"
    "11 st1 st3 00\n"
    "00 st2 st0 00\n"
    "01 st2 st4 00\n"
    "10 st2 st4 00\n"
    "11 st2 st4 00\n"
    "00 st3 st5 10\n"
    "01 st3 st5 10\n"
    "10 st3 st5 10\n"
    "11 st3 st5 10\n"
    "00 st4 st5 01\n"
    "01 st4 st5 01\n"
    "10 st4 st5 01\n"
    "11 st4 st5 01\n"
    "00 st5 st0 11\n"
    "01 st5 st0 11\n"
    "10 st5 st0 11\n"
    "11 st5 st0 11\n"
    ".e\n";

// Seven-state sequencer in the style of dk27 (1 input, 2 outputs, fully
// specified: 14 rows).
const char* kDk27Kiss =
    ".i 1\n.o 2\n.s 7\n.p 14\n.r s0\n"
    "0 s0 s1 00\n"
    "1 s0 s2 00\n"
    "0 s1 s3 00\n"
    "1 s1 s4 00\n"
    "0 s2 s4 00\n"
    "1 s2 s5 00\n"
    "0 s3 s6 10\n"
    "1 s3 s6 10\n"
    "0 s4 s6 01\n"
    "1 s4 s0 01\n"
    "0 s5 s0 01\n"
    "1 s5 s6 11\n"
    "0 s6 s0 10\n"
    "1 s6 s0 11\n"
    ".e\n";

// Four-state, four-input traffic-actuated controller in the style of tav.
const char* kTavKiss =
    ".i 4\n.o 4\n.s 4\n.p 16\n.r st0\n"
    "1--- st0 st1 1000\n"
    "01-- st0 st2 1000\n"
    "001- st0 st3 1000\n"
    "000- st0 st0 1000\n"
    "1--- st1 st1 0100\n"
    "01-- st1 st2 0100\n"
    "001- st1 st3 0100\n"
    "000- st1 st0 0100\n"
    "1--- st2 st1 0010\n"
    "01-- st2 st2 0010\n"
    "001- st2 st3 0010\n"
    "000- st2 st0 0010\n"
    "1--- st3 st1 0001\n"
    "01-- st3 st2 0001\n"
    "001- st3 st3 0001\n"
    "000- st3 st0 0001\n"
    ".e\n";

// Bee counter: tracks a bee through a 3-sensor tunnel, counting direction.
const char* kBeecountKiss =
    ".i 3\n.o 4\n.s 7\n.p 28\n.r st0\n"
    "000 st0 st0 0000\n"
    "100 st0 st1 0000\n"
    "001 st0 st4 0000\n"
    "01- st0 st0 0000\n"
    "110 st1 st2 0000\n"
    "100 st1 st1 0000\n"
    "000 st1 st0 0000\n"
    "0-1 st1 st0 0000\n"
    "011 st2 st3 0000\n"
    "110 st2 st2 0000\n"
    "10- st2 st1 0000\n"
    "000 st2 st0 0000\n"
    "001 st3 st0 1000\n"
    "011 st3 st3 0000\n"
    "11- st3 st2 0000\n"
    "000 st3 st0 0100\n"
    "011 st4 st5 0000\n"
    "001 st4 st4 0000\n"
    "000 st4 st0 0000\n"
    "1-0 st4 st0 0000\n"
    "110 st5 st6 0000\n"
    "011 st5 st5 0000\n"
    "001 st5 st4 0000\n"
    "000 st5 st0 0000\n"
    "100 st6 st0 0010\n"
    "110 st6 st6 0000\n"
    "0-1 st6 st5 0000\n"
    "000 st6 st0 0001\n"
    ".e\n";

}  // namespace nova::bench_data
