#include "encoding/io.hpp"

#include <algorithm>
#include <numeric>
#include <set>

namespace nova::encoding {

namespace {

std::vector<OutputConstraint> edges_of(
    const std::vector<OutputCluster>& clusters, const std::vector<int>& soc,
    const OutputCluster* extra) {
  std::vector<OutputConstraint> out;
  for (int i : soc) {
    for (const auto& e : clusters[i].edges) out.push_back(e);
  }
  if (extra) {
    for (const auto& e : extra->edges) out.push_back(e);
  }
  return out;
}

/// Drops satisfied-cluster indices whose edges no longer hold under `enc`.
void drop_broken_clusters(const Encoding& enc,
                          const std::vector<OutputCluster>& clusters,
                          std::vector<int>& soc) {
  std::vector<int> keep;
  for (int i : soc) {
    if (cluster_satisfied(enc, clusters[i])) keep.push_back(i);
  }
  soc = std::move(keep);
}

Encoding sequential_encoding(int num_states, int nbits) {
  Encoding e;
  e.nbits = nbits;
  e.codes.resize(num_states);
  for (int s = 0; s < num_states; ++s) e.codes[s] = static_cast<uint64_t>(s);
  return e;
}

}  // namespace

IoResult iohybrid_code(const std::vector<InputConstraint>& ics,
                       const std::vector<OutputCluster>& clusters,
                       int num_states, const HybridOptions& opts) {
  IoResult res;
  int min_len = min_code_length(num_states);
  res.min_length = min_len;
  const int nbits = std::max(opts.nbits == 0 ? min_len : opts.nbits, min_len);
  if (opts.start_at_nbits) min_len = nbits;  // semiexact at the target length

  if (ics.empty() && !clusters.empty()) {
    std::vector<OutputConstraint> all;
    for (const auto& c : clusters) {
      for (const auto& e : c.edges) all.push_back(e);
    }
    res.enc = out_encoder(all, num_states);
    for (size_t i = 0; i < clusters.size(); ++i) {
      if (cluster_satisfied(res.enc, clusters[i]))
        res.soc.push_back(static_cast<int>(i));
    }
    return res;
  }

  // Stage 1: input constraints, as in ihybrid_code.
  std::vector<InputConstraint> todo = ics;
  std::stable_sort(todo.begin(), todo.end(),
                   [](const InputConstraint& a, const InputConstraint& b) {
                     return a.weight > b.weight;
                   });
  Encoding enc;
  bool have_enc = false;
  for (const auto& ic : todo) {
    std::vector<InputConstraint> trial = res.sic;
    trial.push_back(ic);
    EmbedOptions eo;
    eo.max_work = opts.max_work;
    EmbedResult er = semiexact_code(trial, num_states, min_len, eo);
    if (er.success) {
      enc = std::move(er.enc);
      have_enc = true;
      res.sic.push_back(ic);
    } else {
      res.ric.push_back(ic);
    }
  }

  // Stage 2: output clusters in decreasing weight, via io_semiexact_code
  // (the same bounded search with covering checks active).
  std::vector<int> corder(clusters.size());
  std::iota(corder.begin(), corder.end(), 0);
  std::stable_sort(corder.begin(), corder.end(), [&](int a, int b) {
    return clusters[a].weight > clusters[b].weight;
  });
  for (int ci : corder) {
    if (clusters[ci].edges.empty()) continue;  // nothing to enforce
    std::vector<OutputConstraint> cov = edges_of(clusters, res.soc,
                                                 &clusters[ci]);
    EmbedOptions eo;
    eo.max_work = opts.max_work;
    eo.coverings = &cov;
    InputGraph ig(res.sic, num_states);
    EmbedResult er = pos_equiv(ig, min_len, {}, eo);
    if (er.success) {
      enc = std::move(er.enc);
      have_enc = true;
      res.soc.push_back(ci);
    }
  }

  if (!have_enc) {
    EmbedOptions eo;
    eo.max_work = opts.max_work;
    EmbedResult er = semiexact_code({}, num_states, min_len, eo);
    if (er.success) {
      enc = std::move(er.enc);
    } else {
      enc = sequential_encoding(num_states, min_len);
      res.used_random_fallback = true;
    }
  }

  // Stage 3: projection for the remaining input constraints.
  {
    std::vector<InputConstraint> still;
    for (auto& ic : res.ric) {
      if (constraint_satisfied(enc, ic))
        res.sic.push_back(ic);
      else
        still.push_back(ic);
    }
    res.ric = std::move(still);
  }
  int cube_dim = min_len;
  while (!res.ric.empty() && cube_dim < nbits && cube_dim < 62) {
    ++cube_dim;
    enc = project_code(enc, res.sic, res.ric);
    drop_broken_clusters(enc, clusters, res.soc);
  }
  drop_broken_clusters(enc, clusters, res.soc);
  res.enc = std::move(enc);
  return res;
}

IoResult iovariant_code(const std::vector<InputConstraint>& output_only_ics,
                        const std::vector<OutputCluster>& clusters,
                        const std::vector<std::vector<BitVec>>& cluster_ics,
                        int num_states, const HybridOptions& opts) {
  IoResult res;
  int min_len = min_code_length(num_states);
  res.min_length = min_len;
  const int nbits = std::max(opts.nbits == 0 ? min_len : opts.nbits, min_len);
  if (opts.start_at_nbits) min_len = nbits;  // semiexact at the target length

  // IC_o first.
  Encoding enc;
  bool have_enc = false;
  std::vector<InputConstraint> todo = output_only_ics;
  std::stable_sort(todo.begin(), todo.end(),
                   [](const InputConstraint& a, const InputConstraint& b) {
                     return a.weight > b.weight;
                   });
  for (const auto& ic : todo) {
    std::vector<InputConstraint> trial = res.sic;
    trial.push_back(ic);
    EmbedOptions eo;
    eo.max_work = opts.max_work;
    EmbedResult er = semiexact_code(trial, num_states, min_len, eo);
    if (er.success) {
      enc = std::move(er.enc);
      have_enc = true;
      res.sic.push_back(ic);
    } else {
      res.ric.push_back(ic);
    }
  }

  // Clusters with their companion IC_i.
  std::vector<int> corder(clusters.size());
  std::iota(corder.begin(), corder.end(), 0);
  std::stable_sort(corder.begin(), corder.end(), [&](int a, int b) {
    return clusters[a].weight > clusters[b].weight;
  });
  for (int ci : corder) {
    std::vector<InputConstraint> trial = res.sic;
    std::vector<InputConstraint> added;
    if (ci < static_cast<int>(cluster_ics.size())) {
      for (const BitVec& s : cluster_ics[ci]) {
        bool dup = false;
        for (const auto& t : trial) dup = dup || t.states == s;
        if (!dup) {
          added.push_back({s, 1});
          trial.push_back({s, 1});
        }
      }
    }
    std::vector<OutputConstraint> cov = edges_of(clusters, res.soc,
                                                 &clusters[ci]);
    EmbedOptions eo;
    eo.max_work = opts.max_work;
    eo.coverings = &cov;
    InputGraph ig(trial, num_states);
    EmbedResult er = pos_equiv(ig, min_len, {}, eo);
    if (er.success) {
      enc = std::move(er.enc);
      have_enc = true;
      for (auto& a : added) res.sic.push_back(a);
      res.soc.push_back(ci);
    } else {
      for (auto& a : added) res.ric.push_back(a);
    }
  }

  if (!have_enc) {
    EmbedOptions eo;
    eo.max_work = opts.max_work;
    EmbedResult er = semiexact_code({}, num_states, min_len, eo);
    if (er.success)
      enc = std::move(er.enc);
    else {
      enc = sequential_encoding(num_states, min_len);
      res.used_random_fallback = true;
    }
  }

  int cube_dim = min_len;
  while (!res.ric.empty() && cube_dim < nbits && cube_dim < 62) {
    ++cube_dim;
    enc = project_code(enc, res.sic, res.ric);
    drop_broken_clusters(enc, clusters, res.soc);
  }
  drop_broken_clusters(enc, clusters, res.soc);
  res.enc = std::move(enc);
  return res;
}

Encoding out_encoder(const std::vector<OutputConstraint>& ocs,
                     int num_states) {
  // Codes are built with one candidate column per state; beyond the word
  // width we fall back to a plain injective code (documented limitation --
  // out_encoder is only reached when there are no input constraints at all).
  if (num_states > 60) {
    return sequential_encoding(num_states, min_code_length(num_states));
  }
  // code(u) = own_bit(u) | OR of code(v) over edges (u covers v), computed
  // in topological order; then greedily drop bit columns that are not
  // needed for injectivity or covering-strictness.
  std::vector<std::vector<int>> covers(num_states);  // u -> covered v's
  std::vector<int> indeg(num_states, 0);             // # of u covering v? no:
  // Topological order: v must be coded before u when (u covers v).
  std::vector<std::vector<int>> dep(num_states);  // u depends on v
  std::vector<int> ndep(num_states, 0);
  for (const auto& e : ocs) {
    dep[e.covered].push_back(e.covering);
    ++ndep[e.covering];
    covers[e.covering].push_back(e.covered);
  }
  (void)indeg;
  std::vector<int> order;
  std::vector<int> q;
  for (int s = 0; s < num_states; ++s) {
    if (ndep[s] == 0) q.push_back(s);
  }
  while (!q.empty()) {
    int v = q.back();
    q.pop_back();
    order.push_back(v);
    for (int u : dep[v]) {
      if (--ndep[u] == 0) q.push_back(u);
    }
  }
  // Cycles (shouldn't happen for a DAG): append the rest in index order.
  if (static_cast<int>(order.size()) < num_states) {
    std::vector<char> seen(num_states, 0);
    for (int s : order) seen[s] = 1;
    for (int s = 0; s < num_states; ++s) {
      if (!seen[s]) order.push_back(s);
    }
  }

  const int nb = num_states;  // one own-bit per state, compacted below
  std::vector<uint64_t> codes(num_states, 0);
  for (int s : order) {
    uint64_t c = uint64_t{1} << s;
    for (int v : covers[s]) c |= codes[v];
    codes[s] = c;
  }
  // Column compaction: drop a column when removing it keeps codes distinct
  // and covering relations strict.
  std::vector<int> cols;
  for (int b = 0; b < nb; ++b) cols.push_back(b);
  auto project_ok = [&](const std::vector<int>& keep) {
    std::set<uint64_t> seen;
    auto proj = [&](uint64_t c) {
      uint64_t r = 0;
      for (size_t i = 0; i < keep.size(); ++i) {
        if ((c >> keep[i]) & 1) r |= uint64_t{1} << i;
      }
      return r;
    };
    for (int s = 0; s < num_states; ++s) {
      if (!seen.insert(proj(codes[s])).second) return false;
    }
    for (const auto& e : ocs) {
      uint64_t u = proj(codes[e.covering]), v = proj(codes[e.covered]);
      if ((u | v) != u || u == v) return false;
    }
    return true;
  };
  for (int b = nb - 1; b >= 0; --b) {
    std::vector<int> trial;
    for (int c : cols) {
      if (c != b) trial.push_back(c);
    }
    if (!trial.empty() && project_ok(trial)) cols = trial;
  }
  Encoding enc;
  enc.nbits = static_cast<int>(cols.size());
  enc.codes.resize(num_states);
  for (int s = 0; s < num_states; ++s) {
    uint64_t r = 0;
    for (size_t i = 0; i < cols.size(); ++i) {
      if ((codes[s] >> cols[i]) & 1) r |= uint64_t{1} << i;
    }
    enc.codes[s] = r;
  }
  return enc;
}

}  // namespace nova::encoding
