// Encoding under simultaneous input and output (covering) constraints:
// iohybrid_code and iovariant_code (paper section 6.2), plus the
// output-constraints-only out_encoder.
#pragma once

#include "encoding/hybrid.hpp"

namespace nova::encoding {

struct IoResult {
  Encoding enc;
  std::vector<InputConstraint> sic;
  std::vector<InputConstraint> ric;
  std::vector<int> soc;  ///< indices into `clusters` of satisfied clusters
  int min_length = 0;
  bool used_random_fallback = false;
};

/// Input-biased algorithm (6.2.1): first satisfy as many input constraints
/// as possible at the minimum code length, then greedily add output
/// clusters in decreasing weight, then project for the remaining inputs.
IoResult iohybrid_code(const std::vector<InputConstraint>& ics,
                       const std::vector<OutputCluster>& clusters,
                       int num_states, const HybridOptions& opts = {});

/// Cluster-paired variant (6.2.2): each cluster is accepted only when its
/// output constraints AND companion input constraints IC_i are satisfiable
/// together; IC_o is handled first.
IoResult iovariant_code(const std::vector<InputConstraint>& output_only_ics,
                        const std::vector<OutputCluster>& clusters,
                        const std::vector<std::vector<BitVec>>& cluster_ics,
                        int num_states, const HybridOptions& opts = {});

/// Output-constraints-only encoder: codes satisfying every covering edge
/// (code(u) covers code(v), codes injective). Greedy: own-bit plus the OR of
/// covered codes, followed by a column-compaction pass.
Encoding out_encoder(const std::vector<OutputConstraint>& ocs, int num_states);

}  // namespace nova::encoding
