// Human-readable analysis of an encoding against its constraints: which
// faces are spanned, which constraints hold, where the violations are.
// Backs the CLI's verbose mode and the examples.
#pragma once

#include <string>

#include "encoding/encoding.hpp"

namespace nova::encoding {

struct ConstraintReport {
  BitVec states;
  int weight = 0;
  bool satisfied = false;
  Face face;                   ///< face spanned by the member codes
  std::vector<int> intruders;  ///< non-member states inside the face
};

struct EncodingReport {
  std::vector<ConstraintReport> constraints;
  int satisfied = 0;
  int weight_satisfied = 0;
  int weight_total = 0;
  /// Hamming-distance profile between all code pairs (index = distance).
  std::vector<int> distance_histogram;
  int unused_codes = 0;
};

EncodingReport analyze_encoding(const Encoding& enc,
                                const std::vector<InputConstraint>& ics);

/// Multi-line rendering: one line per constraint plus a summary.
std::string format_report(const EncodingReport& report, const Encoding& enc,
                          const std::vector<std::string>& state_names = {});

}  // namespace nova::encoding
