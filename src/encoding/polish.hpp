// Satisfaction-directed local improvement of an encoding.
//
// Targeted repair: for each unsatisfied constraint (heaviest first), find
// the non-member codes lying inside the face spanned by its members and try
// to swap them with free codes or with other states outside the face. A
// move is kept only when the total satisfied weight strictly increases.
// This is a cheap post-pass (no logic minimization involved) that recovers
// much of what the bounded embedding search leaves on the table at the
// minimum code length.
#pragma once

#include "encoding/encoding.hpp"

namespace nova::encoding {

struct PolishOptions {
  int max_passes = 8;
};

struct PolishResult {
  int moves = 0;
  int weight_before = 0;
  int weight_after = 0;
};

/// Improves `enc` in place; returns what changed.
PolishResult polish_encoding(Encoding& enc,
                             const std::vector<InputConstraint>& ics,
                             const PolishOptions& opts = {});

}  // namespace nova::encoding
