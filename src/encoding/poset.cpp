#include "encoding/poset.hpp"

#include <algorithm>
#include <map>

#include "encoding/encoding.hpp"

namespace nova::encoding {

int PosetNode::min_level() const {
  int c = cardinality();
  int l = 0;
  while ((1 << l) < c) ++l;
  return l;
}

InputGraph::InputGraph(const std::vector<InputConstraint>& ics,
                       int num_states)
    : num_states_(num_states) {
  // Collect distinct non-trivial sets.
  std::map<BitVec, bool> sets;  // value unused
  for (const auto& ic : ics) {
    int c = ic.states.count();
    if (c >= 2 && c < num_states) sets.emplace(ic.states, true);
  }
  // Closure under pairwise intersection, to a fixpoint.
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<BitVec> cur;
    cur.reserve(sets.size());
    for (auto& [s, v] : sets) cur.push_back(s);
    for (size_t i = 0; i < cur.size(); ++i) {
      for (size_t j = i + 1; j < cur.size(); ++j) {
        BitVec m = cur[i] & cur[j];
        if (m.count() >= 2 && sets.emplace(m, true).second) changed = true;
      }
    }
  }
  // Universe, constraints, singletons.
  BitVec uni(num_states);
  uni.set_all();
  nodes_.push_back({uni, {}, {}, 0});
  universe_ = 0;
  for (auto& [s, v] : sets) {
    if (s == uni) continue;
    nodes_.push_back({s, {}, {}, 0});
  }
  singleton_.resize(num_states);
  for (int s = 0; s < num_states; ++s) {
    BitVec b(num_states);
    b.set(s);
    int idx = find(b);
    if (idx < 0) {
      nodes_.push_back({b, {}, {}, 0});
      idx = size() - 1;
    }
    singleton_[s] = idx;
  }
  // Fathers: minimal strict supersets. Order candidate supersets by
  // cardinality so minimality is a simple filter.
  for (int i = 0; i < size(); ++i) {
    std::vector<int> supers;
    for (int j = 0; j < size(); ++j) {
      if (i == j) continue;
      if (nodes_[j].set.contains(nodes_[i].set) &&
          nodes_[j].set != nodes_[i].set)
        supers.push_back(j);
    }
    for (int a : supers) {
      bool minimal = true;
      for (int b : supers) {
        if (b == a) continue;
        if (nodes_[a].set.contains(nodes_[b].set) &&
            nodes_[a].set != nodes_[b].set) {
          minimal = false;
          break;
        }
      }
      if (minimal) {
        nodes_[i].fathers.push_back(a);
        nodes_[a].children.push_back(i);
      }
    }
  }
  // Categories.
  for (int i = 0; i < size(); ++i) {
    if (i == universe_) {
      nodes_[i].category = 0;
    } else if (nodes_[i].fathers.size() > 1) {
      nodes_[i].category = 2;
    } else if (nodes_[i].fathers.size() == 1 &&
               nodes_[i].fathers[0] == universe_) {
      nodes_[i].category = 1;
    } else {
      nodes_[i].category = 3;
    }
  }
  // Primary constraints (category 1, cardinality >= 2), largest first.
  for (int i = 0; i < size(); ++i) {
    if (nodes_[i].category == 1 && nodes_[i].cardinality() >= 2)
      primaries_.push_back(i);
  }
  std::stable_sort(primaries_.begin(), primaries_.end(), [&](int a, int b) {
    return nodes_[a].cardinality() > nodes_[b].cardinality();
  });
}

int InputGraph::find(const BitVec& s) const {
  for (int i = 0; i < size(); ++i) {
    if (nodes_[i].set == s) return i;
  }
  return -1;
}

namespace {

int minpow2(int c) {
  int p = 1;
  while (p < c) p <<= 1;
  return p;
}

/// Number of faces of the k-cube with level >= l: sum_{L>=l} C(k,L) 2^(k-L).
/// Saturates to avoid overflow.
long long faces_at_least_level(int k, int l) {
  long long total = 0;
  for (int L = l; L <= k; ++L) {
    // C(k, L)
    long long c = 1;
    for (int i = 0; i < L; ++i) c = c * (k - i) / (i + 1);
    long long f = c << (k - L);
    total += f;
    if (total > (1LL << 50)) return 1LL << 50;
  }
  return total;
}

int count_cond1(const InputGraph& ig, int k) {
  // For each level l: #nodes needing a face of level >= l must not exceed
  // the number of faces of level >= l (the map is injective).
  while (true) {
    bool ok = true;
    for (int l = 0; l <= k && ok; ++l) {
      long long need = 0;
      for (int i = 0; i < ig.size(); ++i) {
        if (i == ig.universe()) continue;
        if (ig.node(i).min_level() >= l) ++need;
      }
      if (need > faces_at_least_level(k, l)) ok = false;
    }
    if (ok) return k;
    ++k;
  }
}

int count_cond2(const InputGraph& ig, int k) {
  // A face of level l in the k-cube has exactly k - l minimal including
  // faces; the node's fathers must all fit among them.
  for (int i = 0; i < ig.size(); ++i) {
    if (i == ig.universe()) continue;
    int need = static_cast<int>(ig.node(i).fathers.size()) +
               ig.node(i).min_level();
    k = std::max(k, need);
  }
  return k;
}

int count_cond3(const InputGraph& ig, int k) {
  // Virtual states introduced by uneven constraints, packed as densely as
  // possible: at most `k` constraints may share one virtual state.
  std::vector<int> vrt;
  for (int i = 0; i < ig.size(); ++i) {
    if (i == ig.universe()) continue;
    int c = ig.node(i).cardinality();
    if (c >= 2 && minpow2(c) != c) vrt.push_back(minpow2(c) - c);
  }
  if (vrt.empty()) return k;
  const int n = ig.num_states();
  while (true) {
    std::vector<int> v = vrt;
    std::sort(v.begin(), v.end());
    long long iter_count = 0;
    bool nonzero = true;
    while (nonzero) {
      nonzero = false;
      std::sort(v.begin(), v.end());
      int dec = 0;
      for (auto& x : v) {
        if (x > 0 && dec < k) {
          --x;
          ++dec;
        }
        if (x > 0) nonzero = true;
      }
      if (dec > 0) ++iter_count;
      if (iter_count > (1LL << 20)) break;  // defensive
    }
    if ((1LL << k) - n >= iter_count) return k;
    ++k;
  }
}

}  // namespace

int mincube_dim(const InputGraph& ig) {
  int k = min_code_length(ig.num_states());
  k = count_cond1(ig, k);
  k = count_cond2(ig, k);
  k = count_cond3(ig, k);
  return k;
}

}  // namespace nova::encoding
