#include "encoding/embed.hpp"

#include <algorithm>
#include <numeric>
#include <optional>
#include <string>

#include "check/contract.hpp"
#include "check/faultinject.hpp"
#include "obs/obs.hpp"

namespace nova::encoding {

namespace {

/// Postconditions of a successful embedding: the extracted encoding is
/// injective, and every poset node's face holds the codes of all member
/// states and of no others (the all-and-only condition of paper 2.2).
void contract_embed_post(const InputGraph& ig, int k, const EmbedResult& res) {
  if (!res.success) return;
  NOVA_CONTRACT(cheap, res.enc.nbits == k && res.enc.injective(),
                "embedding produced duplicate or mis-sized state codes");
  if (!check::active(check::levels::paranoid)) return;
  obs::Span span("check.embed_post");
  for (int i = 0; i < ig.size(); ++i) {
    if (i == ig.universe()) continue;
    const Face& f = res.faces[i];
    const util::BitVec& set = ig.node(i).set;
    for (int s = 0; s < ig.num_states(); ++s) {
      NOVA_CONTRACT(paranoid,
                    set.get(s) == f.contains_code(res.enc.codes[s]),
                    "face of poset node " + std::to_string(i) +
                        (set.get(s) ? " misses member state "
                                    : " captures non-member state ") +
                        std::to_string(s));
    }
  }
}

/// Enumerates the subfaces of a base face, level by level, in the paper's
/// order: for each x-position pattern (lexicographic combinations of the
/// base face's free positions), all value assignments of the newly fixed
/// positions.
class FaceGen {
 public:
  FaceGen() = default;

  /// `levels` are tried in the given order.
  FaceGen(const Face& base, int k, std::vector<int> levels)
      : base_(base), levels_(std::move(levels)) {
    for (int b = 0; b < k; ++b) {
      if (!((base_.mask >> b) & 1)) free_.push_back(b);
    }
    level_idx_ = -1;
  }

  std::optional<Face> next() {
    while (true) {
      if (level_idx_ < 0 || !advance()) {
        ++level_idx_;
        if (level_idx_ >= static_cast<int>(levels_.size())) return std::nullopt;
        int L = levels_[level_idx_];
        int F = static_cast<int>(free_.size());
        if (L > F) continue;  // level not available within this base face
        comb_.resize(L);
        std::iota(comb_.begin(), comb_.end(), 0);
        value_ = 0;
        nfixed_ = F - L;
        comb_done_ = false;
      }
      return make_face();
    }
  }

  void reset() { level_idx_ = -1; }

 private:
  /// Advances (value, combination); false when the level is exhausted.
  bool advance() {
    if (comb_done_) return false;
    int L = levels_[level_idx_];
    int F = static_cast<int>(free_.size());
    if (L > F) return false;
    if (++value_ < (uint64_t{1} << nfixed_)) return true;
    value_ = 0;
    // next lexicographic combination of L out of F
    int i = L - 1;
    while (i >= 0 && comb_[i] == F - L + i) --i;
    if (i < 0) {
      comb_done_ = true;
      return false;
    }
    ++comb_[i];
    for (int j = i + 1; j < L; ++j) comb_[j] = comb_[j - 1] + 1;
    return true;
  }

  Face make_face() const {
    Face f = base_;
    int L = levels_[level_idx_];
    std::vector<char> is_x(free_.size(), 0);
    for (int c : comb_) is_x[c] = 1;
    int vi = 0;
    for (size_t i = 0; i < free_.size(); ++i) {
      if (is_x[i]) continue;
      int b = free_[i];
      f.mask |= uint64_t{1} << b;
      if ((value_ >> vi) & 1) f.bits |= uint64_t{1} << b;
      ++vi;
    }
    (void)L;
    return f;
  }

  Face base_;
  std::vector<int> levels_;
  std::vector<int> free_;
  int level_idx_ = -1;
  std::vector<int> comb_;
  uint64_t value_ = 0;
  int nfixed_ = 0;
  bool comb_done_ = false;
};

class Search {
 public:
  Search(const InputGraph& ig, int k, const std::vector<int>& dimvect,
         const EmbedOptions& opts)
      : ig_(ig), k_(k), opts_(opts) {
    // Level per primary, indexed by node id.
    primary_level_.assign(ig.size(), -1);
    const auto& prim = ig.primaries();
    for (size_t i = 0; i < prim.size(); ++i) {
      int lvl = i < dimvect.size() ? dimvect[i]
                                   : ig.node(prim[i]).min_level();
      primary_level_[prim[i]] = lvl;
    }
    // Assignment order: by descending cardinality (fathers first), then
    // category 1 before 3 before 2, then set order for determinism.
    order_.reserve(ig.size());
    for (int i = 0; i < ig.size(); ++i) {
      if (i != ig.universe()) order_.push_back(i);
    }
    std::stable_sort(order_.begin(), order_.end(), [&](int a, int b) {
      int ca = ig.node(a).cardinality(), cb = ig.node(b).cardinality();
      if (ca != cb) return ca > cb;
      int pa = ig.node(a).category, pb = ig.node(b).category;
      // category order 1 < 3 < 2
      auto rank = [](int c) { return c == 1 ? 0 : (c == 3 ? 1 : 2); };
      if (rank(pa) != rank(pb)) return rank(pa) < rank(pb);
      return ig.node(a).set < ig.node(b).set;
    });
    faces_.assign(ig.size(), Face{});
    assigned_.assign(ig.size(), 0);
    faces_[ig.universe()] = Face::universe();
    assigned_[ig.universe()] = 1;
    gens_.resize(order_.size());
  }

  EmbedResult run() {
    EmbedResult res;
    const int n = static_cast<int>(order_.size());
    int idx = 0;
    // Position of each order index's generator validity.
    std::vector<char> gen_ready(n, 0);
    while (true) {
      if (idx == n) {
        if (final_check()) {
          res.success = true;
          res.faces = faces_;
          res.enc = extract_encoding();
          finish(res);
          return res;
        }
        // Treat as failure of the last choice node.
        idx = backtrack(idx, gen_ready);
        if (idx < 0) break;
        continue;
      }
      int node = order_[idx];
      ++nodes_visited_;
      const PosetNode& pn = ig_.node(node);
      bool placed = false;
      if (pn.category == 2) {
        // Face forced: intersection of the fathers' faces. No retry: if the
        // generator was "ready" we already failed here once.
        if (!gen_ready[idx]) {
          gen_ready[idx] = 1;
          Face f = Face::universe();
          bool ok = true;
          for (int fa : pn.fathers) {
            if (!faces_[fa].intersects(f)) {
              ok = false;
              break;
            }
            f = f.intersect(faces_[fa]);
          }
          ++work_;
          if (!util::budget_charge(opts_.budget)) {
            res.exhausted = true;
            finish(res);
            return res;
          }
          if (ok && verify(node, f)) {
            faces_[node] = f;
            assigned_[node] = 1;
            placed = true;
          }
        }
      } else {
        if (!gen_ready[idx]) {
          gens_[idx] = make_generator(node);
          gen_ready[idx] = 1;
        }
        while (auto f = gens_[idx].next()) {
          if (++work_ > opts_.max_work || !util::budget_charge(opts_.budget)) {
            res.exhausted = true;
            finish(res);
            return res;
          }
          if (verify(node, *f)) {
            faces_[node] = *f;
            assigned_[node] = 1;
            placed = true;
            break;
          }
        }
      }
      if (placed) {
        ++idx;
      } else {
        gen_ready[idx] = 0;
        idx = backtrack(idx, gen_ready);
        if (idx < 0) break;
      }
      if (work_ > opts_.max_work ||
          (opts_.budget != nullptr && opts_.budget->exhausted())) {
        res.exhausted = true;
        break;
      }
    }
    finish(res);
    return res;
  }

 private:
  FaceGen make_generator(int node) const {
    const PosetNode& pn = ig_.node(node);
    const Face& base =
        pn.fathers.empty() ? Face::universe() : faces_[pn.fathers[0]];
    std::vector<int> levels;
    if (pn.cardinality() == 1) {
      levels = {0};
    } else if (pn.category == 1) {
      levels = {primary_level_[node]};
    } else {
      // Category 3: any level from the minimum up to strictly inside the
      // father's face.
      int fl = base.level(k_);
      for (int l = pn.min_level(); l < fl; ++l) levels.push_back(l);
    }
    return FaceGen(base, k_, std::move(levels));
  }

  /// Incremental correctness checks of paper 3.4.3.
  bool verify(int node, const Face& f) const {
    const PosetNode& pn = ig_.node(node);
    // Room: the face must hold all member codes.
    int lvl = f.level(k_);
    if (lvl > 63 || (lvl < 63 && (int64_t{1} << lvl) < pn.cardinality()))
      return false;
    // Strictly inside every father's face.
    for (int fa : pn.fathers) {
      if (!faces_[fa].contains(f) || faces_[fa] == f) return false;
    }
    for (int y = 0; y < ig_.size(); ++y) {
      if (!assigned_[y] || y == node) continue;
      const Face& g = faces_[y];
      const BitVec& sy = ig_.node(y).set;
      if (g == f) return false;  // injectivity
      if (g.contains(f)) {
        if (!(sy.contains(pn.set) && sy != pn.set)) return false;
      } else if (f.contains(g)) {
        if (!(pn.set.contains(sy) && sy != pn.set)) return false;
      } else if (f.intersects(g)) {
        BitVec m = pn.set & sy;
        if (m.none()) return false;
        // Partial face overlap with set containment is inconsistent: the
        // containment branch above would have to hold instead.
        if (m == pn.set || m == sy) return false;
        Face i = f.intersect(g);
        int il = i.level(k_);
        if ((int64_t{1} << il) < m.count()) return false;
        int mi = ig_.find(m);
        if (mi >= 0 && assigned_[mi] && !(faces_[mi] == i)) return false;
      } else {
        if (pn.set.intersects(sy)) return false;
      }
    }
    // Output covering constraints between fully decided states.
    if (opts_.coverings && pn.cardinality() == 1) {
      int s = pn.set.first();
      for (const auto& oc : *opts_.coverings) {
        int other = -1;
        if (oc.covering == s)
          other = oc.covered;
        else if (oc.covered == s)
          other = oc.covering;
        else
          continue;
        int on = ig_.singleton(other);
        if (on == node || !assigned_[on]) continue;
        uint64_t full = k_ >= 64 ? ~uint64_t{0} : ((uint64_t{1} << k_) - 1);
        if (f.mask != full || faces_[on].mask != full) continue;
        uint64_t cu = oc.covering == s ? f.bits : faces_[on].bits;
        uint64_t cv = oc.covered == s ? f.bits : faces_[on].bits;
        if ((cu | cv) != cu || cu == cv) return false;
      }
    }
    return true;
  }

  /// Global validation of intersection preservation over all node pairs.
  bool final_check() const {
    for (int a = 0; a < ig_.size(); ++a) {
      for (int b = a + 1; b < ig_.size(); ++b) {
        const Face &fa = faces_[a], &fb = faces_[b];
        BitVec m = ig_.node(a).set & ig_.node(b).set;
        bool fi = fa.intersects(fb);
        if (m.none()) {
          if (fi && a != ig_.universe() && b != ig_.universe()) return false;
          continue;
        }
        if (!fi) return false;
        int mi = ig_.find(m);
        if (mi >= 0) {
          Face i = fa.intersect(fb);
          if (!(faces_[mi] == i) && a != ig_.universe() &&
              b != ig_.universe())
            return false;
        }
      }
    }
    if (opts_.coverings) {
      Encoding e = extract_encoding();
      for (const auto& oc : *opts_.coverings) {
        if (!covering_satisfied(e, oc)) return false;
      }
    }
    return true;
  }

  Encoding extract_encoding() const {
    Encoding e;
    e.nbits = k_;
    e.codes.resize(ig_.num_states());
    for (int s = 0; s < ig_.num_states(); ++s) {
      // A singleton face is normally a vertex; if it has free positions
      // (possible for forced category-2 faces), take its lowest vertex --
      // safe because singleton faces are pairwise disjoint.
      e.codes[s] = faces_[ig_.singleton(s)].bits;
    }
    return e;
  }

  void finish(EmbedResult& res) const {
    res.work = work_;
    res.nodes_visited = nodes_visited_;
    res.backtracks = backtracks_;
  }

  int backtrack(int idx, std::vector<char>& gen_ready) {
    ++backtracks_;
    // Undo assignments down to the nearest earlier choice node.
    for (int j = idx - 1; j >= 0; --j) {
      int node = order_[j];
      assigned_[node] = 0;
      if (ig_.node(node).category != 2) return j;  // resume its generator
      gen_ready[j] = 0;
    }
    return -1;
  }

  const InputGraph& ig_;
  int k_;
  EmbedOptions opts_;
  std::vector<int> order_;
  std::vector<int> primary_level_;
  std::vector<Face> faces_;
  std::vector<char> assigned_;
  std::vector<FaceGen> gens_;
  long work_ = 0;
  long nodes_visited_ = 0;
  long backtracks_ = 0;
};

}  // namespace

EmbedResult pos_equiv(const InputGraph& ig, int k,
                      const std::vector<int>& dimvect,
                      const EmbedOptions& opts) {
  if (k < 1 || k > 63) return {};
  obs::Span span("embed.pos_equiv");
  check::fault::point("embed.search", opts.budget);
  Search s(ig, k, dimvect, opts);
  EmbedResult res = s.run();
  contract_embed_post(ig, k, res);
  if (obs::enabled()) {
    obs::counter_add("embed.calls");
    obs::counter_add("embed.work", res.work);
    obs::counter_add("embed.nodes_visited", res.nodes_visited);
    obs::counter_add("embed.backtracks", res.backtracks);
    obs::counter_add("embed.budget", opts.max_work);
    if (res.exhausted) obs::counter_add("embed.exhausted");
    if (res.success) obs::counter_add("embed.successes");
  }
  return res;
}

ExactResult iexact_code(const InputGraph& ig, const ExactOptions& opts) {
  obs::Span span("embed.iexact");
  ExactResult res;
  const int n = ig.num_states();
  const int kmax = opts.max_bits > 0 ? opts.max_bits : std::max(n, 1);
  long budget = opts.max_work;
  for (int k = mincube_dim(ig); k <= kmax && k <= 63; ++k) {
    // Enumerate primary level vectors in increasing lexicographic order.
    const auto& prim = ig.primaries();
    const int np = static_cast<int>(prim.size());
    std::vector<int> lo(np), dimvect(np);
    for (int i = 0; i < np; ++i) lo[i] = ig.node(prim[i]).min_level();
    dimvect = lo;
    bool more = true;
    // Skip dimensions where some primary cannot fit at all.
    bool feasible = true;
    for (int i = 0; i < np; ++i) {
      if (lo[i] > k - 1) feasible = false;
    }
    while (more && feasible) {
      EmbedOptions eo;
      eo.max_work = budget;
      eo.budget = opts.budget;
      EmbedResult er = pos_equiv(ig, k, dimvect, eo);
      budget -= er.work;
      res.work += er.work;
      if (er.success) {
        res.success = true;
        res.nbits = k;
        res.enc = std::move(er.enc);
        return res;
      }
      if (budget <= 0 ||
          (opts.budget != nullptr && opts.budget->exhausted())) {
        res.exhausted = true;
        return res;
      }
      // Next lexicographic vector with digits in [lo[i], k-1].
      int i = np - 1;
      while (i >= 0 && dimvect[i] == k - 1) {
        dimvect[i] = lo[i];
        --i;
      }
      if (i < 0)
        more = false;
      else
        ++dimvect[i];
    }
  }
  return res;
}

EmbedResult semiexact_code(const std::vector<InputConstraint>& ics,
                           int num_states, int k, const EmbedOptions& opts) {
  obs::Span span("embed.semiexact");
  InputGraph ig(ics, num_states);
  // Minimum-level primary faces only (empty dimvect = min levels).
  return pos_equiv(ig, k, {}, opts);
}

}  // namespace nova::encoding
