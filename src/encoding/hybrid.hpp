// ihybrid_code (paper section IV): greedy weight-ordered constraint
// acceptance through bounded-backtrack embedding at the minimum code
// length, followed by the projection coding algorithm (Prop. 4.2.1) on the
// extra dimensions, and igreedy_code (section V): the fast one-pass greedy.
#pragma once

#include "encoding/embed.hpp"
#include "util/rng.hpp"

namespace nova::encoding {

/// Projection coding step: extends `enc` by one bit so that every
/// constraint of `sic` stays satisfied and at least one constraint of `ric`
/// becomes satisfied (Prop. 4.2.1). Newly satisfied constraints are moved
/// from `ric` to `sic`. `coverings`, when given, restricts the raise sets to
/// ones that keep those covering constraints satisfied where possible.
Encoding project_code(const Encoding& enc, std::vector<InputConstraint>& sic,
                      std::vector<InputConstraint>& ric);

struct HybridOptions {
  int nbits = 0;           ///< target code length; 0 = minimum
  long max_work = 20000;   ///< semiexact budget per call (the "max_work")
  uint64_t seed = 1;       ///< fallback random encoding seed
  /// Extension over the paper: run the semiexact phase directly at `nbits`
  /// instead of the minimum code length (the paper always starts at the
  /// minimum and projects up). Useful when the caller sweeps code lengths.
  bool start_at_nbits = false;
  /// Number of embedding attempts. Restart 0 is always the unperturbed
  /// legacy run; restarts 1..N-1 re-shuffle tie groups of the constraint
  /// order with independent per-restart RNG streams derived from `seed`.
  /// The best result wins, ties broken by the lowest restart index, so the
  /// outcome is identical for every thread count. restarts = 1 (default)
  /// reproduces the single-attempt behavior bit for bit.
  int restarts = 1;
  /// Worker threads for the restart fan-out; 0 = NOVA_THREADS env variable
  /// (falling back to the hardware concurrency).
  int threads = 0;
  /// Optional cooperative budget. Work limits are applied *per restart
  /// attempt* (each attempt charges its own fork_attempt() child), so a
  /// given work budget yields byte-identical encodings at any thread
  /// count; the wall-clock deadline inside it is shared. On exhaustion the
  /// attempt keeps its constraints accepted so far, rejects the rest, and
  /// still produces a complete valid encoding. Null = unlimited.
  util::Budget* budget = nullptr;
};

struct HybridResult {
  Encoding enc;
  std::vector<InputConstraint> sic;  ///< satisfied input constraints
  std::vector<InputConstraint> ric;  ///< rejected/unsatisfied constraints
  int min_length = 0;
  /// Code length at which every input constraint was satisfied; -1 if the
  /// run stopped (nbits cap) while some constraint was still unsatisfied.
  int clength_all = -1;
  bool used_random_fallback = false;
};

HybridResult ihybrid_code(const std::vector<InputConstraint>& ics,
                          int num_states, const HybridOptions& opts = {});

struct GreedyOptions {
  int nbits = 0;      ///< target code length; 0 = minimum
  uint64_t seed = 1;  ///< base seed for the restart RNG streams
  /// Same restart semantics as HybridOptions::restarts: restart 0 is the
  /// unperturbed legacy run, later restarts randomize constraint-order tie
  /// breaks, best (lowest weight missed, fewest unsatisfied, lowest restart
  /// index) wins deterministically for every thread count.
  int restarts = 1;
  int threads = 0;    ///< 0 = NOVA_THREADS env / hardware concurrency
  /// Cooperative budget; same per-attempt fork semantics as
  /// HybridOptions::budget. An exhausted attempt stops placing constraint
  /// faces but always completes the encoding (every state gets a code).
  util::Budget* budget = nullptr;
};

struct GreedyResult {
  Encoding enc;
  int satisfied = 0;
  int unsatisfied = 0;
  int weight_unsatisfied = 0;
};

/// igreedy_code: bottom-up greedy from the deepest constraint intersections;
/// never undoes a choice. `nbits` = 0 means the minimum code length.
GreedyResult igreedy_code(const std::vector<InputConstraint>& ics,
                          int num_states, int nbits = 0);
GreedyResult igreedy_code(const std::vector<InputConstraint>& ics,
                          int num_states, const GreedyOptions& opts);

}  // namespace nova::encoding
