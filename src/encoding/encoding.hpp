// Common encoding types: state codes, hypercube faces, and the satisfaction
// checkers used by every algorithm and by the test suite.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "constraints/constraints.hpp"
#include "util/bitvec.hpp"

namespace nova::encoding {

using constraints::InputConstraint;
using constraints::OutputCluster;
using constraints::OutputConstraint;
using util::BitVec;

/// An assignment of Boolean codes to states. Codes are k-bit values stored
/// in the low bits of a uint64_t (k <= 63 everywhere in this library; the
/// 1-hot baseline uses its own wide representation when needed).
struct Encoding {
  int nbits = 0;
  std::vector<uint64_t> codes;

  int num_states() const { return static_cast<int>(codes.size()); }
  bool injective() const;
  std::string code_string(int state) const;  ///< MSB-first "0101" rendering
};

/// A face (subcube) of the k-cube: `mask` bit set = position specified with
/// the corresponding `bits` value; unset = don't-care (an 'x').
struct Face {
  uint64_t mask = 0;
  uint64_t bits = 0;  ///< invariant: bits subset-of mask

  bool operator==(const Face& o) const {
    return mask == o.mask && bits == o.bits;
  }
  bool operator!=(const Face& o) const { return !(*this == o); }

  int level(int k) const { return k - __builtin_popcountll(mask); }

  /// True iff the two faces share at least one vertex.
  bool intersects(const Face& o) const {
    return ((bits ^ o.bits) & mask & o.mask) == 0;
  }
  /// The common subcube; only meaningful when intersects().
  Face intersect(const Face& o) const {
    return {mask | o.mask, (bits | o.bits) & (mask | o.mask)};
  }
  /// True iff *this contains o (every vertex of o is in *this).
  bool contains(const Face& o) const {
    return (mask & ~o.mask) == 0 && ((bits ^ o.bits) & mask) == 0;
  }
  /// True iff the vertex (full code) lies inside the face.
  bool contains_code(uint64_t code) const {
    return ((code ^ bits) & mask) == 0;
  }

  static Face vertex(uint64_t code, int k) {
    uint64_t m = k >= 64 ? ~uint64_t{0} : ((uint64_t{1} << k) - 1);
    return {m, code & m};
  }
  static Face universe() { return {0, 0}; }

  std::string to_string(int k) const;  ///< MSB-first over {0,1,x}
};

/// Smallest face containing all the given codes; nullopt if the list is
/// empty.
std::optional<Face> supercube_face(const std::vector<uint64_t>& codes, int k);

/// True iff the constraint is satisfied by the encoding: the minimal face
/// spanned by the member codes contains no non-member code (paper 2.2).
bool constraint_satisfied(const Encoding& enc, const BitVec& states);
bool constraint_satisfied(const Encoding& enc, const InputConstraint& ic);

/// True iff code(covering) bit-wise covers code(covered) and differs.
bool covering_satisfied(const Encoding& enc, const OutputConstraint& oc);

/// True iff every edge of the cluster is satisfied.
bool cluster_satisfied(const Encoding& enc, const OutputCluster& oc);

/// Sum of weights of satisfied / total constraints.
struct SatisfactionSummary {
  int satisfied = 0;
  int unsatisfied = 0;
  int weight_satisfied = 0;
  int weight_unsatisfied = 0;
};
SatisfactionSummary summarize_satisfaction(
    const Encoding& enc, const std::vector<InputConstraint>& ics);

/// ceil(log2(n)) clamped to >= 1; the minimum code length for n states.
int min_code_length(int n);

}  // namespace nova::encoding
