#include "encoding/baselines.hpp"

#include <algorithm>
#include <set>

namespace nova::encoding {

Encoding random_encoding(int num_states, int nbits, util::Rng& rng) {
  Encoding e;
  e.nbits = nbits;
  e.codes.resize(num_states);
  if (nbits <= 20) {
    // Shuffle the full code space and take a prefix.
    std::vector<uint64_t> space(size_t{1} << nbits);
    for (size_t i = 0; i < space.size(); ++i) space[i] = i;
    rng.shuffle(space);
    for (int s = 0; s < num_states; ++s) e.codes[s] = space[s];
  } else {
    std::set<uint64_t> used;
    uint64_t maskv = nbits >= 64 ? ~uint64_t{0} : ((uint64_t{1} << nbits) - 1);
    for (int s = 0; s < num_states; ++s) {
      uint64_t c;
      do {
        c = rng.next() & maskv;
      } while (!used.insert(c).second);
      e.codes[s] = c;
    }
  }
  return e;
}

KissResult kiss_code(const std::vector<InputConstraint>& ics, int num_states,
                     const HybridOptions& opts) {
  KissResult res;
  // KISS satisfies every input constraint with a heuristic that does not
  // always reach the minimum length: model it by trying the bounded
  // embedding at increasing lengths, falling back to projection when the
  // search keeps failing.
  const int min_len = min_code_length(num_states);
  for (int k = min_len; k <= std::min(min_len + 3, 20); ++k) {
    EmbedOptions eo;
    eo.max_work = opts.max_work;
    EmbedResult er = semiexact_code(ics, num_states, k, eo);
    if (er.success) {
      res.enc = std::move(er.enc);
      res.nbits = k;
      res.all_satisfied = true;
      return res;
    }
  }
  HybridOptions h = opts;
  h.nbits = 62;  // unbounded projection: raise until everything holds
  HybridResult hr = ihybrid_code(ics, num_states, h);
  res.all_satisfied = hr.ric.empty();
  res.enc = std::move(hr.enc);
  res.nbits = res.enc.nbits;
  return res;
}

std::vector<std::vector<long>> mustang_weights(const fsm::Fsm& fsm,
                                               MustangVariant variant) {
  const int n = fsm.num_states();
  const int no = fsm.num_outputs();
  std::vector<std::vector<long>> w(n, std::vector<long>(n, 0));
  const auto& rows = fsm.transitions();

  if (variant == MustangVariant::kFanout) {
    // Present-state pairs going to the same next state, or asserting the
    // same outputs, should be adjacent.
    std::vector<std::vector<long>> to_next(n, std::vector<long>(n, 0));
    std::vector<std::vector<long>> asserts(n, std::vector<long>(no, 0));
    for (const auto& t : rows) {
      if (t.present < 0) continue;
      if (t.next >= 0) ++to_next[t.present][t.next];
      for (int o = 0; o < no; ++o) {
        if (t.output[o] == '1') ++asserts[t.present][o];
      }
    }
    const int nb = min_code_length(n);
    for (int u = 0; u < n; ++u) {
      for (int v = u + 1; v < n; ++v) {
        long s = 0;
        for (int x = 0; x < n; ++x) s += to_next[u][x] * to_next[v][x] * nb;
        for (int o = 0; o < no; ++o) s += asserts[u][o] * asserts[v][o];
        w[u][v] = w[v][u] = s;
      }
    }
  } else {
    // Next-state pairs reached from the same present state (common fanin).
    std::vector<std::vector<long>> from(n, std::vector<long>(n, 0));
    for (const auto& t : rows) {
      if (t.present < 0 || t.next < 0) continue;
      ++from[t.next][t.present];
    }
    for (int u = 0; u < n; ++u) {
      for (int v = u + 1; v < n; ++v) {
        long s = 0;
        for (int p = 0; p < n; ++p) s += from[u][p] * from[v][p];
        w[u][v] = w[v][u] = s;
      }
    }
  }
  return w;
}

long weighted_hamming_cost(const Encoding& enc,
                           const std::vector<std::vector<long>>& w) {
  long cost = 0;
  const int n = enc.num_states();
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      cost += w[u][v] *
              __builtin_popcountll(enc.codes[u] ^ enc.codes[v]);
    }
  }
  return cost;
}

Encoding mustang_code(const fsm::Fsm& fsm, int nbits, MustangVariant variant,
                      util::Rng& rng) {
  const int n = fsm.num_states();
  const int k = std::max(nbits, min_code_length(n));
  auto w = mustang_weights(fsm, variant);

  Encoding enc;
  enc.nbits = k;
  enc.codes.assign(n, 0);

  // Greedy placement: repeatedly place the state with the largest total
  // affinity to already-placed states, at the free code minimizing the
  // partial weighted-Hamming cost.
  std::vector<char> placed(n, 0);
  std::vector<char> used(size_t{1} << k, 0);
  // Seed: the state with the largest total weight, at code 0.
  int seed = 0;
  long best_tot = -1;
  for (int s = 0; s < n; ++s) {
    long tot = 0;
    for (int t = 0; t < n; ++t) tot += w[s][t];
    if (tot > best_tot) {
      best_tot = tot;
      seed = s;
    }
  }
  enc.codes[seed] = 0;
  placed[seed] = 1;
  used[0] = 1;
  for (int step = 1; step < n; ++step) {
    int pick = -1;
    long pick_w = -1;
    for (int s = 0; s < n; ++s) {
      if (placed[s]) continue;
      long tot = 0;
      for (int t = 0; t < n; ++t) {
        if (placed[t]) tot += w[s][t];
      }
      if (tot > pick_w) {
        pick_w = tot;
        pick = s;
      }
    }
    uint64_t best_code = 0;
    long best_cost = -1;
    for (uint64_t c = 0; c < (uint64_t{1} << k); ++c) {
      if (used[c]) continue;
      long cost = 0;
      for (int t = 0; t < n; ++t) {
        if (placed[t])
          cost += w[pick][t] * __builtin_popcountll(c ^ enc.codes[t]);
      }
      if (best_cost < 0 || cost < best_cost) {
        best_cost = cost;
        best_code = c;
      }
    }
    enc.codes[pick] = best_code;
    placed[pick] = 1;
    used[best_code] = 1;
  }

  // Pairwise-swap hill climbing with O(n) incremental cost deltas, plus
  // moves to free codes.
  auto ham = [](uint64_t a, uint64_t b) {
    return __builtin_popcountll(a ^ b);
  };
  bool improved = true;
  int passes = 0;
  while (improved && passes < 8) {
    improved = false;
    ++passes;
    for (int u = 0; u < n; ++u) {
      for (int v = u + 1; v < n; ++v) {
        long delta = 0;
        for (int t = 0; t < n; ++t) {
          if (t == u || t == v) continue;
          delta += w[u][t] * (ham(enc.codes[v], enc.codes[t]) -
                              ham(enc.codes[u], enc.codes[t]));
          delta += w[v][t] * (ham(enc.codes[u], enc.codes[t]) -
                              ham(enc.codes[v], enc.codes[t]));
        }
        if (delta < 0) {
          std::swap(enc.codes[u], enc.codes[v]);
          improved = true;
        }
      }
      for (uint64_t c = 0; c < (uint64_t{1} << k); ++c) {
        if (used[c]) continue;
        long delta = 0;
        for (int t = 0; t < n; ++t) {
          if (t == u) continue;
          delta += w[u][t] *
                   (ham(c, enc.codes[t]) - ham(enc.codes[u], enc.codes[t]));
        }
        if (delta < 0) {
          used[enc.codes[u]] = 0;
          used[c] = 1;
          enc.codes[u] = c;
          improved = true;
        }
      }
    }
  }
  (void)rng;
  return enc;
}

}  // namespace nova::encoding
