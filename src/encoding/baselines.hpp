// Baseline encoders used in the paper's comparisons (section VII):
// random assignments, a KISS-like all-constraints-satisfied encoder, and a
// MUSTANG-like multilevel-oriented encoder.
//
// The 1-hot baseline needs no Encoding: the cube count of a minimized
// 1-hot-encoded PLA equals the cardinality of the multiple-valued minimized
// symbolic cover (extract_input_constraints().minimized_cubes).
#pragma once

#include "encoding/hybrid.hpp"
#include "fsm/fsm.hpp"
#include "util/rng.hpp"

namespace nova::encoding {

/// Uniformly random injective assignment of nbits-bit codes.
Encoding random_encoding(int num_states, int nbits, util::Rng& rng);

struct KissResult {
  Encoding enc;
  int nbits = 0;
  bool all_satisfied = false;
};

/// KISS-like baseline: satisfies ALL input constraints heuristically,
/// increasing the code length as needed (the paper's characterization of
/// KISS: guaranteed satisfaction, not guaranteed minimum length).
KissResult kiss_code(const std::vector<InputConstraint>& ics, int num_states,
                     const HybridOptions& opts = {});

enum class MustangVariant { kFanout, kFanin };

/// MUSTANG-like baseline: state-pair affinity weights (fanout- or fanin-
/// oriented) embedded by greedy placement plus pairwise-swap improvement,
/// minimizing sum of weight * Hamming distance.
Encoding mustang_code(const fsm::Fsm& fsm, int nbits, MustangVariant variant,
                      util::Rng& rng);

/// The affinity matrix used by mustang_code; exposed for tests.
std::vector<std::vector<long>> mustang_weights(const fsm::Fsm& fsm,
                                               MustangVariant variant);

/// Total weighted Hamming cost of an encoding under a weight matrix.
long weighted_hamming_cost(const Encoding& enc,
                           const std::vector<std::vector<long>>& w);

}  // namespace nova::encoding
