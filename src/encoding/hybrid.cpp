#include "encoding/hybrid.hpp"

#include <algorithm>
#include <atomic>
#include <map>
#include <optional>
#include <set>
#include <thread>
#include <tuple>

#include "obs/obs.hpp"
#include "util/thread_pool.hpp"

namespace nova::encoding {

namespace {

/// Independent RNG stream for restart r: the additive constant walks the
/// seed far apart per restart and Rng's splitmix64 seeding decorrelates the
/// streams. Restart 0 never draws from its stream (it is the unperturbed
/// legacy run).
uint64_t restart_seed(uint64_t base, int restart) {
  return base + 0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(restart);
}

/// Fans fn(0..restarts-1) across the pool with the parent thread's obs
/// report re-installed in every worker, counting pool activity. fn(i) must
/// depend only on i; the caller merges by index.
void run_restarts(int restarts, int threads,
                  const std::function<void(int)>& fn) {
  util::ThreadPool pool(threads > 0 ? threads
                                    : util::ThreadPool::default_threads());
  obs::Report* parent = obs::current_report();
  std::atomic<long> offloaded{0};
  const std::thread::id caller = std::this_thread::get_id();
  pool.run_indexed(restarts, [&](int r) {
    // Workers start with no collector; adopt the spawning thread's report
    // so their counters/spans land in the same run. The calling thread
    // already has it installed.
    std::optional<obs::TraceSession> session;
    if (parent != nullptr && !obs::enabled()) session.emplace(*parent);
    if (std::this_thread::get_id() != caller) offloaded.fetch_add(1);
    fn(r);
  });
  obs::counter_add("perf.pool.tasks", restarts);
  obs::counter_add("perf.pool.tasks_offloaded", offloaded.load());
  obs::counter_add("perf.embed.restarts", restarts);
}

Encoding pad_encoding(const Encoding& enc, const BitVec& raised) {
  Encoding out = enc;
  out.nbits = enc.nbits + 1;
  for (int s = 0; s < enc.num_states(); ++s) {
    if (raised.get(s)) out.codes[s] |= uint64_t{1} << enc.nbits;
  }
  return out;
}

bool all_satisfied(const Encoding& enc,
                   const std::vector<InputConstraint>& ics) {
  for (const auto& ic : ics) {
    if (!constraint_satisfied(enc, ic)) return false;
  }
  return true;
}

/// Moves constraints of `ric` already satisfied by `enc` into `sic`.
void sweep_satisfied(const Encoding& enc, std::vector<InputConstraint>& sic,
                     std::vector<InputConstraint>& ric) {
  std::vector<InputConstraint> still;
  for (auto& ic : ric) {
    if (constraint_satisfied(enc, ic))
      sic.push_back(ic);
    else
      still.push_back(ic);
  }
  ric = std::move(still);
}

Encoding sequential_encoding(int num_states, int nbits) {
  Encoding e;
  e.nbits = nbits;
  e.codes.resize(num_states);
  for (int s = 0; s < num_states; ++s) e.codes[s] = static_cast<uint64_t>(s);
  return e;
}

}  // namespace

Encoding project_code(const Encoding& enc, std::vector<InputConstraint>& sic,
                      std::vector<InputConstraint>& ric) {
  if (ric.empty()) return pad_encoding(enc, BitVec(enc.num_states()));
  // Target: the unsatisfied constraint of maximum weight. Raising exactly
  // its member states always works (Prop. 4.2.1).
  std::vector<int> order(ric.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return ric[a].weight > ric[b].weight;
  });
  BitVec raised = ric[order[0]].states;
  std::vector<int> accepted = {order[0]};
  // Greedy extension: raise more unsatisfied constraints' states when that
  // keeps everything accepted so far (and all of SIC) satisfied.
  for (size_t oi = 1; oi < order.size(); ++oi) {
    BitVec trial = raised | ric[order[oi]].states;
    Encoding cand = pad_encoding(enc, trial);
    bool ok = all_satisfied(cand, sic);
    for (int a : accepted) {
      ok = ok && constraint_satisfied(cand, ric[a]);
    }
    ok = ok && constraint_satisfied(cand, ric[order[oi]]);
    if (ok) {
      raised = trial;
      accepted.push_back(order[oi]);
    }
  }
  Encoding out = pad_encoding(enc, raised);
  sweep_satisfied(out, sic, ric);
  return out;
}

namespace {

/// One ihybrid attempt over an already-ordered constraint list. `budget`
/// (may be null) is this attempt's own cooperative budget: on exhaustion
/// the remaining constraints are rejected wholesale and the run still
/// finishes with a complete encoding (anytime behavior).
HybridResult ihybrid_attempt(const std::vector<InputConstraint>& todo,
                             int num_states, const HybridOptions& opts,
                             util::Budget* budget) {
  HybridResult res;
  int min_len = min_code_length(num_states);
  res.min_length = min_len;
  const int nbits = std::max(opts.nbits == 0 ? min_len : opts.nbits, min_len);
  if (opts.start_at_nbits) min_len = nbits;  // semiexact at the target length

  Encoding enc;
  bool have_enc = false;
  for (const auto& ic : todo) {
    if (!util::budget_ok(budget)) {
      res.ric.push_back(ic);
      continue;
    }
    std::vector<InputConstraint> trial = res.sic;
    trial.push_back(ic);
    EmbedOptions eo;
    eo.max_work = opts.max_work;
    eo.budget = budget;
    EmbedResult er = semiexact_code(trial, num_states, min_len, eo);
    if (er.success) {
      enc = std::move(er.enc);
      have_enc = true;
      res.sic.push_back(ic);
    } else {
      res.ric.push_back(ic);
    }
  }
  if (!have_enc) {
    // Either there were no constraints, or every single one failed: fall
    // back to an unconstrained embedding, then to a plain injective code.
    EmbedOptions eo;
    eo.max_work = opts.max_work;
    eo.budget = budget;
    EmbedResult er = semiexact_code({}, num_states, min_len, eo);
    if (er.success) {
      enc = std::move(er.enc);
    } else {
      enc = sequential_encoding(num_states, min_len);
      res.used_random_fallback = true;
    }
  }
  sweep_satisfied(enc, res.sic, res.ric);
  if (res.ric.empty()) res.clength_all = min_len;

  int cube_dim = min_len;
  while (!res.ric.empty() && cube_dim < nbits && cube_dim < 62) {
    ++cube_dim;
    enc = project_code(enc, res.sic, res.ric);
    if (res.ric.empty()) res.clength_all = cube_dim;
  }
  res.enc = std::move(enc);
  return res;
}

int ric_weight(const HybridResult& r) {
  int w = 0;
  for (const auto& ic : r.ric) w += ic.weight;
  return w;
}

}  // namespace

HybridResult ihybrid_code(const std::vector<InputConstraint>& ics,
                          int num_states, const HybridOptions& opts) {
  // Constraints in decreasing weight order (the paper's processing order).
  std::vector<InputConstraint> todo = ics;
  std::stable_sort(todo.begin(), todo.end(),
                   [](const InputConstraint& a, const InputConstraint& b) {
                     return a.weight > b.weight;
                   });
  const int restarts = std::max(1, opts.restarts);
  if (restarts == 1) return ihybrid_attempt(todo, num_states, opts, opts.budget);

  // Deterministic parallel restarts: restart 0 is the unperturbed run
  // above; restart r > 0 re-shuffles the tie groups of the weight order
  // with its own RNG stream. Results are merged by (unsatisfied weight,
  // code length, restart index), so the winner does not depend on the
  // thread count or scheduling. Each restart charges its own budget fork
  // so work-limit exhaustion is a pure function of the restart index.
  std::vector<HybridResult> results(restarts);
  std::vector<util::Budget> attempt_budgets(
      opts.budget != nullptr ? restarts : 0);
  for (auto& b : attempt_budgets) b = opts.budget->fork_attempt();
  run_restarts(restarts, opts.threads, [&](int r) {
    util::Budget* bud =
        attempt_budgets.empty() ? nullptr : &attempt_budgets[r];
    if (r == 0) {
      results[0] = ihybrid_attempt(todo, num_states, opts, bud);
      return;
    }
    std::vector<InputConstraint> t = ics;
    util::Rng rng(restart_seed(opts.seed, r));
    rng.shuffle(t);
    std::stable_sort(t.begin(), t.end(),
                     [](const InputConstraint& a, const InputConstraint& b) {
                       return a.weight > b.weight;
                     });
    results[r] = ihybrid_attempt(t, num_states, opts, bud);
  });
  int best = 0;
  auto key = [&](const HybridResult& h) {
    return std::make_tuple(ric_weight(h), h.enc.nbits,
                           static_cast<int>(h.used_random_fallback));
  };
  for (int r = 1; r < restarts; ++r) {
    if (key(results[r]) < key(results[best])) best = r;
  }
  if (best != 0) obs::counter_add("perf.embed.restart_improvements");
  return std::move(results[best]);
}

namespace {

/// All vertices of a face, lexicographically by free-position value.
std::vector<uint64_t> face_vertices(const Face& f, int k) {
  std::vector<int> freepos;
  for (int b = 0; b < k; ++b) {
    if (!((f.mask >> b) & 1)) freepos.push_back(b);
  }
  std::vector<uint64_t> out;
  out.reserve(size_t{1} << freepos.size());
  for (uint64_t v = 0; v < (uint64_t{1} << freepos.size()); ++v) {
    uint64_t code = f.bits;
    for (size_t i = 0; i < freepos.size(); ++i) {
      if ((v >> i) & 1) code |= uint64_t{1} << freepos[i];
    }
    out.push_back(code);
  }
  return out;
}

}  // namespace

namespace {

/// One igreedy attempt. `perturb` null reproduces the legacy deterministic
/// ordering; non-null randomizes the tie order among equal-cardinality
/// constraint sets (the only ordering freedom the algorithm has). `budget`
/// (may be null) stops constraint-face placement early on exhaustion; the
/// trailing free-vertex sweep always runs, so every state gets a code.
GreedyResult igreedy_attempt(const std::vector<InputConstraint>& ics,
                             int num_states, int nbits, util::Rng* perturb,
                             util::Budget* budget) {
  GreedyResult res;
  const int k = std::max(nbits == 0 ? min_code_length(num_states) : nbits,
                         min_code_length(num_states));
  // Closure under intersection; encode from the deepest sets upwards.
  std::set<BitVec> sets;
  for (const auto& ic : ics) {
    int c = ic.cardinality();
    if (c >= 2 && c < num_states) sets.insert(ic.states);
  }
  bool changed = true;
  while (changed && util::budget_charge(budget, static_cast<long>(sets.size()))) {
    changed = false;
    std::vector<BitVec> cur(sets.begin(), sets.end());
    for (size_t i = 0; i < cur.size(); ++i) {
      for (size_t j = i + 1; j < cur.size(); ++j) {
        BitVec m = cur[i] & cur[j];
        if (m.count() >= 2 && sets.insert(m).second) changed = true;
      }
    }
  }
  std::vector<BitVec> order(sets.begin(), sets.end());
  if (perturb != nullptr) perturb->shuffle(order);
  std::stable_sort(order.begin(), order.end(),
                   [perturb](const BitVec& a, const BitVec& b) {
                     if (a.count() != b.count()) return a.count() < b.count();
                     // Legacy total order; perturbed runs keep the shuffled
                     // tie order instead.
                     return perturb == nullptr && a < b;
                   });

  std::vector<int64_t> code(num_states, -1);
  std::vector<char> used(size_t{1} << k, 0);
  struct Placed {
    Face face;
    BitVec members;
  };
  std::vector<Placed> placed;

  auto violates_placed = [&](uint64_t c, int state) {
    for (const auto& p : placed) {
      if (p.face.contains_code(c) && !p.members.get(state)) return true;
    }
    return false;
  };

  for (const BitVec& s : order) {
    if (!util::budget_charge(budget)) break;  // final sweep still codes all
    // Supercube of already-coded members.
    std::vector<uint64_t> coded;
    std::vector<int> uncoded;
    for (int st = s.first(); st >= 0; st = s.next(st + 1)) {
      if (code[st] >= 0)
        coded.push_back(static_cast<uint64_t>(code[st]));
      else
        uncoded.push_back(st);
    }
    int minlev = 0;
    while ((1 << minlev) < s.count()) ++minlev;
    if (coded.empty()) {
      // Anchor the constraint: seed its first member at a free vertex so
      // the face search below has a supercube to grow from.
      if (uncoded.empty()) continue;
      int st = uncoded.front();
      int64_t pick = -1, fallback = -1;
      for (uint64_t v = 0; v < (uint64_t{1} << k); ++v) {
        if (used[v]) continue;
        if (fallback < 0) fallback = static_cast<int64_t>(v);
        if (!violates_placed(v, st)) {
          pick = static_cast<int64_t>(v);
          break;
        }
      }
      if (pick < 0) pick = fallback;
      if (pick < 0) continue;  // cube full
      code[st] = pick;
      used[pick] = 1;
      coded.push_back(static_cast<uint64_t>(pick));
      uncoded.erase(uncoded.begin());
    }
    Face sc = *supercube_face(coded, k);
    int sclev = sc.level(k);
    bool done = false;
    for (int L = std::max(minlev, sclev); L <= k && !done; ++L) {
      // Faces of level L containing sc: keep sc's free positions free and
      // free up L - sclev more of its specified positions.
      std::vector<int> fixed;
      for (int b = 0; b < k; ++b) {
        if ((sc.mask >> b) & 1) fixed.push_back(b);
      }
      int extra = L - sclev;
      if (extra > static_cast<int>(fixed.size())) break;
      // Enumerate combinations of `extra` positions to free.
      std::vector<int> comb(extra);
      for (int i = 0; i < extra; ++i) comb[i] = i;
      while (!done) {
        Face f = sc;
        for (int ci : comb) {
          f.mask &= ~(uint64_t{1} << fixed[ci]);
          f.bits &= ~(uint64_t{1} << fixed[ci]);
        }
        // Check: no non-member coded state inside; enough usable vertices.
        bool ok = true;
        for (int st = 0; st < num_states && ok; ++st) {
          if (code[st] >= 0 && !s.get(st) &&
              f.contains_code(static_cast<uint64_t>(code[st])))
            ok = false;
        }
        if (ok) {
          std::vector<uint64_t> slots;
          for (uint64_t v : face_vertices(f, k)) {
            if (used[v]) continue;
            slots.push_back(v);
          }
          if (static_cast<int>(slots.size()) >= static_cast<int>(uncoded.size())) {
            // Prefer slots not violating previously placed faces.
            size_t si = 0;
            std::vector<uint64_t> chosen;
            for (int st : uncoded) {
              uint64_t pick = ~uint64_t{0};
              for (size_t j = si; j < slots.size(); ++j) {
                if (!violates_placed(slots[j], st)) {
                  pick = slots[j];
                  std::swap(slots[j], slots[si]);
                  break;
                }
              }
              if (pick == ~uint64_t{0}) pick = slots[si];
              chosen.push_back(pick);
              ++si;
            }
            for (size_t i = 0; i < chosen.size(); ++i) {
              code[uncoded[i]] = static_cast<int64_t>(chosen[i]);
              used[chosen[i]] = 1;
            }
            placed.push_back({f, s});
            done = true;
            break;
          }
        }
        // Next combination.
        int i = extra - 1;
        while (i >= 0 && comb[i] == static_cast<int>(fixed.size()) - extra + i)
          --i;
        if (i < 0) break;
        ++comb[i];
        for (int j = i + 1; j < extra; ++j) comb[j] = comb[j - 1] + 1;
        if (extra == 0) break;  // single (empty) combination only
      }
      if (extra == 0 && !done) continue;
    }
    // If not placed, the constraint is skipped (no undo in igreedy).
  }
  // Remaining states: lowest free vertices, preferring non-violating ones.
  for (int st = 0; st < num_states; ++st) {
    if (code[st] >= 0) continue;
    int64_t pick = -1, fallback = -1;
    for (uint64_t v = 0; v < (uint64_t{1} << k); ++v) {
      if (used[v]) continue;
      if (fallback < 0) fallback = static_cast<int64_t>(v);
      if (!violates_placed(v, st)) {
        pick = static_cast<int64_t>(v);
        break;
      }
    }
    code[st] = pick >= 0 ? pick : fallback;
    used[code[st]] = 1;
  }

  res.enc.nbits = k;
  res.enc.codes.resize(num_states);
  for (int st = 0; st < num_states; ++st)
    res.enc.codes[st] = static_cast<uint64_t>(code[st]);
  for (const auto& ic : ics) {
    if (constraint_satisfied(res.enc, ic)) {
      ++res.satisfied;
    } else {
      ++res.unsatisfied;
      res.weight_unsatisfied += ic.weight;
    }
  }
  return res;
}

}  // namespace

GreedyResult igreedy_code(const std::vector<InputConstraint>& ics,
                          int num_states, int nbits) {
  return igreedy_attempt(ics, num_states, nbits, nullptr, nullptr);
}

GreedyResult igreedy_code(const std::vector<InputConstraint>& ics,
                          int num_states, const GreedyOptions& opts) {
  const int restarts = std::max(1, opts.restarts);
  if (restarts == 1)
    return igreedy_attempt(ics, num_states, opts.nbits, nullptr, opts.budget);

  // Deterministic parallel restarts; see ihybrid_code for the contract.
  // Merged by (unsatisfied weight, unsatisfied count, restart index).
  std::vector<GreedyResult> results(restarts);
  std::vector<util::Budget> attempt_budgets(
      opts.budget != nullptr ? restarts : 0);
  for (auto& b : attempt_budgets) b = opts.budget->fork_attempt();
  run_restarts(restarts, opts.threads, [&](int r) {
    util::Budget* bud =
        attempt_budgets.empty() ? nullptr : &attempt_budgets[r];
    if (r == 0) {
      results[0] = igreedy_attempt(ics, num_states, opts.nbits, nullptr, bud);
      return;
    }
    util::Rng rng(restart_seed(opts.seed, r));
    results[r] = igreedy_attempt(ics, num_states, opts.nbits, &rng, bud);
  });
  int best = 0;
  auto key = [&](const GreedyResult& g) {
    return std::make_tuple(g.weight_unsatisfied, g.unsatisfied);
  };
  for (int r = 1; r < restarts; ++r) {
    if (key(results[r]) < key(results[best])) best = r;
  }
  if (best != 0) obs::counter_add("perf.embed.restart_improvements");
  return std::move(results[best]);
}

}  // namespace nova::encoding
