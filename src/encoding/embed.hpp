// The face-embedding search engine (paper sections 3.3-3.4 and 4.1).
//
// pos_equiv() answers restricted SUBPOSET EQUIVALENCE: given the input
// graph, a cube dimension k and a primary level vector, it searches by
// chronological backtracking for an injective, inclusion- and
// intersection-preserving map from the poset nodes to faces of the k-cube.
//
// iexact_code() wraps it in the two outer enumerations of the paper:
// increasing cube dimension from the mincube_dim() lower bound, and
// lexicographic enumeration of primary level vectors.
//
// semiexact_code() is the bounded variant used inside ihybrid_code: only
// minimum-dimension faces for the primary constraints, and a hard cap on
// the number of attempted assignments (the paper's `max_work`).
#pragma once

#include "encoding/encoding.hpp"
#include "encoding/poset.hpp"
#include "util/budget.hpp"

namespace nova::encoding {

struct EmbedOptions {
  /// Budget of attempted face assignments before giving up ("max_work").
  long max_work = 200000;
  /// Output covering constraints to honor during the search (io mode).
  const std::vector<OutputConstraint>* coverings = nullptr;
  /// Optional cooperative budget: one work unit per attempted face
  /// assignment (same unit as max_work), probed in the search inner loop.
  /// Exhaustion surfaces as EmbedResult::exhausted, exactly like running
  /// out of max_work. Null = unlimited.
  util::Budget* budget = nullptr;
};

struct EmbedResult {
  bool success = false;
  /// True when the search stopped on the work budget rather than proving
  /// that no assignment exists.
  bool exhausted = false;
  Encoding enc;              ///< codes per state (valid when success)
  std::vector<Face> faces;   ///< face per poset node (valid when success)
  long work = 0;             ///< assignments attempted
  long nodes_visited = 0;    ///< poset-node placement attempts
  long backtracks = 0;       ///< chronological backtracks taken
};

/// Restricted subposet equivalence for cube dimension k. `dimvect[i]` is the
/// face level of the i-th primary constraint (ig.primaries() order); pass an
/// empty vector to pin every primary at its minimum feasible level.
EmbedResult pos_equiv(const InputGraph& ig, int k,
                      const std::vector<int>& dimvect,
                      const EmbedOptions& opts = {});

struct ExactOptions {
  long max_work = 2000000;  ///< total budget across all pos_equiv calls
  int max_bits = 0;         ///< 0 = up to num_states
  util::Budget* budget = nullptr;  ///< cooperative budget (see EmbedOptions)
};

struct ExactResult {
  bool success = false;
  bool exhausted = false;  ///< budget ran out before an answer was proven
  int nbits = 0;
  Encoding enc;
  long work = 0;
};

/// Exact face hypercube embedding: minimum k satisfying all constraints.
ExactResult iexact_code(const InputGraph& ig, const ExactOptions& opts = {});

/// Bounded-backtrack embedding at a fixed dimension with minimum-level
/// primary faces (the core step of ihybrid_code).
EmbedResult semiexact_code(const std::vector<InputConstraint>& ics,
                           int num_states, int k,
                           const EmbedOptions& opts = {});

}  // namespace nova::encoding
