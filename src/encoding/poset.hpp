// The input poset of a face-hypercube-embedding instance (paper 3.1-3.2).
//
// Nodes are the intersection closure of the input constraints, augmented by
// the singletons and the universe; edges are the father/children relations
// of the Hasse diagram. Each node carries the paper's category:
//   1 (primary): single father, which is the universe
//   2: more than one father (its face is forced: the intersection of the
//      fathers' faces)
//   3: single father which is not the universe
// The universe itself has category 0.
#pragma once

#include <vector>

#include "constraints/constraints.hpp"
#include "util/bitvec.hpp"

namespace nova::encoding {

using constraints::InputConstraint;
using util::BitVec;

struct PosetNode {
  BitVec set;
  std::vector<int> fathers;
  std::vector<int> children;
  int category = 0;

  int cardinality() const { return set.count(); }
  /// Minimum face level that can hold the node: ceil(log2(cardinality)).
  int min_level() const;
};

class InputGraph {
 public:
  /// Builds the closure poset for the given constraints over `num_states`
  /// states. Trivial constraints (cardinality < 2 or = num_states) are
  /// ignored; singletons and the universe are always present.
  InputGraph(const std::vector<InputConstraint>& ics, int num_states);

  int num_states() const { return num_states_; }
  int size() const { return static_cast<int>(nodes_.size()); }
  const PosetNode& node(int i) const { return nodes_[i]; }
  const std::vector<PosetNode>& nodes() const { return nodes_; }
  int universe() const { return universe_; }
  /// Node index of the singleton {s}.
  int singleton(int s) const { return singleton_[s]; }
  /// Node index whose set equals `s`, or -1.
  int find(const BitVec& s) const;

  /// Indices of primary (category-1, cardinality >= 2) nodes, in the order
  /// used by the primary level vector (descending cardinality).
  const std::vector<int>& primaries() const { return primaries_; }

 private:
  int num_states_ = 0;
  int universe_ = -1;
  std::vector<PosetNode> nodes_;
  std::vector<int> singleton_;
  std::vector<int> primaries_;
};

/// Lower bound on the embedding-cube dimension (paper 3.3.2): the maximum of
/// the three counting arguments and ceil(log2(num_states)).
int mincube_dim(const InputGraph& ig);

}  // namespace nova::encoding
