#include "encoding/analysis.hpp"

#include <sstream>

namespace nova::encoding {

EncodingReport analyze_encoding(const Encoding& enc,
                                const std::vector<InputConstraint>& ics) {
  EncodingReport rep;
  for (const auto& ic : ics) {
    ConstraintReport cr;
    cr.states = ic.states;
    cr.weight = ic.weight;
    std::vector<uint64_t> members;
    for (int s = ic.states.first(); s >= 0; s = ic.states.next(s + 1))
      members.push_back(enc.codes[s]);
    auto face = supercube_face(members, enc.nbits);
    if (face) {
      cr.face = *face;
      for (int s = 0; s < enc.num_states(); ++s) {
        if (ic.states.get(s)) continue;
        if (face->contains_code(enc.codes[s])) cr.intruders.push_back(s);
      }
    }
    cr.satisfied = cr.intruders.empty();
    rep.weight_total += ic.weight;
    if (cr.satisfied) {
      ++rep.satisfied;
      rep.weight_satisfied += ic.weight;
    }
    rep.constraints.push_back(std::move(cr));
  }
  rep.distance_histogram.assign(enc.nbits + 1, 0);
  for (int u = 0; u < enc.num_states(); ++u) {
    for (int v = u + 1; v < enc.num_states(); ++v) {
      int d = __builtin_popcountll(enc.codes[u] ^ enc.codes[v]);
      if (d <= enc.nbits) ++rep.distance_histogram[d];
    }
  }
  if (enc.nbits < 31) {
    rep.unused_codes =
        (1 << enc.nbits) - enc.num_states();
  }
  return rep;
}

std::string format_report(const EncodingReport& report, const Encoding& enc,
                          const std::vector<std::string>& state_names) {
  auto name_of = [&](int s) {
    return s < static_cast<int>(state_names.size())
               ? state_names[s]
               : "s" + std::to_string(s);
  };
  std::ostringstream out;
  for (const auto& cr : report.constraints) {
    out << (cr.satisfied ? "  ok   " : "  VIOL ") << cr.states.to_string()
        << " w=" << cr.weight << " face=" << cr.face.to_string(enc.nbits);
    if (!cr.intruders.empty()) {
      out << " intruders:";
      for (int s : cr.intruders) out << ' ' << name_of(s);
    }
    out << '\n';
  }
  out << "  satisfied " << report.satisfied << "/"
      << report.constraints.size() << " (weight " << report.weight_satisfied
      << "/" << report.weight_total << "), unused codes "
      << report.unused_codes << '\n';
  out << "  pair-distance histogram:";
  for (size_t d = 0; d < report.distance_histogram.size(); ++d)
    out << ' ' << d << ':' << report.distance_histogram[d];
  out << '\n';
  return out.str();
}

}  // namespace nova::encoding
