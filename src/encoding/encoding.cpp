#include "encoding/encoding.hpp"

#include <algorithm>

namespace nova::encoding {

bool Encoding::injective() const {
  std::vector<uint64_t> c = codes;
  std::sort(c.begin(), c.end());
  return std::adjacent_find(c.begin(), c.end()) == c.end();
}

std::string Encoding::code_string(int state) const {
  std::string s(nbits, '0');
  for (int b = 0; b < nbits; ++b) {
    if ((codes[state] >> b) & 1) s[nbits - 1 - b] = '1';
  }
  return s;
}

std::string Face::to_string(int k) const {
  std::string s(k, 'x');
  for (int b = 0; b < k; ++b) {
    if ((mask >> b) & 1) s[k - 1 - b] = ((bits >> b) & 1) ? '1' : '0';
  }
  return s;
}

std::optional<Face> supercube_face(const std::vector<uint64_t>& codes, int k) {
  if (codes.empty()) return std::nullopt;
  uint64_t ands = codes[0], ors = codes[0];
  for (uint64_t c : codes) {
    ands &= c;
    ors |= c;
  }
  uint64_t kmask = k >= 64 ? ~uint64_t{0} : ((uint64_t{1} << k) - 1);
  uint64_t agree = ~(ands ^ ors) & kmask;
  return Face{agree, ands & agree};
}

bool constraint_satisfied(const Encoding& enc, const BitVec& states) {
  std::vector<uint64_t> members;
  for (int s = states.first(); s >= 0; s = states.next(s + 1))
    members.push_back(enc.codes[s]);
  auto face = supercube_face(members, enc.nbits);
  if (!face) return true;
  for (int s = 0; s < enc.num_states(); ++s) {
    if (states.get(s)) continue;
    if (face->contains_code(enc.codes[s])) return false;
  }
  return true;
}

bool constraint_satisfied(const Encoding& enc, const InputConstraint& ic) {
  return constraint_satisfied(enc, ic.states);
}

bool covering_satisfied(const Encoding& enc, const OutputConstraint& oc) {
  uint64_t u = enc.codes[oc.covering], v = enc.codes[oc.covered];
  return (u | v) == u && u != v;
}

bool cluster_satisfied(const Encoding& enc, const OutputCluster& oc) {
  for (const auto& e : oc.edges) {
    if (!covering_satisfied(enc, e)) return false;
  }
  return true;
}

SatisfactionSummary summarize_satisfaction(
    const Encoding& enc, const std::vector<InputConstraint>& ics) {
  SatisfactionSummary s;
  for (const auto& ic : ics) {
    if (constraint_satisfied(enc, ic)) {
      ++s.satisfied;
      s.weight_satisfied += ic.weight;
    } else {
      ++s.unsatisfied;
      s.weight_unsatisfied += ic.weight;
    }
  }
  return s;
}

int min_code_length(int n) {
  int k = 1;
  while ((1 << k) < n) ++k;
  return k;
}

}  // namespace nova::encoding
