#include "encoding/polish.hpp"

#include <algorithm>
#include <numeric>

#include "check/contract.hpp"

namespace nova::encoding {

namespace {

int satisfied_weight(const Encoding& enc,
                     const std::vector<InputConstraint>& ics) {
  int w = 0;
  for (const auto& ic : ics) {
    if (constraint_satisfied(enc, ic)) w += ic.weight;
  }
  return w;
}

}  // namespace

PolishResult polish_encoding(Encoding& enc,
                             const std::vector<InputConstraint>& ics,
                             const PolishOptions& opts) {
  PolishResult res;
  res.weight_before = satisfied_weight(enc, ics);
  res.weight_after = res.weight_before;
  // The free-code table is dense: bail out on very wide codes.
  if (ics.empty() || enc.nbits > 16) return res;
  const int n = enc.num_states();
  const uint64_t space = uint64_t{1} << enc.nbits;

  std::vector<int> order(ics.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return ics[a].weight > ics[b].weight;
  });

  int cur = res.weight_before;
  for (int pass = 0; pass < opts.max_passes; ++pass) {
    bool improved = false;
    // Free codes (recomputed per pass; moves keep this nearly fresh).
    std::vector<char> used(space, 0);
    for (uint64_t c : enc.codes) used[c] = 1;

    for (int oi : order) {
      const auto& ic = ics[oi];
      if (constraint_satisfied(enc, ic)) continue;
      // The face spanned by the member codes and its intruders.
      std::vector<uint64_t> members;
      for (int s = ic.states.first(); s >= 0; s = ic.states.next(s + 1))
        members.push_back(enc.codes[s]);
      auto face = supercube_face(members, enc.nbits);
      if (!face) continue;
      for (int s = 0; s < n; ++s) {
        if (ic.states.get(s)) continue;
        if (!face->contains_code(enc.codes[s])) continue;
        // Intruder s: try relocating it to a free code outside the face.
        bool moved = false;
        for (uint64_t c = 0; c < space && !moved; ++c) {
          if (used[c] || face->contains_code(c)) continue;
          uint64_t old = enc.codes[s];
          enc.codes[s] = c;
          int w = satisfied_weight(enc, ics);
          if (w > cur) {
            cur = w;
            used[old] = 0;
            used[c] = 1;
            ++res.moves;
            moved = true;
            improved = true;
          } else {
            enc.codes[s] = old;
          }
        }
        // Or swapping it with a member (pulls the face tighter elsewhere).
        for (int t = ic.states.first(); t >= 0 && !moved;
             t = ic.states.next(t + 1)) {
          std::swap(enc.codes[s], enc.codes[t]);
          int w = satisfied_weight(enc, ics);
          if (w > cur) {
            cur = w;
            ++res.moves;
            moved = true;
            improved = true;
          } else {
            std::swap(enc.codes[s], enc.codes[t]);
          }
        }
        // Or with any other non-member state outside the face.
        for (int t = 0; t < n && !moved; ++t) {
          if (t == s || ic.states.get(t)) continue;
          if (face->contains_code(enc.codes[t])) continue;
          std::swap(enc.codes[s], enc.codes[t]);
          int w = satisfied_weight(enc, ics);
          if (w > cur) {
            cur = w;
            ++res.moves;
            moved = true;
            improved = true;
          } else {
            std::swap(enc.codes[s], enc.codes[t]);
          }
        }
      }
    }
    if (!improved) break;
  }
  res.weight_after = cur;
  NOVA_CONTRACT(cheap, res.weight_after >= res.weight_before,
                "polish decreased the satisfied constraint weight");
  NOVA_CONTRACT(cheap, enc.injective(),
                "polish produced duplicate state codes");
  NOVA_CONTRACT(paranoid, satisfied_weight(enc, ics) == cur,
                "polish weight accounting diverged from recomputation");
  return res;
}

}  // namespace nova::encoding
