#include "fsm/symbolic.hpp"

namespace nova::fsm {

using logic::Cover;
using logic::Cube;
using logic::CubeSpec;

SymbolicCover build_symbolic_cover(const Fsm& fsm) {
  SymbolicCover sc;
  sc.num_inputs = fsm.num_inputs();
  sc.num_states = fsm.num_states();
  sc.num_outputs = fsm.num_outputs();

  std::vector<int> sizes(sc.num_inputs, 2);
  sizes.push_back(std::max(sc.num_states, 1));
  sizes.push_back(sc.num_states + sc.num_outputs);
  sc.spec = CubeSpec(std::move(sizes));
  sc.on = Cover(sc.spec);
  sc.dc = Cover(sc.spec);

  const int pv = sc.present_var();
  const int ov = sc.output_var();

  // Union of the specified (input, present) regions; output part kept full.
  Cover specified(sc.spec);

  for (const Transition& t : fsm.transitions()) {
    Cube base = Cube::full(sc.spec);
    base.set_binary_from_pla(sc.spec, 0, t.input);
    if (t.present >= 0) base.set_value(sc.spec, pv, t.present);
    specified.add(base);

    // ON: the next-state indicator plus the asserted outputs.
    Cube on = base;
    for (int k = 0; k < sc.spec.size(ov); ++k) on.clear(sc.spec.bit(ov, k));
    if (t.next >= 0) on.set(sc.spec.bit(ov, sc.next_value(t.next)));
    for (int j = 0; j < sc.num_outputs; ++j) {
      if (t.output[j] == '1') on.set(sc.spec.bit(ov, sc.output_value(j)));
    }
    sc.on.add(on);  // dropped automatically if it asserts nothing

    // DC: '-' outputs of this row.
    for (int j = 0; j < sc.num_outputs; ++j) {
      if (t.output[j] == '-') {
        Cube d = base;
        d.set_value(sc.spec, ov, sc.output_value(j));
        sc.dc.add(d);
      }
    }
    // DC: unspecified next state ('*').
    if (t.next == -1 && sc.num_states > 0) {
      Cube d = base;
      for (int k = 0; k < sc.spec.size(ov); ++k) d.clear(sc.spec.bit(ov, k));
      for (int s = 0; s < sc.num_states; ++s)
        d.set(sc.spec.bit(ov, sc.next_value(s)));
      sc.dc.add(d);
    }
  }

  // DC: everything outside the specified (input, present) region.
  Cover unspecified = logic::complement(specified);
  sc.dc.add_all(unspecified);
  sc.dc.make_scc();
  return sc;
}

}  // namespace nova::fsm
