#include "fsm/kiss_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "check/faultinject.hpp"

namespace nova::fsm {

namespace {
[[noreturn]] void fail(int line, const std::string& msg) {
  throw std::runtime_error("kiss parse error at line " + std::to_string(line) +
                           ": " + msg);
}
}  // namespace

Fsm parse_kiss(std::istream& in, const std::string& name) {
  int ni = -1, no = -1, np = -1, ns = -1;
  std::string reset_name;
  struct Row {
    std::string in, ps, ns, out;
    int line;
  };
  std::vector<Row> rows;

  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    // Strip comments and whitespace.
    auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ss(line);
    std::string tok;
    if (!(ss >> tok)) continue;
    if (tok == ".i") {
      if (!(ss >> ni) || ni < 0) fail(lineno, "bad .i");
      if (ni > kMaxKissInputs)
        fail(lineno, ".i " + std::to_string(ni) + " exceeds the input cap of " +
                         std::to_string(kMaxKissInputs));
    } else if (tok == ".o") {
      if (!(ss >> no) || no < 0) fail(lineno, "bad .o");
      if (no > kMaxKissOutputs)
        fail(lineno, ".o " + std::to_string(no) +
                         " exceeds the output cap of " +
                         std::to_string(kMaxKissOutputs));
    } else if (tok == ".p") {
      if (!(ss >> np)) fail(lineno, "bad .p");
      if (np > kMaxKissTerms)
        fail(lineno, ".p " + std::to_string(np) + " exceeds the term cap of " +
                         std::to_string(kMaxKissTerms));
    } else if (tok == ".s") {
      if (!(ss >> ns)) fail(lineno, "bad .s");
      if (ns > kMaxKissStates)
        fail(lineno, ".s " + std::to_string(ns) + " exceeds the state cap of " +
                         std::to_string(kMaxKissStates));
    } else if (tok == ".r") {
      if (!(ss >> reset_name)) fail(lineno, "bad .r");
    } else if (tok == ".e" || tok == ".end") {
      break;
    } else if (tok[0] == '.') {
      // Unknown dot-directive: ignore (e.g. .ilb/.ob labels).
      continue;
    } else {
      Row r;
      r.in = tok;
      if (!(ss >> r.ps >> r.ns >> r.out))
        fail(lineno, "transition needs 4 fields");
      r.line = lineno;
      if (static_cast<int>(rows.size()) >= kMaxKissTerms)
        fail(lineno, "transition table exceeds the term cap of " +
                         std::to_string(kMaxKissTerms));
      rows.push_back(std::move(r));
    }
  }
  if (ni < 0 || no < 0) fail(lineno, "missing .i or .o");
  check::fault::point("kiss.parse");

  Fsm fsm(ni, no);
  fsm.set_name(name);
  // Intern present states first (in order of appearance), then next states:
  // this matches the convention that state numbering follows the table.
  for (const Row& r : rows) {
    if (r.ps != "*") fsm.intern_state(r.ps);
  }
  for (const Row& r : rows) {
    if (r.ns != "*") fsm.intern_state(r.ns);
  }
  for (const Row& r : rows) {
    try {
      fsm.add_transition(r.in, r.ps, r.ns, r.out);
    } catch (const std::invalid_argument& e) {
      fail(r.line, e.what());
    }
  }
  if (!reset_name.empty()) {
    auto s = fsm.find_state(reset_name);
    if (!s) fail(lineno, "unknown reset state " + reset_name);
    fsm.set_reset_state(*s);
  }
  if (ns >= 0 && ns != fsm.num_states())
    fail(lineno, ".s says " + std::to_string(ns) + " states, table has " +
                     std::to_string(fsm.num_states()));
  if (np >= 0 && np != fsm.num_transitions())
    fail(lineno, ".p says " + std::to_string(np) + " terms, table has " +
                     std::to_string(fsm.num_transitions()));
  return fsm;
}

Fsm parse_kiss_string(const std::string& text, const std::string& name) {
  std::istringstream ss(text);
  return parse_kiss(ss, name);
}

Fsm parse_kiss_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open " + path);
  // Derive a name from the file stem.
  auto slash = path.find_last_of('/');
  std::string stem = slash == std::string::npos ? path : path.substr(slash + 1);
  auto dot = stem.find_last_of('.');
  if (dot != std::string::npos) stem.erase(dot);
  return parse_kiss(f, stem);
}

void write_kiss(const Fsm& fsm, std::ostream& out) {
  out << ".i " << fsm.num_inputs() << "\n";
  out << ".o " << fsm.num_outputs() << "\n";
  out << ".p " << fsm.num_transitions() << "\n";
  out << ".s " << fsm.num_states() << "\n";
  if (fsm.num_states() > 0)
    out << ".r " << fsm.state_name(fsm.reset_state()) << "\n";
  for (const Transition& t : fsm.transitions()) {
    out << t.input << ' '
        << (t.present == -1 ? std::string("*") : fsm.state_name(t.present))
        << ' ' << (t.next == -1 ? std::string("*") : fsm.state_name(t.next))
        << ' ' << t.output << "\n";
  }
  out << ".e\n";
}

std::string write_kiss_string(const Fsm& fsm) {
  std::ostringstream ss;
  write_kiss(fsm, ss);
  return ss.str();
}

}  // namespace nova::fsm
