// KISS2 state-transition-table reader and writer.
//
// Grammar (the subset used by the MCNC benchmarks):
//   .i N      number of primary inputs
//   .o N      number of primary outputs
//   .p N      number of product terms (optional, checked when present)
//   .s N      number of states (optional, checked when present)
//   .r NAME   reset state (optional; defaults to the first present state)
//   <input> <present> <next> <output>   one transition per line
//   .e / .end terminator (optional)
// '#' starts a comment; '*' as a state name means "any"/"unspecified".
#pragma once

#include <istream>
#include <ostream>
#include <string>

#include "fsm/fsm.hpp"

namespace nova::fsm {

/// Hard caps on declared (.i/.o/.s/.p) and actual table sizes. A malformed
/// or hostile header must produce a line-numbered parse error, not an
/// allocation proportional to an attacker-chosen count. Generous vs. the
/// MCNC benchmarks (largest: scf with 27 inputs, 121 states, 166 terms).
inline constexpr int kMaxKissInputs = 4096;
inline constexpr int kMaxKissOutputs = 4096;
inline constexpr int kMaxKissStates = 65536;
inline constexpr int kMaxKissTerms = 1 << 22;

/// Parses KISS2 text. Throws std::runtime_error with a line-numbered message
/// on malformed input.
Fsm parse_kiss(std::istream& in, const std::string& name = "");
Fsm parse_kiss_string(const std::string& text, const std::string& name = "");
Fsm parse_kiss_file(const std::string& path);

/// Writes KISS2 text (round-trips with parse_kiss).
void write_kiss(const Fsm& fsm, std::ostream& out);
std::string write_kiss_string(const Fsm& fsm);

}  // namespace nova::fsm
