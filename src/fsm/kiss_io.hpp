// KISS2 state-transition-table reader and writer.
//
// Grammar (the subset used by the MCNC benchmarks):
//   .i N      number of primary inputs
//   .o N      number of primary outputs
//   .p N      number of product terms (optional, checked when present)
//   .s N      number of states (optional, checked when present)
//   .r NAME   reset state (optional; defaults to the first present state)
//   <input> <present> <next> <output>   one transition per line
//   .e / .end terminator (optional)
// '#' starts a comment; '*' as a state name means "any"/"unspecified".
#pragma once

#include <istream>
#include <ostream>
#include <string>

#include "fsm/fsm.hpp"

namespace nova::fsm {

/// Parses KISS2 text. Throws std::runtime_error with a line-numbered message
/// on malformed input.
Fsm parse_kiss(std::istream& in, const std::string& name = "");
Fsm parse_kiss_string(const std::string& text, const std::string& name = "");
Fsm parse_kiss_file(const std::string& path);

/// Writes KISS2 text (round-trips with parse_kiss).
void write_kiss(const Fsm& fsm, std::ostream& out);
std::string write_kiss_string(const Fsm& fsm);

}  // namespace nova::fsm
