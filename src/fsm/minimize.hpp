// State minimization by partition refinement (Moore-style equivalence).
//
// Two states are merged when they have identical specified behaviour on
// every input minterm: same outputs (with '-' treated as its own symbol,
// which is conservative for incompletely specified machines) and next
// states in the same class. This is the classic reduction pass run before
// state assignment in PLA-based FSM flows.
//
// The input space is enumerated exactly, so the pass applies machines with
// up to `max_enumerated_inputs` primary inputs; beyond that the machine is
// returned unchanged (reported via `applied`).
#pragma once

#include "fsm/fsm.hpp"

namespace nova::fsm {

struct MinimizeOptions {
  int max_enumerated_inputs = 14;
};

struct MinimizeResult {
  Fsm fsm;                     ///< the reduced machine
  std::vector<int> state_map;  ///< old state index -> new state index
  int classes = 0;
  bool applied = false;  ///< false when the input space was too wide
};

MinimizeResult minimize_states(const Fsm& fsm,
                               const MinimizeOptions& opts = {});

}  // namespace nova::fsm
