// Construction of the multiple-valued symbolic cover of an FSM's
// combinational component (paper section 2.2).
//
// Variables: one binary variable per primary input, one #states-valued
// variable for the present state, and -- in the characteristic-function
// view -- one output variable whose values are the next-state indicators
// followed by the primary outputs.
#pragma once

#include "fsm/fsm.hpp"
#include "logic/cover.hpp"

namespace nova::fsm {

struct SymbolicCover {
  logic::CubeSpec spec;
  logic::Cover on;  ///< asserted (input, present) -> {next} u {high outputs}
  logic::Cover dc;  ///< '-' outputs, unspecified next states, unused space
  int num_inputs = 0;
  int num_states = 0;
  int num_outputs = 0;

  /// Index of the present-state MV variable in `spec`.
  int present_var() const { return num_inputs; }
  /// Index of the output characteristic variable in `spec`.
  int output_var() const { return num_inputs + 1; }
  /// Output-variable value for "next state is s".
  int next_value(int s) const { return s; }
  /// Output-variable value for primary output j.
  int output_value(int j) const { return num_states + j; }
};

/// Builds the ON/DC covers of the FSM's combinational component.
/// Unspecified (input, present-state) regions are fully don't-care.
SymbolicCover build_symbolic_cover(const Fsm& fsm);

}  // namespace nova::fsm
