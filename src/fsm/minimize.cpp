#include "fsm/minimize.hpp"

#include <algorithm>
#include <map>

namespace nova::fsm {

namespace {
std::string input_bits(unsigned m, int n) {
  std::string s(n, '0');
  for (int i = 0; i < n; ++i) {
    if ((m >> i) & 1) s[i] = '1';
  }
  return s;
}
}  // namespace

MinimizeResult minimize_states(const Fsm& fsm, const MinimizeOptions& opts) {
  MinimizeResult res;
  const int n = fsm.num_states();
  res.state_map.assign(n, 0);
  if (n == 0 || fsm.num_inputs() > opts.max_enumerated_inputs) {
    res.fsm = fsm;
    for (int s = 0; s < n; ++s) res.state_map[s] = s;
    res.classes = n;
    return res;
  }
  res.applied = true;
  const unsigned ninputs = 1u << fsm.num_inputs();

  // Precompute behaviour: (next state, output string) per (state, minterm);
  // next = -2, output "?" for unspecified rows.
  std::vector<std::vector<std::pair<int, std::string>>> behav(
      n, std::vector<std::pair<int, std::string>>(ninputs, {-2, "?"}));
  for (int s = 0; s < n; ++s) {
    for (unsigned m = 0; m < ninputs; ++m) {
      auto r = fsm.step(s, input_bits(m, fsm.num_inputs()));
      if (r) behav[s][m] = {r->first, r->second};
    }
  }

  // Initial partition: by the full output signature.
  std::vector<int> cls(n, 0);
  {
    std::map<std::string, int> sig_to_cls;
    for (int s = 0; s < n; ++s) {
      std::string sig;
      for (unsigned m = 0; m < ninputs; ++m) {
        sig += behav[s][m].second;
        sig += '|';
      }
      auto [it, inserted] =
          sig_to_cls.emplace(sig, static_cast<int>(sig_to_cls.size()));
      cls[s] = it->second;
    }
  }
  // Refinement: split classes whose members disagree on next-state classes.
  bool changed = true;
  while (changed) {
    changed = false;
    std::map<std::vector<int>, int> sig_to_cls;
    std::vector<int> next_cls(n);
    for (int s = 0; s < n; ++s) {
      std::vector<int> sig;
      sig.push_back(cls[s]);
      for (unsigned m = 0; m < ninputs; ++m) {
        int t = behav[s][m].first;
        sig.push_back(t >= 0 ? cls[t] : -2);
      }
      auto [it, inserted] =
          sig_to_cls.emplace(sig, static_cast<int>(sig_to_cls.size()));
      next_cls[s] = it->second;
    }
    if (next_cls != cls) {
      // Only ever refines: class count is non-decreasing.
      cls = next_cls;
      changed = true;
    }
  }

  // Renumber classes by first occurrence for stable naming.
  std::map<int, int> renum;
  for (int s = 0; s < n; ++s) {
    if (!renum.count(cls[s])) renum[cls[s]] = static_cast<int>(renum.size());
  }
  for (int s = 0; s < n; ++s) res.state_map[s] = renum[cls[s]];
  res.classes = static_cast<int>(renum.size());

  // Rebuild the machine on class representatives (first member).
  Fsm out(fsm.num_inputs(), fsm.num_outputs());
  out.set_name(fsm.name());
  std::vector<int> rep(res.classes, -1);
  for (int s = 0; s < n; ++s) {
    if (rep[res.state_map[s]] < 0) rep[res.state_map[s]] = s;
  }
  for (int c = 0; c < res.classes; ++c) {
    out.intern_state(fsm.state_name(rep[c]));
  }
  for (const Transition& t : fsm.transitions()) {
    if (t.present >= 0 && rep[res.state_map[t.present]] != t.present)
      continue;  // keep representative rows only
    int p = t.present >= 0 ? res.state_map[t.present] : -1;
    int x = t.next >= 0 ? res.state_map[t.next] : -1;
    out.add_transition(t.input, p, x, t.output);
  }
  if (n > 0) out.set_reset_state(res.state_map[fsm.reset_state()]);
  res.fsm = std::move(out);
  return res;
}

}  // namespace fsm
