// Finite state machine model: a state transition table over binary primary
// inputs/outputs and symbolic states (KISS2 semantics).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace nova::fsm {

/// One row of the state transition table.
struct Transition {
  std::string input;  ///< pattern over primary inputs: '0', '1', '-'
  int present = -1;   ///< present-state index; -1 encodes KISS2 '*' (any)
  int next = -1;      ///< next-state index; -1 encodes unspecified next state
  std::string output;  ///< pattern over primary outputs: '0', '1', '-'
};

class Fsm {
 public:
  Fsm() = default;
  Fsm(int num_inputs, int num_outputs)
      : num_inputs_(num_inputs), num_outputs_(num_outputs) {}

  int num_inputs() const { return num_inputs_; }
  int num_outputs() const { return num_outputs_; }
  int num_states() const { return static_cast<int>(state_names_.size()); }
  int num_transitions() const { return static_cast<int>(transitions_.size()); }

  const std::vector<Transition>& transitions() const { return transitions_; }
  const std::vector<std::string>& state_names() const { return state_names_; }
  const std::string& state_name(int i) const { return state_names_[i]; }

  int reset_state() const { return reset_state_; }
  void set_reset_state(int s) { reset_state_ = s; }

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  /// Returns the index of the named state, interning it if new.
  int intern_state(const std::string& name);

  /// Returns the index of the named state or nullopt if unknown.
  std::optional<int> find_state(const std::string& name) const;

  /// Appends a transition row. Patterns must match num_inputs/num_outputs;
  /// throws std::invalid_argument otherwise.
  void add_transition(const std::string& input, int present, int next,
                      const std::string& output);

  /// Convenience overload interning state names.
  void add_transition(const std::string& input, const std::string& present,
                      const std::string& next, const std::string& output);

  /// Single-step simulation: returns (next_state, output pattern) for a fully
  /// specified binary input vector, or nullopt if no row matches. Output
  /// don't-cares are returned as '-'. The first matching row wins.
  std::optional<std::pair<int, std::string>> step(
      int state, const std::string& input_bits) const;

  struct ValidationIssue {
    enum Kind { kNondeterministic, kUnreachableState, kBadPattern } kind;
    std::string detail;
  };

  /// Structural checks: pattern widths, conflicting transitions (same present
  /// state, overlapping input cubes, different next state or conflicting
  /// outputs), unreachable states.
  std::vector<ValidationIssue> validate() const;

  /// States reachable from the reset state through transitions.
  std::vector<bool> reachable_states() const;

 private:
  int num_inputs_ = 0;
  int num_outputs_ = 0;
  int reset_state_ = 0;
  std::string name_;
  std::vector<std::string> state_names_;
  std::map<std::string, int> state_index_;
  std::vector<Transition> transitions_;
};

/// True iff the two input patterns (over '0','1','-') intersect.
bool input_patterns_intersect(const std::string& a, const std::string& b);

}  // namespace nova::fsm
