#include "fsm/fsm.hpp"

#include <queue>
#include <stdexcept>

namespace nova::fsm {

namespace {
bool valid_pattern(const std::string& p, int width) {
  if (static_cast<int>(p.size()) != width) return false;
  for (char c : p) {
    if (c != '0' && c != '1' && c != '-') return false;
  }
  return true;
}

bool pattern_matches(const std::string& pattern, const std::string& bits) {
  if (pattern.size() != bits.size()) return false;
  for (size_t i = 0; i < pattern.size(); ++i) {
    if (pattern[i] != '-' && pattern[i] != bits[i]) return false;
  }
  return true;
}
}  // namespace

bool input_patterns_intersect(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if ((a[i] == '0' && b[i] == '1') || (a[i] == '1' && b[i] == '0'))
      return false;
  }
  return true;
}

int Fsm::intern_state(const std::string& name) {
  auto it = state_index_.find(name);
  if (it != state_index_.end()) return it->second;
  int idx = num_states();
  state_index_.emplace(name, idx);
  state_names_.push_back(name);
  return idx;
}

std::optional<int> Fsm::find_state(const std::string& name) const {
  auto it = state_index_.find(name);
  if (it == state_index_.end()) return std::nullopt;
  return it->second;
}

void Fsm::add_transition(const std::string& input, int present, int next,
                         const std::string& output) {
  if (!valid_pattern(input, num_inputs_))
    throw std::invalid_argument("bad input pattern: '" + input + "'");
  if (!valid_pattern(output, num_outputs_))
    throw std::invalid_argument("bad output pattern: '" + output + "'");
  if (present < -1 || present >= num_states())
    throw std::invalid_argument("bad present state index");
  if (next < -1 || next >= num_states())
    throw std::invalid_argument("bad next state index");
  transitions_.push_back({input, present, next, output});
}

void Fsm::add_transition(const std::string& input, const std::string& present,
                         const std::string& next, const std::string& output) {
  int p = present == "*" ? -1 : intern_state(present);
  int n = next == "*" ? -1 : intern_state(next);
  add_transition(input, p, n, output);
}

std::optional<std::pair<int, std::string>> Fsm::step(
    int state, const std::string& input_bits) const {
  for (const Transition& t : transitions_) {
    if (t.present != -1 && t.present != state) continue;
    if (!pattern_matches(t.input, input_bits)) continue;
    return std::make_pair(t.next, t.output);
  }
  return std::nullopt;
}

std::vector<bool> Fsm::reachable_states() const {
  std::vector<bool> seen(num_states(), false);
  if (num_states() == 0) return seen;
  std::queue<int> q;
  int r = reset_state_ >= 0 && reset_state_ < num_states() ? reset_state_ : 0;
  seen[r] = true;
  q.push(r);
  while (!q.empty()) {
    int s = q.front();
    q.pop();
    for (const Transition& t : transitions_) {
      if ((t.present == s || t.present == -1) && t.next >= 0 && !seen[t.next]) {
        seen[t.next] = true;
        q.push(t.next);
      }
    }
  }
  return seen;
}

std::vector<Fsm::ValidationIssue> Fsm::validate() const {
  std::vector<ValidationIssue> issues;
  const auto& ts = transitions_;
  for (size_t i = 0; i < ts.size(); ++i) {
    for (size_t j = i + 1; j < ts.size(); ++j) {
      bool same_state = ts[i].present == ts[j].present ||
                        ts[i].present == -1 || ts[j].present == -1;
      if (!same_state) continue;
      if (!input_patterns_intersect(ts[i].input, ts[j].input)) continue;
      bool conflict = ts[i].next != ts[j].next && ts[i].next != -1 &&
                      ts[j].next != -1;
      for (size_t k = 0; k < ts[i].output.size() && !conflict; ++k) {
        char a = ts[i].output[k], b = ts[j].output[k];
        conflict = (a == '0' && b == '1') || (a == '1' && b == '0');
      }
      if (conflict) {
        issues.push_back({ValidationIssue::kNondeterministic,
                          "rows " + std::to_string(i) + " and " +
                              std::to_string(j) + " conflict"});
      }
    }
  }
  auto seen = reachable_states();
  for (int s = 0; s < num_states(); ++s) {
    if (!seen[s]) {
      issues.push_back(
          {ValidationIssue::kUnreachableState, state_names_[s]});
    }
  }
  return issues;
}

}  // namespace nova::fsm
