#include "fsm/dot_export.hpp"

#include <sstream>

namespace nova::fsm {

namespace {
std::string quote(const std::string& s) { return "\"" + s + "\""; }
}  // namespace

std::string to_dot(const Fsm& fsm) {
  std::ostringstream out;
  out << "digraph " << (fsm.name().empty() ? "fsm" : fsm.name()) << " {\n";
  out << "  rankdir=LR;\n";
  for (int s = 0; s < fsm.num_states(); ++s) {
    out << "  " << quote(fsm.state_name(s));
    if (s == fsm.reset_state()) out << " [peripheries=2]";
    out << ";\n";
  }
  for (const auto& t : fsm.transitions()) {
    std::string from = t.present < 0 ? "*" : fsm.state_name(t.present);
    std::string to = t.next < 0 ? "*" : fsm.state_name(t.next);
    out << "  " << quote(from) << " -> " << quote(to) << " [label="
        << quote(t.input + "/" + t.output) << "];\n";
  }
  out << "}\n";
  return out.str();
}

std::string covering_dag_to_dot(
    const Fsm& fsm,
    const std::vector<constraints::OutputCluster>& clusters) {
  std::ostringstream out;
  out << "digraph covering {\n";
  for (const auto& c : clusters) {
    for (const auto& e : c.edges) {
      out << "  " << quote(fsm.state_name(e.covering)) << " -> "
          << quote(fsm.state_name(e.covered)) << " [label=\"w="
          << c.weight << "\"];\n";
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace nova::fsm
