// Graphviz export of a state transition graph (and of the covering DAG
// produced by symbolic minimization) for documentation and debugging.
#pragma once

#include <string>

#include "constraints/constraints.hpp"
#include "fsm/fsm.hpp"

namespace nova::fsm {

/// DOT digraph of the FSM: one edge per transition, labeled
/// "input/output"; the reset state is drawn doubled.
std::string to_dot(const Fsm& fsm);

/// DOT digraph of output covering clusters: edge u -> v means
/// code(u) must bit-wise cover code(v); edges carry the cluster gain.
std::string covering_dag_to_dot(
    const Fsm& fsm,
    const std::vector<constraints::OutputCluster>& clusters);

}  // namespace nova::fsm
