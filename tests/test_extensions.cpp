// Tests for the flow companions: polish_encoding, state minimization,
// verify_encoding, and symbolic-input encoding.
#include <gtest/gtest.h>

#include "bench_data/benchmarks.hpp"
#include "encoding/baselines.hpp"
#include "encoding/polish.hpp"
#include "fsm/kiss_io.hpp"
#include "fsm/minimize.hpp"
#include "nova/symbolic_inputs.hpp"
#include "nova/verify.hpp"
#include "util/rng.hpp"

using namespace nova;
using encoding::InputConstraint;
using nova::constraints::make_constraint;
using nova::util::BitVec;
using nova::util::Rng;

TEST(Polish, RepairsObviousViolation) {
  // states 0,1 should share a face; state 2 sits between them.
  encoding::Encoding enc;
  enc.nbits = 2;
  enc.codes = {0b00, 0b11, 0b01};
  std::vector<InputConstraint> ics = {make_constraint("110", 5)};
  auto r = encoding::polish_encoding(enc, ics);
  EXPECT_EQ(r.weight_before, 0);
  EXPECT_EQ(r.weight_after, 5);
  EXPECT_TRUE(enc.injective());
  EXPECT_TRUE(encoding::constraint_satisfied(enc, ics[0]));
}

TEST(Polish, NeverDecreasesWeightAndKeepsInjective) {
  Rng rng(77);
  for (int trial = 0; trial < 40; ++trial) {
    int n = 5 + rng.uniform(8);
    int k = encoding::min_code_length(n) + rng.uniform(2);
    encoding::Encoding enc = encoding::random_encoding(n, k, rng);
    std::vector<InputConstraint> ics;
    for (int i = 0; i < 8; ++i) {
      BitVec s(n);
      for (int b = 0; b < n; ++b) {
        if (rng.chance(0.35)) s.set(b);
      }
      if (s.count() >= 2 && s.count() < n) ics.push_back({s, 1 + rng.uniform(4)});
    }
    auto before = encoding::summarize_satisfaction(enc, ics);
    auto r = encoding::polish_encoding(enc, ics);
    auto after = encoding::summarize_satisfaction(enc, ics);
    EXPECT_EQ(r.weight_before, before.weight_satisfied);
    EXPECT_EQ(r.weight_after, after.weight_satisfied);
    EXPECT_GE(r.weight_after, r.weight_before) << "trial " << trial;
    EXPECT_TRUE(enc.injective()) << "trial " << trial;
  }
}

TEST(Polish, NoopOnEmptyConstraints) {
  Rng rng(5);
  encoding::Encoding enc = encoding::random_encoding(6, 3, rng);
  auto codes = enc.codes;
  auto r = encoding::polish_encoding(enc, {});
  EXPECT_EQ(r.moves, 0);
  EXPECT_EQ(enc.codes, codes);
}

TEST(StateMin, MergesDuplicateStates) {
  // b and c are behaviourally identical.
  fsm::Fsm f(1, 1);
  f.add_transition("0", "a", "b", "0");
  f.add_transition("1", "a", "c", "0");
  f.add_transition("0", "b", "a", "1");
  f.add_transition("1", "b", "b", "0");
  f.add_transition("0", "c", "a", "1");
  f.add_transition("1", "c", "c", "0");
  auto r = fsm::minimize_states(f);
  ASSERT_TRUE(r.applied);
  EXPECT_EQ(r.classes, 2);
  EXPECT_EQ(r.fsm.num_states(), 2);
  EXPECT_EQ(r.state_map[*f.find_state("b")], r.state_map[*f.find_state("c")]);
}

TEST(StateMin, MinimalMachineUnchanged) {
  auto f = bench_data::load_benchmark("modulo12");
  auto r = fsm::minimize_states(f);
  ASSERT_TRUE(r.applied);
  EXPECT_EQ(r.classes, 12);  // a modulo counter is already minimal
}

TEST(StateMin, BehaviourPreserved) {
  fsm::Fsm f(1, 1);
  f.add_transition("0", "a", "b", "0");
  f.add_transition("1", "a", "a", "1");
  f.add_transition("0", "b", "c", "0");
  f.add_transition("1", "b", "b", "1");
  f.add_transition("0", "c", "b", "0");  // c ~ a? no: c->b, a->b: check
  f.add_transition("1", "c", "c", "1");
  auto r = fsm::minimize_states(f);
  ASSERT_TRUE(r.applied);
  // Co-simulate original vs reduced through the state map.
  Rng rng(9);
  int s_orig = f.reset_state();
  int s_red = r.fsm.reset_state();
  for (int i = 0; i < 100; ++i) {
    std::string in = rng.chance(0.5) ? "1" : "0";
    auto a = f.step(s_orig, in);
    auto b = r.fsm.step(s_red, in);
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(a->second, b->second) << "step " << i;
    EXPECT_EQ(r.state_map[a->first], b->first) << "step " << i;
    s_orig = a->first;
    s_red = b->first;
  }
}

TEST(StateMin, WideInputMachineSkipped) {
  fsm::Fsm f(20, 1);
  f.add_transition(std::string(20, '-'), "a", "a", "1");
  auto r = fsm::minimize_states(f);
  EXPECT_FALSE(r.applied);
  EXPECT_EQ(r.fsm.num_states(), 1);
}

TEST(Verify, AcceptsCorrectEncoding) {
  auto f = bench_data::load_benchmark("lion");
  driver::NovaResult r = driver::encode_fsm(f, {});
  auto vr = driver::verify_encoding(f, r.enc);
  EXPECT_TRUE(vr.equivalent) << vr.detail;
  EXPECT_GT(vr.steps_run, 0);
}

TEST(Verify, RejectsCorruptedPla) {
  auto f = bench_data::load_benchmark("bbtas");
  driver::NovaResult r = driver::encode_fsm(f, {});
  auto ev = driver::evaluate_encoding(f, r.enc);
  // Corrupt: swap two state codes *after* building the PLA.
  auto bad = r.enc;
  std::swap(bad.codes[0], bad.codes[1]);
  auto vr = driver::verify_encoding(f, bad, ev);
  EXPECT_FALSE(vr.equivalent);
  EXPECT_FALSE(vr.detail.empty());
}

TEST(SymbolicInputs, AppliesToDisjointPatternMachine) {
  // Fully specified inputs -> patterns are disjoint minterms.
  auto f = bench_data::load_benchmark("shiftreg");
  auto r = driver::encode_with_symbolic_inputs(f);
  ASSERT_TRUE(r.applied);
  EXPECT_EQ(r.num_input_symbols, 2);  // '0' and '1'
  EXPECT_TRUE(r.state_enc.injective());
  EXPECT_TRUE(r.input_enc.injective());
  EXPECT_GT(r.metrics.cubes, 0);
  // One symbolic input value -> 1 encoded input bit.
  EXPECT_EQ(r.metrics.area,
            driver::pla_area(r.input_enc.nbits, r.metrics.nbits,
                             f.num_outputs(), r.metrics.cubes));
}

TEST(SymbolicInputs, RejectsOverlappingPatterns) {
  fsm::Fsm f(2, 1);
  f.add_transition("0-", "a", "b", "0");
  f.add_transition("-1", "b", "a", "1");  // overlaps 0- on 01
  auto r = driver::encode_with_symbolic_inputs(f);
  EXPECT_FALSE(r.applied);
}

TEST(SymbolicInputs, TavKeepsAreaReasonable) {
  // tav has 4 disjoint input groups; symbolic re-encoding packs them into
  // 2 bits, below the raw 4 input columns.
  auto f = bench_data::load_benchmark("tav");
  auto r = driver::encode_with_symbolic_inputs(f);
  ASSERT_TRUE(r.applied);
  EXPECT_EQ(r.num_input_symbols, 4);
  EXPECT_EQ(r.input_enc.nbits, 2);
  driver::NovaResult plain = driver::encode_fsm(f, {});
  EXPECT_LE(r.metrics.area, plain.metrics.area);
}
