// Tests for iohybrid_code / iovariant_code (paper Example 6.2.2.1) and
// out_encoder.
#include "encoding/io.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

using namespace nova::encoding;
using nova::constraints::make_constraint;
using nova::util::BitVec;
using nova::util::Rng;

namespace {

/// Paper Example 6.2.2.1 (states renumbered 0-based: paper state i -> i-1).
struct Example6221 {
  std::vector<InputConstraint> ics;
  std::vector<OutputCluster> clusters;
  std::vector<std::vector<BitVec>> cluster_ics;
  std::vector<InputConstraint> output_only;
};

Example6221 example6221() {
  Example6221 e;
  auto add_cluster = [&](int next, std::vector<std::pair<int, int>> edges,
                         const char* icbits, int w) {
    OutputCluster c;
    c.next_state = next;
    for (auto [u, v] : edges) c.edges.push_back({u, v});
    c.weight = w;
    e.clusters.push_back(c);
    std::vector<BitVec> ic;
    if (icbits) {
      BitVec b = BitVec::from_string(icbits);
      ic.push_back(b);
      e.ics.push_back({b, w});
    }
    e.cluster_ics.push_back(ic);
  };
  // (IC_o; w) = (01010101; 1)
  e.output_only.push_back(make_constraint("01010101", 1));
  e.ics.push_back(make_constraint("01010101", 1));
  // (IC_1; OC_1; w_1) = (phi; 2>1,...,8>1; 4)
  add_cluster(0, {{1, 0}, {2, 0}, {3, 0}, {4, 0}, {5, 0}, {6, 0}, {7, 0}},
              nullptr, 4);
  add_cluster(1, {{5, 1}}, "00110000", 1);
  add_cluster(2, {{6, 2}}, "00001100", 2);
  add_cluster(3, {{7, 3}}, "00000011", 1);
  add_cluster(4, {{5, 4}, {6, 4}, {7, 4}}, nullptr, 1);
  add_cluster(5, {}, "00110000", 3);
  add_cluster(6, {}, "00001100", 1);
  add_cluster(7, {}, "00000011", 1);
  return e;
}

}  // namespace

TEST(IoHybrid, PaperExample6221) {
  Example6221 e = example6221();
  HybridOptions opts;
  opts.nbits = 3;
  IoResult r = iohybrid_code(e.ics, e.clusters, 8, opts);
  EXPECT_EQ(r.enc.nbits, 3);
  EXPECT_TRUE(r.enc.injective());
  // Reported satisfactions must be real.
  for (const auto& ic : r.sic) EXPECT_TRUE(constraint_satisfied(r.enc, ic));
  for (int ci : r.soc) EXPECT_TRUE(cluster_satisfied(r.enc, e.clusters[ci]));
  // The known solution ENC = (000,010,100,110,001,011,101,111) satisfies
  // everything; our encoder should satisfy a substantial part.
  int wsat = 0, wtot = 0;
  for (size_t i = 0; i < e.clusters.size(); ++i) {
    wtot += e.clusters[i].weight;
    bool in_soc = false;
    for (int ci : r.soc) in_soc |= ci == static_cast<int>(i);
    if (in_soc || (e.clusters[i].edges.empty() &&
                   cluster_satisfied(r.enc, e.clusters[i])))
      wsat += e.clusters[i].weight;
  }
  EXPECT_GT(wsat, 0) << "some cluster weight should be won (total " << wtot
                     << ")";
}

TEST(IoHybrid, KnownSolutionSatisfiesExample6221) {
  // Cross-check the paper's stated solution with our checkers.
  Example6221 e = example6221();
  Encoding enc;
  enc.nbits = 3;
  // Paper codes for states 1..8 (MSB-first): 000,010,100,110,001,011,101,111
  enc.codes = {0b000, 0b010, 0b100, 0b110, 0b001, 0b011, 0b101, 0b111};
  for (const auto& c : e.clusters) {
    EXPECT_TRUE(cluster_satisfied(enc, c)) << "cluster " << c.next_state;
  }
  for (const auto& ic : e.ics) {
    EXPECT_TRUE(constraint_satisfied(enc, ic)) << ic.states.to_string();
  }
}

TEST(IoHybrid, InputConstraintsTakePriority) {
  // A covering constraint that conflicts with nothing; inputs satisfied.
  std::vector<InputConstraint> ics = {make_constraint("1100")};
  OutputCluster c;
  c.next_state = 0;
  c.edges = {{0, 1}};
  c.weight = 2;
  IoResult r = iohybrid_code(ics, {c}, 4, {});
  EXPECT_TRUE(r.enc.injective());
  ASSERT_EQ(r.sic.size(), 1u);
  EXPECT_TRUE(constraint_satisfied(r.enc, r.sic[0]));
}

TEST(IoHybrid, EmptyInputConstraintsUsesOutEncoder) {
  OutputCluster c;
  c.next_state = 0;
  c.edges = {{0, 1}, {0, 2}};
  c.weight = 1;
  IoResult r = iohybrid_code({}, {c}, 4, {});
  EXPECT_TRUE(r.enc.injective());
  ASSERT_EQ(r.soc.size(), 1u);
  EXPECT_TRUE(cluster_satisfied(r.enc, c));
}

TEST(IoVariant, PaperExample6221) {
  Example6221 e = example6221();
  HybridOptions opts;
  opts.nbits = 3;
  IoResult r = iovariant_code(e.output_only, e.clusters, e.cluster_ics, 8,
                              opts);
  EXPECT_EQ(r.enc.nbits, 3);
  EXPECT_TRUE(r.enc.injective());
  for (const auto& ic : r.sic) EXPECT_TRUE(constraint_satisfied(r.enc, ic));
  for (int ci : r.soc) EXPECT_TRUE(cluster_satisfied(r.enc, e.clusters[ci]));
}

TEST(OutEncoder, SimpleChain) {
  // 0 covers 1, 1 covers 2.
  std::vector<OutputConstraint> ocs = {{0, 1}, {1, 2}};
  Encoding e = out_encoder(ocs, 3);
  EXPECT_TRUE(e.injective());
  for (const auto& oc : ocs) EXPECT_TRUE(covering_satisfied(e, oc));
}

TEST(OutEncoder, Diamond) {
  // 0 covers 1 and 2; both cover 3.
  std::vector<OutputConstraint> ocs = {{0, 1}, {0, 2}, {1, 3}, {2, 3}};
  Encoding e = out_encoder(ocs, 4);
  EXPECT_TRUE(e.injective());
  for (const auto& oc : ocs) EXPECT_TRUE(covering_satisfied(e, oc));
}

TEST(OutEncoder, NoConstraintsCompactCodes) {
  Encoding e = out_encoder({}, 5);
  EXPECT_TRUE(e.injective());
  EXPECT_LE(e.nbits, 5);
}

TEST(OutEncoder, RandomDagsAlwaysSatisfied) {
  Rng rng(88);
  for (int trial = 0; trial < 30; ++trial) {
    int n = 3 + rng.uniform(8);
    std::vector<OutputConstraint> ocs;
    // Edges only from lower to higher index: guaranteed DAG (u covers v
    // with u > v as indices is fine either way; keep u < v).
    for (int u = 0; u < n; ++u) {
      for (int v = u + 1; v < n; ++v) {
        if (rng.chance(0.2)) ocs.push_back({u, v});
      }
    }
    Encoding e = out_encoder(ocs, n);
    EXPECT_TRUE(e.injective()) << "trial " << trial;
    for (const auto& oc : ocs) {
      EXPECT_TRUE(covering_satisfied(e, oc)) << "trial " << trial;
    }
  }
}

TEST(IoHybrid, ProjectionKeepsReportedClustersSatisfied) {
  // Force projection: many input constraints at a small starting length.
  Rng rng(123);
  int n = 9;
  std::vector<InputConstraint> ics;
  for (int i = 0; i < 8; ++i) {
    BitVec s(n);
    for (int b = 0; b < n; ++b) {
      if (rng.chance(0.4)) s.set(b);
    }
    if (s.count() >= 2 && s.count() < n) ics.push_back({s, 1 + rng.uniform(4)});
  }
  OutputCluster c;
  c.next_state = 0;
  c.edges = {{0, 1}};
  c.weight = 3;
  HybridOptions opts;
  opts.nbits = 8;
  IoResult r = iohybrid_code(ics, {c}, n, opts);
  EXPECT_TRUE(r.enc.injective());
  for (const auto& ic : r.sic) EXPECT_TRUE(constraint_satisfied(r.enc, ic));
  for (int ci : r.soc) {
    EXPECT_EQ(ci, 0);
    EXPECT_TRUE(cluster_satisfied(r.enc, c));
  }
}
