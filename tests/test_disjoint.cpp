#include "constraints/disjoint_min.hpp"

#include <gtest/gtest.h>

#include "bench_data/benchmarks.hpp"
#include "fsm/kiss_io.hpp"
#include "util/rng.hpp"

using namespace nova;
using nova::util::Rng;

TEST(DisjointMin, MergesMergeableRows) {
  fsm::Fsm f(2, 1);
  f.add_transition("00", "a", "b", "1");
  f.add_transition("01", "a", "b", "1");  // merges with 00 -> 0-
  f.add_transition("1-", "a", "a", "0");
  f.add_transition("--", "b", "a", "0");
  auto r = constraints::disjoint_minimize(f);
  EXPECT_EQ(r.rows_before, 4);
  EXPECT_EQ(r.rows_after, 3);
  EXPECT_EQ(r.fsm.num_states(), 2);
}

TEST(DisjointMin, NeverMergesAcrossBehaviours) {
  fsm::Fsm f(1, 1);
  f.add_transition("0", "a", "b", "1");
  f.add_transition("1", "a", "c", "1");  // different next state
  auto r = constraints::disjoint_minimize(f);
  EXPECT_EQ(r.rows_after, 2);
}

TEST(DisjointMin, BehaviourPreservedOnBenchmarks) {
  Rng rng(606);
  for (const char* name : {"lion", "bbtas", "train11", "beecount"}) {
    auto f = bench_data::load_benchmark(name);
    auto r = constraints::disjoint_minimize(f);
    EXPECT_LE(r.rows_after, r.rows_before) << name;
    // Random co-simulation.
    int sa = f.reset_state(), sb = r.fsm.reset_state();
    for (int i = 0; i < 120; ++i) {
      std::string in(f.num_inputs(), '0');
      for (auto& c : in) c = rng.chance(0.5) ? '1' : '0';
      auto ra = f.step(sa, in);
      auto rb = r.fsm.step(sb, in);
      if (!ra || ra->first < 0) {
        sa = f.reset_state();
        sb = r.fsm.reset_state();
        continue;
      }
      ASSERT_TRUE(rb.has_value()) << name;
      EXPECT_EQ(ra->first, rb->first) << name << " step " << i;
      for (size_t j = 0; j < ra->second.size(); ++j) {
        if (ra->second[j] != '-') {
          EXPECT_EQ(rb->second[j], ra->second[j]) << name << " out " << j;
        }
      }
      sa = ra->first;
      sb = rb->first;
    }
  }
}

TEST(DisjointMin, ZeroInputMachine) {
  fsm::Fsm f(0, 1);
  f.add_transition("", "a", "b", "1");
  f.add_transition("", "b", "a", "0");
  auto r = constraints::disjoint_minimize(f);
  EXPECT_EQ(r.rows_after, 2);
}

TEST(DisjointMin, PreservesStateNumbering) {
  auto f = bench_data::load_benchmark("bbtas");
  auto r = constraints::disjoint_minimize(f);
  ASSERT_EQ(r.fsm.num_states(), f.num_states());
  for (int s = 0; s < f.num_states(); ++s)
    EXPECT_EQ(r.fsm.state_name(s), f.state_name(s));
}
