#include "constraints/input_constraints.hpp"

#include <gtest/gtest.h>

#include "constraints/symbolic_min.hpp"
#include "encoding/encoding.hpp"
#include "fsm/kiss_io.hpp"

using namespace nova::constraints;
using nova::fsm::parse_kiss_string;

namespace {
// A machine engineered so MV minimization groups {a,b,c}: they all go to t
// on input 1 asserting output 1.
const char* kGroupy =
    ".i 1\n.o 1\n"
    "1 a t 1\n"
    "1 b t 1\n"
    "1 c t 1\n"
    "0 a b 0\n"
    "0 b c 0\n"
    "0 c a 0\n"
    "1 t a 0\n"
    "0 t t 0\n"
    ".e\n";

const char* kShiftreg2 =
    ".i 1\n.o 1\n"
    "0 s0 s0 0\n"
    "1 s0 s2 0\n"
    "0 s1 s0 1\n"
    "1 s1 s2 1\n"
    "0 s2 s1 0\n"
    "1 s2 s3 0\n"
    "0 s3 s1 1\n"
    "1 s3 s3 1\n"
    ".e\n";
}  // namespace

TEST(NormalizeConstraints, DedupesAndWeighs) {
  std::vector<InputConstraint> ics = {
      make_constraint("1100", 1), make_constraint("1100", 2),
      make_constraint("0110", 1), make_constraint("1111", 9),  // universe
      make_constraint("1000", 9)};                             // singleton
  auto out = normalize_constraints(ics, 4);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].weight, 3);  // merged 1100
  EXPECT_EQ(out[0].states.to_string(), "1100");
}

TEST(NormalizeConstraints, SortedByWeight) {
  std::vector<InputConstraint> ics = {make_constraint("1100", 1),
                                      make_constraint("0110", 5)};
  auto out = normalize_constraints(ics, 4);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].states.to_string(), "0110");
}

TEST(InputConstraints, GroupyMachineYieldsGroupConstraint) {
  auto f = parse_kiss_string(kGroupy, "groupy");
  auto r = extract_input_constraints(f);
  // The minimized MV cover must be smaller than the symbolic cover.
  EXPECT_LT(r.minimized_cubes, r.symbolic_cubes);
  // Constraint {a,b,c} = 1110 (state order of appearance: a,b,c,t).
  bool found = false;
  for (const auto& ic : r.constraints) {
    if (ic.states.to_string() == "1110") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(InputConstraints, ShiftregStructure) {
  auto f = parse_kiss_string(kShiftreg2, "sr");
  auto r = extract_input_constraints(f);
  EXPECT_GT(r.minimized_cubes, 0);
  EXPECT_LE(r.minimized_cubes, r.symbolic_cubes);
  for (const auto& ic : r.constraints) {
    EXPECT_GE(ic.cardinality(), 2);
    EXPECT_LT(ic.cardinality(), f.num_states());
    EXPECT_GE(ic.weight, 1);
  }
}

TEST(InputConstraints, OneHotCubesEqualMinimizedCubes) {
  // The 1-hot baseline of Table II is the minimized MV cover cardinality.
  auto f = parse_kiss_string(kGroupy, "groupy");
  auto r = extract_input_constraints(f);
  EXPECT_GT(r.minimized_cubes, 0);
  EXPECT_LT(r.minimized_cubes, f.num_transitions() + 1);
}

TEST(SymbolicMin, ProducesAcyclicCoveringDag) {
  auto f = parse_kiss_string(kGroupy, "groupy");
  auto r = symbolic_minimize(f);
  // Aligned companion structures.
  EXPECT_EQ(r.clusters.size(), r.cluster_ic.size());
  // Edges must reference valid states and never self-cover.
  for (const auto& c : r.clusters) {
    EXPECT_GE(c.weight, 1);
    for (const auto& e : c.edges) {
      EXPECT_GE(e.covering, 0);
      EXPECT_LT(e.covering, f.num_states());
      EXPECT_NE(e.covering, e.covered);
      EXPECT_EQ(e.covered, c.next_state);
    }
  }
  // Acyclicity: topological sort must succeed.
  int n = f.num_states();
  std::vector<std::vector<int>> adj(n);
  std::vector<int> indeg(n, 0);
  for (const auto& c : r.clusters) {
    for (const auto& e : c.edges) {
      adj[e.covering].push_back(e.covered);
      ++indeg[e.covered];
    }
  }
  std::vector<int> q;
  for (int s = 0; s < n; ++s) {
    if (!indeg[s]) q.push_back(s);
  }
  int seen = 0;
  while (!q.empty()) {
    int u = q.back();
    q.pop_back();
    ++seen;
    for (int v : adj[u]) {
      if (--indeg[v] == 0) q.push_back(v);
    }
  }
  EXPECT_EQ(seen, n) << "covering graph has a cycle";
}

TEST(SymbolicMin, FinalCoverNoLargerThanRows) {
  auto f = parse_kiss_string(kShiftreg2, "sr");
  auto r = symbolic_minimize(f);
  EXPECT_GT(r.final_cubes, 0);
  EXPECT_GE(r.rows_before, f.num_transitions());
  // Gains are only recorded when a stage shrinks the on-set.
  for (const auto& c : r.clusters) EXPECT_GE(c.weight, 1);
}

TEST(SymbolicMin, ConstraintsAreNontrivial) {
  auto f = parse_kiss_string(kGroupy, "groupy");
  auto r = symbolic_minimize(f);
  for (const auto& ic : r.ic) {
    EXPECT_GE(ic.cardinality(), 2);
    EXPECT_LT(ic.cardinality(), f.num_states());
  }
  for (const auto& s : r.output_only_ic) {
    EXPECT_GE(s.count(), 2);
  }
}

TEST(SymbolicMin, GroupyGainsFromGrouping) {
  // The three transitions into t must compress; expect at least one cluster
  // with positive weight.
  auto f = parse_kiss_string(kGroupy, "groupy");
  auto r = symbolic_minimize(f);
  int total_weight = 0;
  for (const auto& c : r.clusters) total_weight += c.weight;
  EXPECT_GE(total_weight, 1);
}
