// Tests for project_code (Prop. 4.2.1), ihybrid_code (Example 4.1) and
// igreedy_code.
#include "encoding/hybrid.hpp"

#include <gtest/gtest.h>

#include "encoding/baselines.hpp"
#include "util/rng.hpp"

using namespace nova::encoding;
using nova::constraints::make_constraint;
using nova::util::BitVec;
using nova::util::Rng;

namespace {
std::vector<InputConstraint> paper_ic_weighted() {
  // Example 4.1: weights 4, 2, 3, 5, 1, 1.
  return {make_constraint("1110000", 4), make_constraint("0111000", 2),
          make_constraint("0000111", 3), make_constraint("1000110", 5),
          make_constraint("0000011", 1), make_constraint("0011000", 1)};
}
}  // namespace

TEST(ProjectCode, Proposition421SingleConstraint) {
  // Any encoding, any unsatisfied constraint: one extra bit satisfies it.
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    int n = 4 + rng.uniform(8);
    int k = min_code_length(n);
    Encoding enc = random_encoding(n, k, rng);
    BitVec s(n);
    for (int b = 0; b < n; ++b) {
      if (rng.chance(0.4)) s.set(b);
    }
    if (s.count() < 2 || s.count() >= n) continue;
    std::vector<InputConstraint> sic;
    std::vector<InputConstraint> ric = {{s, 1}};
    Encoding out = project_code(enc, sic, ric);
    EXPECT_EQ(out.nbits, k + 1);
    EXPECT_TRUE(out.injective());
    EXPECT_TRUE(ric.empty()) << "constraint must be satisfied";
    ASSERT_EQ(sic.size(), 1u);
    EXPECT_TRUE(constraint_satisfied(out, sic[0]));
  }
}

TEST(ProjectCode, PreservesSatisfiedConstraints) {
  Rng rng(9);
  for (int trial = 0; trial < 50; ++trial) {
    int n = 5 + rng.uniform(6);
    int k = min_code_length(n) + 1;
    Encoding enc = random_encoding(n, k, rng);
    // Collect constraints the random encoding happens to satisfy.
    std::vector<InputConstraint> sic;
    for (int i = 0; i < 10; ++i) {
      BitVec s(n);
      for (int b = 0; b < n; ++b) {
        if (rng.chance(0.3)) s.set(b);
      }
      if (s.count() < 2 || s.count() >= n) continue;
      InputConstraint ic{s, 1};
      if (constraint_satisfied(enc, ic)) sic.push_back(ic);
    }
    BitVec t(n);
    for (int b = 0; b < n; ++b) {
      if (rng.chance(0.5)) t.set(b);
    }
    if (t.count() < 2 || t.count() >= n) continue;
    std::vector<InputConstraint> ric = {{t, 3}};
    Encoding out = project_code(enc, sic, ric);
    for (const auto& ic : sic) {
      EXPECT_TRUE(constraint_satisfied(out, ic)) << "trial " << trial;
    }
    EXPECT_TRUE(ric.empty());
  }
}

TEST(IHybrid, PaperExample41AllSatisfiedAtFourBits) {
  HybridOptions opts;
  opts.nbits = 4;
  HybridResult r = ihybrid_code(paper_ic_weighted(), 7, opts);
  EXPECT_TRUE(r.ric.empty());
  EXPECT_EQ(r.enc.nbits, 4);
  EXPECT_TRUE(r.enc.injective());
  for (const auto& ic : paper_ic_weighted()) {
    EXPECT_TRUE(constraint_satisfied(r.enc, ic)) << ic.states.to_string();
  }
  EXPECT_EQ(r.clength_all, 4);
}

TEST(IHybrid, MinimumLengthPartialSatisfaction) {
  HybridOptions opts;
  opts.nbits = 3;  // minimum for 7 states; not all constraints can fit
  HybridResult r = ihybrid_code(paper_ic_weighted(), 7, opts);
  EXPECT_EQ(r.enc.nbits, 3);
  EXPECT_TRUE(r.enc.injective());
  // The greedy is weight-ordered: the heaviest constraint (weight 5) must
  // be among the satisfied ones.
  bool heavy_sat = false;
  for (const auto& ic : r.sic) {
    if (ic.states == BitVec::from_string("1000110")) heavy_sat = true;
  }
  EXPECT_TRUE(heavy_sat);
  // Every constraint reported satisfied must actually be satisfied.
  for (const auto& ic : r.sic) EXPECT_TRUE(constraint_satisfied(r.enc, ic));
  for (const auto& ic : r.ric) EXPECT_FALSE(constraint_satisfied(r.enc, ic));
}

TEST(IHybrid, EmptyConstraints) {
  HybridResult r = ihybrid_code({}, 6, {});
  EXPECT_EQ(r.enc.nbits, 3);
  EXPECT_TRUE(r.enc.injective());
  EXPECT_TRUE(r.ric.empty());
  EXPECT_EQ(r.clength_all, 3);
}

TEST(IHybrid, TwoStates) {
  HybridResult r = ihybrid_code({}, 2, {});
  EXPECT_EQ(r.enc.nbits, 1);
  EXPECT_TRUE(r.enc.injective());
}

TEST(IHybrid, UnboundedProjectionSatisfiesAll) {
  Rng rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    int n = 5 + rng.uniform(6);
    std::vector<InputConstraint> ics;
    for (int i = 0; i < 6; ++i) {
      BitVec s(n);
      for (int b = 0; b < n; ++b) {
        if (rng.chance(0.35)) s.set(b);
      }
      if (s.count() >= 2 && s.count() < n) ics.push_back({s, 1 + rng.uniform(5)});
    }
    HybridOptions opts;
    opts.nbits = 62;
    HybridResult r = ihybrid_code(ics, n, opts);
    EXPECT_TRUE(r.ric.empty()) << "trial " << trial;
    EXPECT_GE(r.clength_all, r.min_length);
    for (const auto& ic : ics) {
      EXPECT_TRUE(constraint_satisfied(r.enc, ic)) << "trial " << trial;
    }
  }
}

TEST(IGreedy, SatisfiesSimpleConstraints) {
  std::vector<InputConstraint> ics = {make_constraint("1100"),
                                      make_constraint("0011")};
  GreedyResult r = igreedy_code(ics, 4);
  EXPECT_EQ(r.enc.nbits, 2);
  EXPECT_TRUE(r.enc.injective());
  EXPECT_EQ(r.satisfied, 2);
  EXPECT_EQ(r.unsatisfied, 0);
}

TEST(IGreedy, PrioritizesCommonSubconstraints) {
  // Two overlapping constraints; the common intersection {2} is handled
  // bottom-up. All codes distinct is mandatory.
  std::vector<InputConstraint> ics = {make_constraint("1110000"),
                                      make_constraint("0111000"),
                                      make_constraint("0011000")};
  GreedyResult r = igreedy_code(ics, 7, 4);
  EXPECT_TRUE(r.enc.injective());
  EXPECT_GE(r.satisfied, 2);
}

TEST(IGreedy, ReportedCountsAccurate) {
  Rng rng(17);
  for (int trial = 0; trial < 30; ++trial) {
    int n = 4 + rng.uniform(8);
    std::vector<InputConstraint> ics;
    for (int i = 0; i < 5; ++i) {
      BitVec s(n);
      for (int b = 0; b < n; ++b) {
        if (rng.chance(0.4)) s.set(b);
      }
      if (s.count() >= 2 && s.count() < n) ics.push_back({s, 1});
    }
    GreedyResult r = igreedy_code(ics, n, min_code_length(n) + 1);
    EXPECT_TRUE(r.enc.injective()) << "trial " << trial;
    int sat = 0;
    for (const auto& ic : ics) {
      if (constraint_satisfied(r.enc, ic)) ++sat;
    }
    EXPECT_EQ(sat, r.satisfied) << "trial " << trial;
    EXPECT_EQ(static_cast<int>(ics.size()) - sat, r.unsatisfied);
  }
}

TEST(IGreedy, EmptyConstraintsGiveInjectiveCodes) {
  GreedyResult r = igreedy_code({}, 9);
  EXPECT_EQ(r.enc.nbits, 4);
  EXPECT_TRUE(r.enc.injective());
}
