// Deterministic fault injection: spec parsing, probe-site registry, and
// the sweep that matters -- every registered site, under every fault kind,
// must surface through encode_fsm_robust as a clean, usable Outcome with a
// verify-clean encoding. Never a crash, never a hang, never an invalid
// encoding.
#include "check/faultinject.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "bench_data/benchmarks.hpp"
#include "fsm/kiss_io.hpp"
#include "logic/exact.hpp"
#include "logic/pla_io.hpp"
#include "nova/robust.hpp"
#include "nova/verify.hpp"

using namespace nova;
namespace fault = nova::check::fault;

namespace {

/// Disarms on scope exit so one test's fault cannot leak into the next.
struct Armed {
  explicit Armed(const std::string& spec) { fault::arm(spec); }
  ~Armed() { fault::disarm(); }
};

}  // namespace

TEST(FaultSpec, RegistryIsStableAndNonEmpty) {
  const auto& sites = fault::registered_sites();
  ASSERT_GE(sites.size(), 8u);
  auto has = [&](const char* s) {
    for (const auto& x : sites)
      if (x == s) return true;
    return false;
  };
  EXPECT_TRUE(has("kiss.parse"));
  EXPECT_TRUE(has("espresso.expand"));
  EXPECT_TRUE(has("embed.search"));
  EXPECT_TRUE(has("constraints.extract"));
  EXPECT_TRUE(has("driver.verify"));
}

TEST(FaultSpec, RejectsMalformedSpecs) {
  EXPECT_THROW(fault::arm("nosuchsite:1"), std::invalid_argument);
  EXPECT_THROW(fault::arm("kiss.parse"), std::invalid_argument);
  EXPECT_THROW(fault::arm("kiss.parse:0"), std::invalid_argument);
  EXPECT_THROW(fault::arm("kiss.parse:-3"), std::invalid_argument);
  EXPECT_THROW(fault::arm("kiss.parse:1:bogus"), std::invalid_argument);
  EXPECT_THROW(fault::arm(":1"), std::invalid_argument);
  fault::disarm();
}

TEST(FaultSpec, FiresExactlyOnceAtNthHit) {
  Armed a("kiss.parse:2");
  const std::string text = ".i 1\n.o 1\n0 a b 1\n1 b a 0\n";
  EXPECT_NO_THROW(fsm::parse_kiss_string(text));          // hit 1: no fire
  EXPECT_THROW(fsm::parse_kiss_string(text),               // hit 2: fires
               fault::FaultInjected);
  EXPECT_NO_THROW(fsm::parse_kiss_string(text));          // spent: no re-fire
}

TEST(FaultSpec, ParserSitesThrowCleanly) {
  {
    Armed a("kiss.parse:1");
    EXPECT_THROW(fsm::parse_kiss_string(".i 1\n.o 1\n0 a b 1\n"),
                 fault::FaultInjected);
  }
  {
    Armed a("pla.parse:1");
    EXPECT_THROW(logic::parse_pla_string(".i 2\n.o 1\n01 1\n"),
                 fault::FaultInjected);
  }
}

TEST(FaultSweep, EverySiteAndKindYieldsUsableVerifiedOutcome) {
  fsm::Fsm f = bench_data::load_benchmark("bbara");
  for (const auto& site : fault::registered_sites()) {
    if (site == "kiss.parse" || site == "pla.parse") continue;  // parser-only
    for (const char* kind : {"error", "alloc", "timeout"}) {
      Armed a(site + ":1:" + kind);
      driver::NovaOptions opts;
      auto outcome = driver::encode_fsm_robust(f, opts);
      ASSERT_TRUE(outcome.usable())
          << site << ":" << kind << " -- " << outcome.detail;
      const auto& rr = outcome.value;
      ASSERT_EQ(rr.nova.enc.num_states(), f.num_states())
          << site << ":" << kind;
      EXPECT_TRUE(rr.nova.enc.injective()) << site << ":" << kind;
      EXPECT_TRUE(rr.verified) << site << ":" << kind;
      auto vr = driver::verify_encoding(f, rr.nova.enc);
      EXPECT_TRUE(vr.equivalent)
          << site << ":" << kind << " -- " << vr.detail;
    }
  }
}

TEST(FaultSweep, ExactMinimizeSiteFiresInTheExactMinimizer) {
  // exact_minimize sits outside the encode pipeline (verification and
  // benchmarking use it directly), so its probe is exercised directly.
  logic::CubeSpec spec = logic::CubeSpec::binary(3);
  logic::Cover on(spec);
  logic::Cube q = logic::Cube::full(spec);
  q.set_binary_from_pla(spec, 0, "101");
  on.add(q);
  Armed a("exact.minimize:1");
  EXPECT_THROW(logic::exact_minimize(on), fault::FaultInjected);
  fault::disarm();
  EXPECT_NO_THROW(logic::exact_minimize(on));
}

TEST(FaultSweep, NoFaultMeansOkPassThrough) {
  fault::disarm();
  fsm::Fsm f = bench_data::load_benchmark("lion");
  auto outcome = driver::encode_fsm_robust(f, driver::NovaOptions{},
                                           driver::RobustOptions{
                                               .verify = {},
                                               .allow_downgrade = true,
                                               .budget_from_env = false});
  ASSERT_TRUE(outcome.ok()) << outcome.detail;
  EXPECT_EQ(outcome.value.downgrades, 0);
}
