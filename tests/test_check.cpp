// The contract framework (levels, macro behavior, violation reporting) and
// the deep structural validators of src/check.
#include <gtest/gtest.h>

#include "bench_data/benchmarks.hpp"
#include "check/check.hpp"
#include "check/contract.hpp"
#include "logic/cover.hpp"
#include "logic/espresso.hpp"
#include "nova/nova.hpp"
#include "obs/obs.hpp"

namespace check = nova::check;
using check::ContractViolation;
using check::Level;
using check::ScopedLevel;
using nova::logic::Cover;
using nova::logic::Cube;
using nova::logic::CubeSpec;

TEST(ContractLevel, ParseAcceptsNamesAndDigits) {
  EXPECT_EQ(check::parse_level("off", Level::kCheap), Level::kOff);
  EXPECT_EQ(check::parse_level("cheap", Level::kOff), Level::kCheap);
  EXPECT_EQ(check::parse_level("paranoid", Level::kOff), Level::kParanoid);
  EXPECT_EQ(check::parse_level("0", Level::kCheap), Level::kOff);
  EXPECT_EQ(check::parse_level("1", Level::kOff), Level::kCheap);
  EXPECT_EQ(check::parse_level("2", Level::kOff), Level::kParanoid);
  EXPECT_EQ(check::parse_level("bogus", Level::kCheap), Level::kCheap);
}

TEST(ContractLevel, ScopedLevelRestoresAndClamps) {
  const Level before = check::level();
  {
    ScopedLevel s(Level::kParanoid);
    EXPECT_LE(static_cast<int>(check::level()),
              static_cast<int>(check::kCompiledMax));
    EXPECT_TRUE(check::active(Level::kCheap));
  }
  EXPECT_EQ(check::level(), before);
}

TEST(Contract, FiresAtOrBelowActiveLevel) {
  ScopedLevel s(Level::kCheap);
  EXPECT_NO_THROW(NOVA_CONTRACT(cheap, true, "fine"));
  EXPECT_THROW(NOVA_CONTRACT(cheap, 1 == 2, "must fire"), ContractViolation);
  // Paranoid contracts stay dormant at the cheap level.
  EXPECT_NO_THROW(NOVA_CONTRACT(paranoid, false, "dormant"));
}

TEST(Contract, OffLevelDisablesEverything) {
  ScopedLevel s(Level::kOff);
  EXPECT_NO_THROW(NOVA_CONTRACT(cheap, false, "dormant"));
  EXPECT_NO_THROW(NOVA_CONTRACT(paranoid, false, "dormant"));
}

TEST(Contract, MessageEvaluatedOnlyOnFailure) {
  ScopedLevel s(Level::kCheap);
  int evals = 0;
  auto msg = [&] {
    ++evals;
    return std::string("built");
  };
  NOVA_CONTRACT(cheap, true, msg());
  EXPECT_EQ(evals, 0);
  EXPECT_THROW(NOVA_CONTRACT(cheap, false, msg()), ContractViolation);
  EXPECT_EQ(evals, 1);
}

TEST(Contract, ViolationCarriesLocationAndExpression) {
  ScopedLevel s(Level::kCheap);
  try {
    NOVA_CONTRACT(cheap, 2 + 2 == 5, "arithmetic is safe");
    FAIL() << "contract did not fire";
  } catch (const ContractViolation& e) {
    EXPECT_NE(e.file().find("test_check.cpp"), std::string::npos);
    EXPECT_GT(e.line(), 0);
    const std::string what = e.what();
    EXPECT_NE(what.find("arithmetic is safe"), std::string::npos);
    EXPECT_NE(what.find("2 + 2 == 5"), std::string::npos);
  }
}

TEST(Contract, ViolationsCounterBumpsUnderTraceSession) {
  ScopedLevel s(Level::kCheap);
  nova::obs::Report report;
  {
    nova::obs::TraceSession session(report);
    EXPECT_THROW(NOVA_CONTRACT(cheap, false, "counted"), ContractViolation);
    EXPECT_THROW(NOVA_CONTRACT(cheap, false, "counted"), ContractViolation);
  }
  EXPECT_EQ(report.counter("check.violations"), 2);
}

// ---------------------------------------------------------------------------
// Deep validators. They check unconditionally when called, so no ScopedLevel
// is needed to exercise them.

TEST(CheckFsm, AcceptsBenchmarksAndRejectsBadReset) {
  nova::fsm::Fsm fsm = nova::bench_data::load_benchmark("lion");
  EXPECT_NO_THROW(check::check_fsm(fsm, "test"));
  fsm.set_reset_state(99);
  EXPECT_THROW(check::check_fsm(fsm, "test"), ContractViolation);
}

TEST(CheckFsm, RejectsDuplicateStateNames) {
  nova::fsm::Fsm fsm(1, 1);
  fsm.intern_state("a");
  fsm.intern_state("b");
  EXPECT_NO_THROW(check::check_fsm(fsm, "test"));
  // intern_state dedups, so collide through the public seam used by I/O:
  // two distinct indices can only alias via direct construction; simulate
  // with a second machine whose rows force the same name twice is not
  // possible, so this guard is exercised via the reset/range checks above
  // and the pattern checks below.
  nova::fsm::Fsm bad(2, 1);
  bad.intern_state("a");
  EXPECT_THROW(bad.add_transition("0", "a", "a", "1"), std::invalid_argument);
}

TEST(CheckCover, FlagsCorruptedCubes) {
  CubeSpec spec({2, 2});
  Cover f(spec);
  f.add(Cube::full(spec));
  EXPECT_NO_THROW(check::check_cover(f, "test"));
  // Empty out one variable part in place (add() would have dropped it).
  f[0].clear(spec.bit(0, 0));
  f[0].clear(spec.bit(0, 1));
  EXPECT_THROW(check::check_cover(f, "test"), ContractViolation);
}

TEST(CheckEncoding, AcceptsGoodAndRejectsBrokenEncodings) {
  nova::encoding::Encoding enc;
  enc.nbits = 2;
  enc.codes = {0, 1, 2, 3};
  std::vector<nova::constraints::InputConstraint> ics = {
      nova::constraints::make_constraint("1100", 1),
      nova::constraints::make_constraint("0011", 2)};
  EXPECT_NO_THROW(check::check_encoding(enc, 4, ics, "test"));

  auto dup = enc;
  dup.codes[3] = 0;
  EXPECT_THROW(check::check_encoding(dup, 4, ics, "test"), ContractViolation);

  auto wide = enc;
  wide.codes[2] = 7;  // does not fit in 2 bits
  EXPECT_THROW(check::check_encoding(wide, 4, ics, "test"), ContractViolation);

  auto short_codes = enc;
  short_codes.codes.pop_back();
  EXPECT_THROW(check::check_encoding(short_codes, 4, ics, "test"),
               ContractViolation);

  auto zero_bits = enc;
  zero_bits.nbits = 0;
  EXPECT_THROW(check::check_encoding(zero_bits, 4, ics, "test"),
               ContractViolation);
}

TEST(CheckEncoding, OutputConstraintChecks) {
  nova::encoding::Encoding enc;
  enc.nbits = 2;
  enc.codes = {3, 1, 0};
  std::vector<nova::constraints::InputConstraint> ics;
  std::vector<nova::constraints::OutputConstraint> ocs = {{0, 1}};
  EXPECT_NO_THROW(check::check_encoding(enc, 3, ics, ocs, "test"));
  std::vector<nova::constraints::OutputConstraint> self = {{1, 1}};
  EXPECT_THROW(check::check_encoding(enc, 3, ics, self, "test"),
               ContractViolation);
  std::vector<nova::constraints::OutputConstraint> oob = {{0, 9}};
  EXPECT_THROW(check::check_encoding(enc, 3, ics, oob, "test"),
               ContractViolation);
}

TEST(CheckEspressoPost, AcceptsRealRunsAndCatchesCorruption) {
  CubeSpec spec = CubeSpec::binary(3);
  Cover on(spec), dc(spec);
  auto add_row = [&](Cover& c, const std::string& row) {
    Cube q = Cube::full(spec);
    q.set_binary_from_pla(spec, 0, row);
    c.add(q);
  };
  add_row(on, "000");
  add_row(on, "001");
  add_row(on, "011");
  add_row(dc, "111");
  Cover g = nova::logic::espresso(on, dc);
  EXPECT_NO_THROW(check::check_espresso_post(g, on, dc, "test"));

  // Dropping a cube loses on-set coverage.
  Cover missing(spec);
  for (int i = 1; i < g.size(); ++i) missing.add(g[i]);
  EXPECT_THROW(check::check_espresso_post(missing, on, dc, "test"),
               ContractViolation);

  // Adding the whole space intersects the off-set.
  Cover bloated = g;
  bloated.add(Cube::full(spec));
  EXPECT_THROW(check::check_espresso_post(bloated, on, dc, "test"),
               ContractViolation);
}

TEST(CheckIntegration, ParanoidEncodeRunsCleanOnBenchmarks) {
  ScopedLevel s(Level::kParanoid);
  for (const char* name : {"lion", "train11", "modulo12"}) {
    nova::driver::NovaOptions opts;
    auto res = nova::driver::encode_fsm(nova::bench_data::load_benchmark(name),
                                        opts);
    EXPECT_TRUE(res.success) << name;
  }
}
