// Differential tests: the word-parallel cube/cover kernels against the
// retained per-bit reference implementations in logic/ref.hpp, on
// randomized binary and multiple-valued specs whose widths cross the 64-
// and 128-bit word boundaries (1 inline word, 2 inline words, heap-backed).
// Also exercises the incremental personality cache against a from-scratch
// rebuild and the duplicate-cube filter.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "logic/cover.hpp"
#include "logic/cube.hpp"
#include "logic/ref.hpp"
#include "logic/spec.hpp"
#include "util/rng.hpp"

using namespace nova::logic;
using nova::util::Rng;

namespace {

// Specs chosen so total_bits lands below/at/above the 64- and 128-bit
// boundaries, in both flavours. MV sizes: a mix of binary and 3..5-valued
// variables; their exact widths are asserted below where they matter.
std::vector<CubeSpec> boundary_specs() {
  std::vector<CubeSpec> specs;
  for (int nvars : {4, 31, 32, 33, 63, 70}) {
    specs.push_back(CubeSpec::binary(nvars));  // 8..140 bits
  }
  specs.push_back(CubeSpec({3, 4, 2, 5, 3, 2}));                    // 19 bits
  specs.push_back(CubeSpec({5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5}));  // 60
  specs.push_back(CubeSpec({5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5,
                            5}));  // 70 bits: crosses one word
  specs.push_back(CubeSpec(std::vector<int>(43, 3)));  // 129: crosses two
  return specs;
}

Cube random_cube(const CubeSpec& spec, Rng& rng, double density) {
  Cube c(spec);
  for (int b = 0; b < spec.total_bits(); ++b) {
    if (rng.chance(density)) c.set(b);
  }
  return c;
}

Cover random_cover(const CubeSpec& spec, Rng& rng, int ncubes,
                   double density) {
  Cover f(spec);
  for (int i = 0; i < ncubes; ++i) f.add(random_cube(spec, rng, density));
  return f;
}

/// Per-bit oracle for Cube::disjoint_var (ref.hpp has no counterpart: the
/// kernel appeared together with the word-parallel rewrite).
bool ref_disjoint_var(const CubeSpec& spec, const Cube& a, const Cube& b,
                      int v) {
  for (int j = 0; j < spec.size(v); ++j) {
    int bit = spec.bit(v, j);
    if (a.get(bit) && b.get(bit)) return false;
  }
  return true;
}

}  // namespace

TEST(Kernels, UnaryOpsMatchReferenceAcrossWordBoundaries) {
  Rng rng(101);
  for (const CubeSpec& spec : boundary_specs()) {
    for (double density : {0.35, 0.8, 0.97}) {
      for (int trial = 0; trial < 30; ++trial) {
        Cube c = random_cube(spec, rng, density);
        ASSERT_EQ(c.nonempty(spec), ref::nonempty(spec, c));
        for (int v = 0; v < spec.num_vars(); ++v) {
          ASSERT_EQ(c.part_full(spec, v), ref::part_full(spec, c, v));
          ASSERT_EQ(c.part_empty(spec, v), ref::part_empty(spec, c, v));
          ASSERT_EQ(c.part_count(spec, v), ref::part_count(spec, c, v));
        }
      }
    }
  }
}

TEST(Kernels, BinaryOpsMatchReferenceAcrossWordBoundaries) {
  Rng rng(103);
  for (const CubeSpec& spec : boundary_specs()) {
    for (int trial = 0; trial < 40; ++trial) {
      Cube a = random_cube(spec, rng, 0.8);
      Cube b = random_cube(spec, rng, 0.8);
      ASSERT_EQ(a.distance(spec, b), ref::distance(spec, a, b));
      ASSERT_EQ(a.intersects(spec, b), ref::intersects(spec, a, b));
      ASSERT_EQ(a.contains(b), ref::contains(a, b));
      ASSERT_EQ(b.contains(a), ref::contains(b, a));
      for (int v = 0; v < spec.num_vars(); ++v) {
        ASSERT_EQ(a.disjoint_var(spec, b, v), ref_disjoint_var(spec, a, b, v));
      }
      Cube cof = a.cofactor(spec, b);
      Cube ref_cof = ref::cofactor(spec, a, b);
      ASSERT_TRUE(cof.raw() == ref_cof.raw());
    }
  }
}

TEST(Kernels, SetValueAndSetFullAgreeWithBitApi) {
  Rng rng(107);
  for (const CubeSpec& spec : boundary_specs()) {
    for (int trial = 0; trial < 10; ++trial) {
      int v = rng.uniform(spec.num_vars());
      int k = rng.uniform(spec.size(v));
      Cube a = random_cube(spec, rng, 0.6);
      Cube b = a;
      a.set_value(spec, v, k);
      for (int j = 0; j < spec.size(v); ++j) {
        ASSERT_EQ(a.get(spec.bit(v, j)), j == k);
      }
      b.set_full(spec, v);
      ASSERT_TRUE(b.part_full(spec, v));
      // Bits outside v are untouched by either operation.
      for (int u = 0; u < spec.num_vars(); ++u) {
        if (u == v) continue;
        for (int j = 0; j < spec.size(u); ++j) {
          int bit = spec.bit(u, j);
          ASSERT_EQ(a.get(bit), b.get(bit));
        }
      }
    }
  }
}

TEST(Kernels, TautologyMatchesReferenceOnRandomCovers) {
  Rng rng(109);
  // Small specs keep the branch-everything oracle affordable; densities are
  // chosen so both outcomes occur (sparse covers miss minterms, dense ones
  // are usually tautologies).
  std::vector<CubeSpec> specs = {CubeSpec::binary(5), CubeSpec::binary(8),
                                 CubeSpec({3, 2, 4, 2, 3}),
                                 CubeSpec({2, 3, 2, 3, 2, 2})};
  int taut = 0, non_taut = 0;
  for (const CubeSpec& spec : specs) {
    for (double density : {0.55, 0.8, 0.92}) {
      for (int trial = 0; trial < 40; ++trial) {
        Cover f = random_cover(spec, rng, 2 + rng.uniform(24), density);
        bool expected = ref::tautology(f);
        ASSERT_EQ(tautology(f), expected) << "spec bits=" << spec.total_bits()
                                          << " density=" << density
                                          << " trial=" << trial;
        (expected ? taut : non_taut)++;
      }
    }
  }
  // The sweep must exercise both branches, or the comparison proves little.
  EXPECT_GT(taut, 20);
  EXPECT_GT(non_taut, 20);
}

TEST(Kernels, ComplementPartitionsTheSpaceOnRandomCovers) {
  Rng rng(113);
  std::vector<CubeSpec> specs = {CubeSpec::binary(6), CubeSpec({3, 2, 4, 3}),
                                 CubeSpec({2, 5, 2, 3, 2})};
  for (const CubeSpec& spec : specs) {
    for (int trial = 0; trial < 25; ++trial) {
      Cover f = random_cover(spec, rng, 1 + rng.uniform(12), 0.7);
      Cover g = complement(f);
      // No overlap: a minterm covered by both would make F ∪ F' ambiguous.
      for (int i = 0; i < f.size(); ++i) {
        for (int j = 0; j < g.size(); ++j) {
          ASSERT_FALSE(ref::intersects(spec, f[i], g[j]));
        }
      }
      // Full coverage: F ∪ F' is a tautology (per the naive oracle).
      Cover both = f;
      for (int j = 0; j < g.size(); ++j) both.add(g[j]);
      ASSERT_TRUE(ref::tautology(both));
    }
  }
}

TEST(Kernels, PersonalityCacheMatchesRescanAfterMutations) {
  Rng rng(127);
  for (const CubeSpec& spec :
       {CubeSpec::binary(33), CubeSpec({3, 4, 2, 5, 3, 2})}) {
    Cover f = random_cover(spec, rng, 12, 0.8);
    // Prime the lazy caches, then mutate through add/remove and compare
    // against a cover rebuilt from scratch (whose caches are fresh).
    (void)f.nonfull_counts();
    (void)f.column_counts();
    for (int step = 0; step < 30; ++step) {
      if (f.size() > 0 && rng.chance(0.4)) {
        f.remove(rng.uniform(f.size()));
      } else {
        f.add(random_cube(spec, rng, 0.85));
      }
      Cover fresh(spec);
      for (int i = 0; i < f.size(); ++i) fresh.add(f[i]);
      ASSERT_EQ(f.nonfull_counts(), fresh.nonfull_counts()) << "step " << step;
      ASSERT_EQ(f.column_counts(), fresh.column_counts()) << "step " << step;
    }
  }
}

TEST(Kernels, DedupDropsExactDuplicatesOnly) {
  CubeSpec spec = CubeSpec::binary(40);
  Rng rng(131);
  Cover f(spec);
  std::vector<Cube> originals;
  while (static_cast<int>(originals.size()) < 10) {
    Cube c = random_cube(spec, rng, 0.9);
    if (c.nonempty(spec)) originals.push_back(c);  // add() drops empty cubes
  }
  for (const Cube& c : originals) {
    f.add(c);
    f.add(c);  // duplicate every cube
  }
  ASSERT_EQ(f.size(), 20);
  f.dedup();
  ASSERT_EQ(f.size(), 10);
  for (int i = 0; i < f.size(); ++i) {
    ASSERT_TRUE(f[i].raw() == originals[i].raw());  // keep-first, in order
  }
}
