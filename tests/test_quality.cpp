// Quality properties of the two-level minimizer: primality of expanded
// cubes, irredundancy of the final cover, and behaviour on named functions
// with known minimal covers.
#include <gtest/gtest.h>

#include "logic/espresso.hpp"
#include "util/rng.hpp"

using namespace nova::logic;
using nova::util::Rng;

namespace {

Cover from_pla(const CubeSpec& s, std::initializer_list<const char*> rows) {
  Cover c(s);
  for (const char* r : rows) {
    Cube q = Cube::full(s);
    q.set_binary_from_pla(s, 0, r);
    c.add(q);
  }
  return c;
}

Cover random_cover(int n, int ncubes, Rng& rng, double dash = 0.4) {
  CubeSpec s = CubeSpec::binary(n);
  Cover f(s);
  for (int i = 0; i < ncubes; ++i) {
    std::string row(n, '-');
    for (auto& ch : row) {
      double r = rng.uniform01();
      ch = r < dash ? '-' : (r < dash + (1 - dash) / 2 ? '0' : '1');
    }
    Cube q = Cube::full(s);
    q.set_binary_from_pla(s, 0, row);
    f.add(q);
  }
  return f;
}

}  // namespace

TEST(EspressoQuality, ExpandedCubesArePrime) {
  // Property: after espresso, no cube can have any single bit raised
  // without intersecting the off-set (i.e. every cube is prime).
  Rng rng(321);
  for (int trial = 0; trial < 20; ++trial) {
    int n = 4 + rng.uniform(3);
    Cover on = random_cover(n, 3 + rng.uniform(6), rng);
    if (on.empty()) continue;
    Cover off = complement(on);
    Cover g = espresso(on);
    for (const auto& c : g) {
      for (int b = 0; b < g.spec().total_bits(); ++b) {
        if (c.get(b)) continue;
        Cube raised = c;
        raised.set(b);
        bool hits_off = false;
        for (const auto& d : off) {
          if (raised.intersects(g.spec(), d)) {
            hits_off = true;
            break;
          }
        }
        EXPECT_TRUE(hits_off)
            << "trial " << trial << ": cube " << c.to_string(g.spec())
            << " can raise bit " << b << " -- not prime";
      }
    }
  }
}

TEST(EspressoQuality, FinalCoverIsIrredundant) {
  Rng rng(654);
  for (int trial = 0; trial < 20; ++trial) {
    int n = 4 + rng.uniform(3);
    Cover on = random_cover(n, 3 + rng.uniform(6), rng);
    if (on.empty()) continue;
    Cover g = espresso(on);
    for (int i = 0; i < g.size(); ++i) {
      Cover rest(g.spec());
      for (int j = 0; j < g.size(); ++j) {
        if (j != i) rest.add(g[j]);
      }
      EXPECT_FALSE(covers_cube(rest, g[i]))
          << "trial " << trial << ": cube " << i << " redundant";
    }
  }
}

TEST(EspressoQuality, MajorityFunctionMinimal) {
  // maj(a,b,c) = ab + ac + bc: exactly 3 prime cubes.
  CubeSpec s = CubeSpec::binary(3);
  Cover on = from_pla(s, {"110", "101", "011", "111"});
  Cover g = espresso(on);
  EXPECT_EQ(g.size(), 3);
}

TEST(EspressoQuality, FullAdderSum) {
  // sum = a xor b xor cin: 4 minterms, no merging possible.
  CubeSpec s = CubeSpec::binary(3);
  Cover on = from_pla(s, {"100", "010", "001", "111"});
  Cover g = espresso(on);
  EXPECT_EQ(g.size(), 4);
}

TEST(EspressoQuality, FullAdderCarryMultiOutput) {
  // Two outputs (sum, carry) as a characteristic function: sharing between
  // outputs must not break semantics; cube count at most 4 + 3 and at
  // least max(4, 3).
  CubeSpec s({2, 2, 2, 2});  // a, b, cin, output-id
  Cover on(s);
  auto add = [&](const char* row, int out) {
    Cube c = Cube::full(s);
    c.set_binary_from_pla(s, 0, row);
    c.set_value(s, 3, out);
    on.add(c);
  };
  for (const char* r : {"100", "010", "001", "111"}) add(r, 0);
  for (const char* r : {"110", "101", "011", "111"}) add(r, 1);  // non-min
  Cover g = espresso(on);
  EXPECT_GE(g.size(), 4);
  EXPECT_LE(g.size(), 7);
  // Exact semantics on all 8x2 points.
  for (unsigned m = 0; m < 8; ++m) {
    int a = m & 1, b = (m >> 1) & 1, cin = (m >> 2) & 1;
    bool sum = (a ^ b ^ cin) != 0;
    bool carry = (a + b + cin) >= 2;
    for (int o = 0; o < 2; ++o) {
      Cube q = Cube::full(s);
      std::string row = {char('0' + a), char('0' + b), char('0' + cin)};
      q.set_binary_from_pla(s, 0, row);
      q.set_value(s, 3, o);
      EXPECT_EQ(covers_minterm(g, q), o == 0 ? sum : carry) << m << " " << o;
    }
  }
}

TEST(EspressoQuality, DontCaresNeverAssertedUnlessUseful) {
  // A DC minterm may appear in the cover only as part of a larger cube.
  CubeSpec s = CubeSpec::binary(3);
  Cover on = from_pla(s, {"000"});
  Cover dc = from_pla(s, {"111"});
  Cover g = espresso(on, dc);
  EXPECT_EQ(g.size(), 1);
  // The isolated don't-care is useless here; the result should be exactly
  // the single on-set minterm (possibly expanded toward nothing).
  Cube q = Cube::full(s);
  q.set_binary_from_pla(s, 0, "111");
  // Asserting 111 alone gains nothing but is legal; asserting it means the
  // cube would not be the minterm 000 anymore: verify cover covers 000.
  Cube p = Cube::full(s);
  p.set_binary_from_pla(s, 0, "000");
  EXPECT_TRUE(covers_minterm(g, p));
}

TEST(EspressoQuality, ShrinkageOnRandomMintermClouds) {
  // Dense random minterm sets over few variables must compress well below
  // the input count (sanity check on overall minimization power).
  Rng rng(987);
  CubeSpec s = CubeSpec::binary(4);
  Cover on(s);
  for (unsigned m = 0; m < 16; ++m) {
    if (rng.chance(0.7)) {
      std::string row(4, '0');
      for (int i = 0; i < 4; ++i) row[i] = (m >> i) & 1 ? '1' : '0';
      Cube q = Cube::full(s);
      q.set_binary_from_pla(s, 0, row);
      on.add(q);
    }
  }
  if (on.size() >= 8) {
    Cover g = espresso(on);
    EXPECT_LT(g.size(), on.size());
  }
}

TEST(EspressoQuality, MvCoverWithLargeVariable) {
  // A 16-valued variable and a binary one; values {0..7} asserted under
  // x=0, {8..15} under x=1 -- expect exactly 2 cubes.
  CubeSpec s({2, 16});
  Cover on(s);
  for (int v = 0; v < 16; ++v) {
    Cube c = Cube::full(s);
    c.set_binary_from_pla(s, 0, v < 8 ? "0" : "1");
    c.set_value(s, 1, v);
    on.add(c);
  }
  Cover g = espresso(on);
  EXPECT_EQ(g.size(), 2);
}

TEST(EspressoQuality, IdempotentOnMinimalCover) {
  CubeSpec s = CubeSpec::binary(3);
  Cover on = from_pla(s, {"1--", "-1-"});
  Cover g1 = espresso(on);
  Cover g2 = espresso(g1);
  EXPECT_EQ(g1.size(), g2.size());
  EXPECT_TRUE(covers_cover(g1, g2));
  EXPECT_TRUE(covers_cover(g2, g1));
}
