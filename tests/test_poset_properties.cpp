// Structural invariants of the input poset on random constraint sets.
#include <gtest/gtest.h>

#include "encoding/embed.hpp"
#include "encoding/poset.hpp"
#include "util/rng.hpp"

using namespace nova::encoding;
using nova::util::BitVec;
using nova::util::Rng;

namespace {

std::vector<InputConstraint> random_ics(int n, Rng& rng, int count) {
  std::vector<InputConstraint> out;
  for (int i = 0; i < count; ++i) {
    BitVec s(n);
    for (int b = 0; b < n; ++b) {
      if (rng.chance(0.4)) s.set(b);
    }
    if (s.count() >= 2 && s.count() < n) out.push_back({s, 1});
  }
  return out;
}

}  // namespace

class PosetSweep : public testing::TestWithParam<int> {};

TEST_P(PosetSweep, StructuralInvariants) {
  Rng rng(GetParam() * 101);
  const int n = 4 + rng.uniform(8);
  auto ics = random_ics(n, rng, 2 + rng.uniform(5));
  InputGraph ig(ics, n);

  // Universe present and unique.
  EXPECT_EQ(ig.node(ig.universe()).cardinality(), n);

  for (int i = 0; i < ig.size(); ++i) {
    const auto& node = ig.node(i);
    // Fathers strictly contain the node and are minimal.
    for (int fa : node.fathers) {
      EXPECT_TRUE(ig.node(fa).set.contains(node.set));
      EXPECT_NE(ig.node(fa).set, node.set);
      for (int fb : node.fathers) {
        if (fa == fb) continue;
        // No father contains another father.
        EXPECT_FALSE(ig.node(fa).set.contains(ig.node(fb).set) &&
                     ig.node(fa).set != ig.node(fb).set);
      }
    }
    // Children relation is the inverse of fathers.
    for (int ch : node.children) {
      bool back = false;
      for (int fa : ig.node(ch).fathers) back |= fa == i;
      EXPECT_TRUE(back);
    }
    // Category definitions.
    if (i == ig.universe()) {
      EXPECT_EQ(node.category, 0);
    } else if (node.fathers.size() > 1) {
      EXPECT_EQ(node.category, 2);
      // A category-2 node equals the intersection of its fathers (closure
      // fixpoint property exploited by the embedding engine).
      BitVec m = ig.node(node.fathers[0]).set;
      for (int fa : node.fathers) m &= ig.node(fa).set;
      EXPECT_EQ(m, node.set);
    } else if (ig.node(node.fathers[0]).cardinality() == n) {
      EXPECT_EQ(node.category, 1);
    } else {
      EXPECT_EQ(node.category, 3);
    }
  }

  // Closure: all pairwise intersections of cardinality >= 2 are nodes.
  for (int i = 0; i < ig.size(); ++i) {
    for (int j = i + 1; j < ig.size(); ++j) {
      BitVec m = ig.node(i).set & ig.node(j).set;
      if (m.count() >= 2) {
        EXPECT_GE(ig.find(m), 0)
            << ig.node(i).set.to_string() << " n "
            << ig.node(j).set.to_string();
      }
    }
  }

  // mincube_dim is a true lower bound: never below ceil(log2 n), and any
  // successful exact embedding must use at least that many bits.
  int lb = mincube_dim(ig);
  EXPECT_GE(lb, min_code_length(n));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PosetSweep, testing::Range(1, 25));

TEST(PosetLowerBound, NeverExceedsExactAnswer) {
  // On instances small enough for iexact, mincube_dim <= optimal bits.
  Rng rng(4242);
  for (int trial = 0; trial < 10; ++trial) {
    int n = 4 + rng.uniform(4);
    auto ics = random_ics(n, rng, 2);
    InputGraph ig(ics, n);
    int lb = mincube_dim(ig);
    ExactOptions eo;
    eo.max_work = 500000;
    auto r = iexact_code(ig, eo);
    if (r.success) {
      EXPECT_LE(lb, r.nbits) << "trial " << trial;
    }
  }
}
