#include "encoding/analysis.hpp"

#include <gtest/gtest.h>

#include "fsm/dot_export.hpp"
#include "fsm/kiss_io.hpp"

using namespace nova;
using namespace nova::encoding;
using nova::constraints::make_constraint;

TEST(Analysis, ReportsSatisfiedAndViolated) {
  Encoding enc;
  enc.nbits = 2;
  enc.codes = {0b00, 0b01, 0b11};
  std::vector<InputConstraint> ics = {make_constraint("110", 2),
                                      make_constraint("101", 3)};
  auto rep = analyze_encoding(enc, ics);
  ASSERT_EQ(rep.constraints.size(), 2u);
  EXPECT_TRUE(rep.constraints[0].satisfied);   // 00,01 span 0x, 11 outside
  EXPECT_FALSE(rep.constraints[1].satisfied);  // 00,11 span xx, 01 inside
  ASSERT_EQ(rep.constraints[1].intruders.size(), 1u);
  EXPECT_EQ(rep.constraints[1].intruders[0], 1);
  EXPECT_EQ(rep.satisfied, 1);
  EXPECT_EQ(rep.weight_satisfied, 2);
  EXPECT_EQ(rep.weight_total, 5);
  EXPECT_EQ(rep.unused_codes, 1);
}

TEST(Analysis, DistanceHistogram) {
  Encoding enc;
  enc.nbits = 2;
  enc.codes = {0b00, 0b01, 0b11};
  auto rep = analyze_encoding(enc, {});
  // Pairs: (00,01)=1, (00,11)=2, (01,11)=1.
  ASSERT_EQ(rep.distance_histogram.size(), 3u);
  EXPECT_EQ(rep.distance_histogram[1], 2);
  EXPECT_EQ(rep.distance_histogram[2], 1);
}

TEST(Analysis, FormatMentionsViolations) {
  Encoding enc;
  enc.nbits = 2;
  enc.codes = {0b00, 0b01, 0b11};
  std::vector<InputConstraint> ics = {make_constraint("101", 1)};
  auto rep = analyze_encoding(enc, ics);
  std::string text = format_report(rep, enc, {"alpha", "beta", "gamma"});
  EXPECT_NE(text.find("VIOL"), std::string::npos);
  EXPECT_NE(text.find("beta"), std::string::npos);  // the intruder by name
}

TEST(DotExport, FsmGraph) {
  auto f = fsm::parse_kiss_string(
      ".i 1\n.o 1\n.r a\n0 a b 1\n1 b a 0\n.e\n");
  std::string dot = fsm::to_dot(f);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("\"a\" -> \"b\""), std::string::npos);
  EXPECT_NE(dot.find("peripheries=2"), std::string::npos);  // reset state
  EXPECT_NE(dot.find("0/1"), std::string::npos);
}

TEST(DotExport, CoveringDag) {
  auto f = fsm::parse_kiss_string(".i 1\n.o 1\n0 a b 1\n1 b a 0\n.e\n");
  nova::constraints::OutputCluster c;
  c.next_state = 0;
  c.weight = 3;
  c.edges = {{1, 0}};
  std::string dot = fsm::covering_dag_to_dot(f, {c});
  EXPECT_NE(dot.find("\"b\" -> \"a\""), std::string::npos);
  EXPECT_NE(dot.find("w=3"), std::string::npos);
}
