// Robustness: malformed inputs must throw cleanly (never crash), and the
// random-text fuzz sweep exercises the parsers' error paths.
#include <gtest/gtest.h>

#include "fsm/kiss_io.hpp"
#include "logic/pla_io.hpp"
#include "util/rng.hpp"

using namespace nova;
using nova::util::Rng;

TEST(Robustness, KissFuzzNeverCrashes) {
  Rng rng(20240706);
  const std::string alphabet = "01-.iosperabc*\n \t#";
  for (int trial = 0; trial < 300; ++trial) {
    std::string text;
    int len = rng.uniform(200);
    for (int i = 0; i < len; ++i)
      text += alphabet[rng.uniform(static_cast<int>(alphabet.size()))];
    try {
      auto f = fsm::parse_kiss_string(text);
      // Parsed: the result must at least be internally consistent.
      EXPECT_GE(f.num_inputs(), 0);
      for (const auto& t : f.transitions()) {
        EXPECT_EQ(static_cast<int>(t.input.size()), f.num_inputs());
        EXPECT_EQ(static_cast<int>(t.output.size()), f.num_outputs());
      }
    } catch (const std::runtime_error&) {
      // expected for garbage
    }
  }
}

TEST(Robustness, PlaFuzzNeverCrashes) {
  Rng rng(777);
  const std::string alphabet = "01-.iope\n 2~4";
  for (int trial = 0; trial < 300; ++trial) {
    std::string text;
    int len = rng.uniform(200);
    for (int i = 0; i < len; ++i)
      text += alphabet[rng.uniform(static_cast<int>(alphabet.size()))];
    try {
      auto p = logic::parse_pla_string(text);
      EXPECT_GE(p.num_inputs, 0);
    } catch (const std::runtime_error&) {
    }
  }
}

TEST(Robustness, KissStructuredMutations) {
  const std::string base =
      ".i 2\n.o 1\n.s 2\n.r a\n"
      "00 a a 0\n01 a b 1\n-- b a 0\n.e\n";
  // Deleting any single line either parses or throws; never crashes.
  size_t start = 0;
  std::vector<std::string> lines;
  while (start < base.size()) {
    size_t nl = base.find('\n', start);
    lines.push_back(base.substr(start, nl - start));
    start = nl + 1;
  }
  for (size_t skip = 0; skip < lines.size(); ++skip) {
    std::string text;
    for (size_t i = 0; i < lines.size(); ++i) {
      if (i != skip) text += lines[i] + "\n";
    }
    try {
      auto f = fsm::parse_kiss_string(text);
      (void)f.validate();
    } catch (const std::runtime_error&) {
    }
  }
}

TEST(Robustness, DeepNestingNoStackIssues) {
  // A long chain machine: parser and encoders must handle 60 states.
  std::string text = ".i 1\n.o 1\n";
  for (int i = 0; i < 60; ++i) {
    text += "1 s" + std::to_string(i) + " s" + std::to_string((i + 1) % 60) +
            " 0\n";
    text += "0 s" + std::to_string(i) + " s" + std::to_string(i) + " 1\n";
  }
  auto f = fsm::parse_kiss_string(text, "chain60");
  EXPECT_EQ(f.num_states(), 60);
  EXPECT_TRUE(f.validate().empty());
}
