// Robustness: malformed inputs must throw cleanly (never crash), and the
// random-text fuzz sweep exercises the parsers' error paths.
#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>

#include "fsm/kiss_io.hpp"
#include "logic/pla_io.hpp"
#include "nova/nova.hpp"
#include "util/rng.hpp"

using namespace nova;
using nova::util::Rng;

TEST(Robustness, KissFuzzNeverCrashes) {
  Rng rng(20240706);
  const std::string alphabet = "01-.iosperabc*\n \t#";
  for (int trial = 0; trial < 300; ++trial) {
    std::string text;
    int len = rng.uniform(200);
    for (int i = 0; i < len; ++i)
      text += alphabet[rng.uniform(static_cast<int>(alphabet.size()))];
    try {
      auto f = fsm::parse_kiss_string(text);
      // Parsed: the result must at least be internally consistent.
      EXPECT_GE(f.num_inputs(), 0);
      for (const auto& t : f.transitions()) {
        EXPECT_EQ(static_cast<int>(t.input.size()), f.num_inputs());
        EXPECT_EQ(static_cast<int>(t.output.size()), f.num_outputs());
      }
    } catch (const std::runtime_error&) {
      // expected for garbage
    }
  }
}

TEST(Robustness, PlaFuzzNeverCrashes) {
  Rng rng(777);
  const std::string alphabet = "01-.iope\n 2~4";
  for (int trial = 0; trial < 300; ++trial) {
    std::string text;
    int len = rng.uniform(200);
    for (int i = 0; i < len; ++i)
      text += alphabet[rng.uniform(static_cast<int>(alphabet.size()))];
    try {
      auto p = logic::parse_pla_string(text);
      EXPECT_GE(p.num_inputs, 0);
    } catch (const std::runtime_error&) {
    }
  }
}

TEST(Robustness, KissStructuredMutations) {
  const std::string base =
      ".i 2\n.o 1\n.s 2\n.r a\n"
      "00 a a 0\n01 a b 1\n-- b a 0\n.e\n";
  // Deleting any single line either parses or throws; never crashes.
  size_t start = 0;
  std::vector<std::string> lines;
  while (start < base.size()) {
    size_t nl = base.find('\n', start);
    lines.push_back(base.substr(start, nl - start));
    start = nl + 1;
  }
  for (size_t skip = 0; skip < lines.size(); ++skip) {
    std::string text;
    for (size_t i = 0; i < lines.size(); ++i) {
      if (i != skip) text += lines[i] + "\n";
    }
    try {
      auto f = fsm::parse_kiss_string(text);
      (void)f.validate();
    } catch (const std::runtime_error&) {
    }
  }
}

TEST(Robustness, KissHeaderCapsRejectHostileDeclarations) {
  // A declared count past the hard cap must fail fast with a clear message
  // -- long before any allocation proportional to the count happens.
  struct Case {
    const char* text;
    const char* needle;
  };
  const Case cases[] = {
      {".i 100000000\n.o 1\n0 a b 1\n", "input cap"},
      {".i 1\n.o 100000000\n0 a b 1\n", "output cap"},
      {".i 1\n.o 1\n.s 100000000\n0 a b 1\n", "state cap"},
      {".i 1\n.o 1\n.p 2000000000\n0 a b 1\n", "term cap"},
  };
  for (const auto& c : cases) {
    auto t0 = std::chrono::steady_clock::now();
    try {
      fsm::parse_kiss_string(c.text);
      FAIL() << "expected a throw for: " << c.text;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(c.needle), std::string::npos)
          << e.what();
    }
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    EXPECT_LT(secs, 1.0) << "rejection must not allocate first";
  }
}

TEST(Robustness, PlaHeaderCapsRejectHostileDeclarations) {
  try {
    logic::parse_pla_string(".i 100000000\n.o 1\n");
    FAIL() << "expected a throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("input cap"), std::string::npos)
        << e.what();
  }
  try {
    logic::parse_pla_string(".i 2\n.o 100000000\n");
    FAIL() << "expected a throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("output cap"), std::string::npos)
        << e.what();
  }
}

TEST(Robustness, SimulatePlaRejectsBadStimulusStructurally) {
  const std::string text =
      ".i 2\n.o 1\n.r a\n"
      "00 a a 0\n01 a b 1\n10 b a 0\n11 b b 1\n";
  fsm::Fsm f = fsm::parse_kiss_string(text, "tiny");
  driver::NovaOptions opts;
  driver::NovaResult r = driver::encode_fsm(f, opts);
  driver::EvalResult ev = driver::evaluate_encoding(f, r.enc);

  // Valid call works.
  EXPECT_NO_THROW(driver::simulate_pla(ev, f, "01", r.enc.codes[0]));
  // Wrong-width input vector.
  EXPECT_THROW(driver::simulate_pla(ev, f, "0", r.enc.codes[0]),
               std::invalid_argument);
  EXPECT_THROW(driver::simulate_pla(ev, f, "011", r.enc.codes[0]),
               std::invalid_argument);
  // Non-binary characters.
  EXPECT_THROW(driver::simulate_pla(ev, f, "0-", r.enc.codes[0]),
               std::invalid_argument);
  EXPECT_THROW(driver::simulate_pla(ev, f, "2x", r.enc.codes[0]),
               std::invalid_argument);
  // State code outside the encoding's bit width.
  const uint64_t too_big = uint64_t{1} << r.enc.nbits;
  EXPECT_THROW(driver::simulate_pla(ev, f, "01", too_big),
               std::invalid_argument);
}

TEST(Robustness, DeepNestingNoStackIssues) {
  // A long chain machine: parser and encoders must handle 60 states.
  std::string text = ".i 1\n.o 1\n";
  for (int i = 0; i < 60; ++i) {
    text += "1 s" + std::to_string(i) + " s" + std::to_string((i + 1) % 60) +
            " 0\n";
    text += "0 s" + std::to_string(i) + " s" + std::to_string(i) + " 1\n";
  }
  auto f = fsm::parse_kiss_string(text, "chain60");
  EXPECT_EQ(f.num_states(), 60);
  EXPECT_TRUE(f.validate().empty());
}
