// Tests of the face-embedding engine: Face algebra, pos_equiv on the
// paper's running example (3.4.2.1), iexact_code, semiexact_code.
#include "encoding/embed.hpp"

#include <gtest/gtest.h>

#include "constraints/constraints.hpp"
#include "util/rng.hpp"

using namespace nova::encoding;
using nova::constraints::make_constraint;
using nova::util::BitVec;
using nova::util::Rng;

namespace {
std::vector<InputConstraint> paper_ic() {
  return {make_constraint("1110000"), make_constraint("0111000"),
          make_constraint("0000111"), make_constraint("1000110"),
          make_constraint("0000011"), make_constraint("0011000")};
}

void expect_all_satisfied(const Encoding& enc,
                          const std::vector<InputConstraint>& ics) {
  EXPECT_TRUE(enc.injective());
  for (const auto& ic : ics) {
    EXPECT_TRUE(constraint_satisfied(enc, ic)) << ic.states.to_string();
  }
}
}  // namespace

TEST(Face, BasicAlgebra) {
  // k = 4; face x0x0 (paper notation, MSB first) = positions 3..0: x,0,x,0.
  Face f{0b0101, 0b0000};
  EXPECT_EQ(f.level(4), 2);
  EXPECT_EQ(f.to_string(4), "x0x0");
  Face g{0b0011, 0b0010};  // xx10
  EXPECT_EQ(g.to_string(4), "xx10");
  EXPECT_TRUE(f.intersects(g));
  Face i = f.intersect(g);
  EXPECT_EQ(i.to_string(4), "x010");
  Face u = Face::universe();
  EXPECT_TRUE(u.contains(f));
  EXPECT_FALSE(f.contains(u));
  EXPECT_TRUE(f.contains(Face::vertex(0b1010, 4)));
  EXPECT_FALSE(f.contains(Face::vertex(0b1011, 4)));
  EXPECT_TRUE(f.contains_code(0b0000));
  EXPECT_TRUE(f.contains_code(0b0010));   // free position 1
  EXPECT_FALSE(f.contains_code(0b0100));  // specified position 2 violated
}

TEST(Face, DisjointFaces) {
  Face a{0b0001, 0b0001};  // xxx1
  Face b{0b0001, 0b0000};  // xxx0
  EXPECT_FALSE(a.intersects(b));
  EXPECT_FALSE(a.contains(b));
}

TEST(Face, SupercubeFace) {
  auto f = supercube_face({0b0000, 0b0101}, 4);
  ASSERT_TRUE(f.has_value());
  // Codes differ in positions 0 and 2, agree (at 0) in positions 1 and 3.
  EXPECT_EQ(f->to_string(4), "0x0x");
  auto g = supercube_face({0b0110}, 4);
  EXPECT_EQ(g->to_string(4), "0110");
  EXPECT_FALSE(supercube_face({}, 4).has_value());
}

TEST(Encoding, InjectiveAndRendering) {
  Encoding e;
  e.nbits = 3;
  e.codes = {0b000, 0b101, 0b110};
  EXPECT_TRUE(e.injective());
  EXPECT_EQ(e.code_string(1), "101");
  e.codes.push_back(0b101);
  EXPECT_FALSE(e.injective());
}

TEST(Satisfaction, PaperExample311Encoding) {
  // The encoding of Fig. 1 / Example 3.1.1 (MSB-first strings).
  // f(states 1..7) = 0000, 1010, 1000, 1100, 0101, 0111, 1111.
  Encoding e;
  e.nbits = 4;
  e.codes = {0b0000, 0b1010, 0b1000, 0b1100, 0b0101, 0b0111, 0b1111};
  expect_all_satisfied(e, paper_ic());
}

TEST(Satisfaction, DetectsViolation) {
  Encoding e;
  e.nbits = 3;
  // states 0,1 span face 0xx (codes 000, 011); state 2 at 001 intrudes.
  e.codes = {0b000, 0b011, 0b001};
  BitVec ic = BitVec::from_string("110");
  EXPECT_FALSE(constraint_satisfied(e, ic));
  // Moving state 2 out of the face satisfies the constraint.
  e.codes = {0b000, 0b011, 0b100};
  EXPECT_TRUE(constraint_satisfied(e, ic));
  // A two-code face (codes differing in one position) admits no intruder.
  e.codes = {0b000, 0b010, 0b001};
  EXPECT_TRUE(constraint_satisfied(e, ic));
}

TEST(Satisfaction, Covering) {
  Encoding e;
  e.nbits = 3;
  e.codes = {0b111, 0b101, 0b101};
  EXPECT_TRUE(covering_satisfied(e, {0, 1}));
  EXPECT_FALSE(covering_satisfied(e, {1, 0}));
  EXPECT_FALSE(covering_satisfied(e, {1, 2}));  // equal codes
}

TEST(PosEquiv, PaperExampleEmbedsInFourCube) {
  InputGraph ig(paper_ic(), 7);
  // dimvect (2,2,2,2) as in Example 3.4.2.1.
  EmbedResult r = pos_equiv(ig, 4, {2, 2, 2, 2});
  ASSERT_TRUE(r.success);
  expect_all_satisfied(r.enc, paper_ic());
}

TEST(PosEquiv, InfeasibleInThreeCube) {
  InputGraph ig(paper_ic(), 7);
  EmbedResult r = pos_equiv(ig, 3, {});
  EXPECT_FALSE(r.success);
}

TEST(PosEquiv, NoConstraintsAssignsDistinctCodes) {
  InputGraph ig({}, 5);
  EmbedResult r = pos_equiv(ig, 3, {});
  ASSERT_TRUE(r.success);
  EXPECT_TRUE(r.enc.injective());
  EXPECT_EQ(r.enc.num_states(), 5);
}

TEST(PosEquiv, WorkLimitReportsExhausted) {
  InputGraph ig(paper_ic(), 7);
  EmbedOptions eo;
  eo.max_work = 3;
  EmbedResult r = pos_equiv(ig, 4, {2, 2, 2, 2}, eo);
  EXPECT_FALSE(r.success);
  EXPECT_TRUE(r.exhausted);
}

TEST(IExact, PaperExampleNeedsFourBits) {
  InputGraph ig(paper_ic(), 7);
  ExactResult r = iexact_code(ig);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.nbits, 4);
  expect_all_satisfied(r.enc, paper_ic());
}

TEST(IExact, SingleConstraintMinimumBits) {
  // 4 states, one constraint {0,1}: satisfiable in 2 bits.
  std::vector<InputConstraint> ics = {make_constraint("1100")};
  InputGraph ig(ics, 4);
  ExactResult r = iexact_code(ig);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.nbits, 2);
  expect_all_satisfied(r.enc, ics);
}

TEST(IExact, DisjointPairsInTwoBits) {
  std::vector<InputConstraint> ics = {make_constraint("1100"),
                                      make_constraint("0011")};
  InputGraph ig(ics, 4);
  ExactResult r = iexact_code(ig);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.nbits, 2);
  expect_all_satisfied(r.enc, ics);
}

TEST(IExact, OverlappingChainNeedsThreeBits) {
  // {0,1},{1,2},{2,3} over 4 states: classic case where 2 bits are not
  // enough for all three faces... verify iexact finds *some* minimal k and
  // satisfies everything.
  std::vector<InputConstraint> ics = {make_constraint("1100"),
                                      make_constraint("0110"),
                                      make_constraint("0011")};
  InputGraph ig(ics, 4);
  ExactResult r = iexact_code(ig);
  ASSERT_TRUE(r.success);
  expect_all_satisfied(r.enc, ics);
  EXPECT_LE(r.nbits, 3);
  // And 2 bits is genuinely achievable: 00,01,11,10 (Gray order).
  Encoding gray;
  gray.nbits = 2;
  gray.codes = {0b00, 0b01, 0b11, 0b10};
  for (const auto& ic : ics) EXPECT_TRUE(constraint_satisfied(gray, ic));
  EXPECT_EQ(r.nbits, 2);
}

TEST(SemiExact, SatisfiableSubset) {
  auto ics = paper_ic();
  // At the minimum length (3 bits for 7 states) not all six constraints
  // fit, but single constraints do.
  for (const auto& ic : ics) {
    EmbedResult r = semiexact_code({ic}, 7, 3);
    EXPECT_TRUE(r.success) << ic.states.to_string();
    if (r.success) expect_all_satisfied(r.enc, {ic});
  }
}

TEST(SemiExact, AllConstraintsAtFourBits) {
  EmbedResult r = semiexact_code(paper_ic(), 7, 4);
  // Minimum-level faces happen to suffice here (the paper's Example 3.4.2.1
  // succeeded with dimvect (2,2,2,2), which is the minimum-level vector).
  ASSERT_TRUE(r.success);
  expect_all_satisfied(r.enc, paper_ic());
}

TEST(SemiExact, RandomConstraintSetsAreSound) {
  // Property: whenever semiexact succeeds, its encoding satisfies every
  // requested constraint and is injective.
  Rng rng(2024);
  for (int trial = 0; trial < 40; ++trial) {
    int n = 4 + rng.uniform(6);  // 4..9 states
    int k = min_code_length(n) + rng.uniform(2);
    std::vector<InputConstraint> ics;
    int nc = 1 + rng.uniform(4);
    for (int i = 0; i < nc; ++i) {
      BitVec s(n);
      for (int b = 0; b < n; ++b) {
        if (rng.chance(0.4)) s.set(b);
      }
      if (s.count() >= 2 && s.count() < n) ics.push_back({s, 1});
    }
    EmbedOptions eo;
    eo.max_work = 30000;
    EmbedResult r = semiexact_code(ics, n, k, eo);
    if (r.success) {
      EXPECT_TRUE(r.enc.injective());
      EXPECT_EQ(r.enc.nbits, k);
      for (const auto& ic : ics) {
        EXPECT_TRUE(constraint_satisfied(r.enc, ic))
            << "trial " << trial << " " << ic.states.to_string();
      }
    }
  }
}

TEST(IExact, ExactAlwaysSatisfiableAtNStates) {
  // Sanity: any constraint set is satisfiable (1-hot always works), so
  // iexact with enough budget must succeed on small instances.
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    int n = 4 + rng.uniform(3);
    std::vector<InputConstraint> ics;
    for (int i = 0; i < 2; ++i) {
      BitVec s(n);
      for (int b = 0; b < n; ++b) {
        if (rng.chance(0.5)) s.set(b);
      }
      if (s.count() >= 2 && s.count() < n) ics.push_back({s, 1});
    }
    InputGraph ig(ics, n);
    ExactResult r = iexact_code(ig);
    EXPECT_TRUE(r.success) << "trial " << trial;
    if (r.success) expect_all_satisfied(r.enc, ics);
  }
}
