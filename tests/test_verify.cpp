// Failure paths of verify_encoding: a corrupted code or minimized cover
// must be caught, and the mismatch detail must name the offending
// transition.
#include <gtest/gtest.h>

#include "fsm/kiss_io.hpp"
#include "nova/nova.hpp"
#include "nova/verify.hpp"

using nova::driver::EvalResult;
using nova::driver::VerifyOptions;
using nova::driver::verify_encoding;
using nova::encoding::Encoding;

namespace {

nova::fsm::Fsm two_state_machine() {
  return nova::fsm::parse_kiss_string(
      ".i 1\n.o 1\n.r a\n0 a a 0\n1 a b 0\n0 b a 1\n1 b b 1\n");
}

}  // namespace

TEST(Verify, ConsistentEncodingIsEquivalent) {
  auto fsm = two_state_machine();
  Encoding enc;
  enc.nbits = 1;
  enc.codes = {0, 1};
  auto res = verify_encoding(fsm, enc);
  EXPECT_TRUE(res.equivalent) << res.detail;
  EXPECT_GT(res.steps_run, 0);
  EXPECT_TRUE(res.detail.empty());
}

TEST(Verify, CorruptedCodeBitNamesTheTransition) {
  auto fsm = two_state_machine();
  Encoding enc;
  enc.nbits = 1;
  enc.codes = {0, 1};
  EvalResult ev = nova::driver::evaluate_encoding(fsm, enc);

  // Swap the codes under the PLA's feet: the first specified step mismatches.
  Encoding corrupt = enc;
  corrupt.codes = {1, 0};
  auto res = verify_encoding(fsm, corrupt, ev);
  ASSERT_FALSE(res.equivalent);
  EXPECT_NE(res.detail.find("next-state mismatch"), std::string::npos)
      << res.detail;
  // The detail names the offending transition endpoints and both codes.
  EXPECT_NE(res.detail.find("-->"), std::string::npos) << res.detail;
  EXPECT_NE(res.detail.find("expected code"), std::string::npos) << res.detail;
  EXPECT_NE(res.detail.find("PLA produced"), std::string::npos) << res.detail;
  EXPECT_TRUE(res.detail.find(" a ") != std::string::npos ||
              res.detail.find(" b ") != std::string::npos)
      << res.detail;
}

TEST(Verify, CorruptedOutputColumnNamesOutputAndTransition) {
  auto fsm = nova::fsm::parse_kiss_string(
      ".i 1\n.o 1\n.r s\n0 s s 1\n1 s s 1\n");
  Encoding enc;
  enc.nbits = 1;
  enc.codes = {0};
  EvalResult ev = nova::driver::evaluate_encoding(fsm, enc);
  ASSERT_TRUE(verify_encoding(fsm, enc, ev).equivalent);

  // Clear the primary-output bit in every minimized cube: the PLA now
  // produces 0 where the table demands 1.
  const auto& spec = ev.spec;
  const int ov = spec.num_vars() - 1;
  for (int i = 0; i < ev.minimized.size(); ++i) {
    ev.minimized[i].clear(spec.bit(ov, enc.nbits + 0));
  }
  auto res = verify_encoding(fsm, enc, ev);
  ASSERT_FALSE(res.equivalent);
  EXPECT_NE(res.detail.find("output 0 mismatch"), std::string::npos)
      << res.detail;
  EXPECT_NE(res.detail.find("transition s"), std::string::npos) << res.detail;
  EXPECT_NE(res.detail.find("expected '1'"), std::string::npos) << res.detail;
}

TEST(Verify, DroppedTransitionCubeIsCaught) {
  auto fsm = two_state_machine();
  Encoding enc;
  enc.nbits = 1;
  enc.codes = {0, 1};
  EvalResult ev = nova::driver::evaluate_encoding(fsm, enc);
  // Empty the implementation entirely: every visited transition whose next
  // state or outputs need a 1 must now mismatch.
  ev.minimized = nova::logic::Cover(ev.spec);
  auto res = verify_encoding(fsm, enc, ev);
  EXPECT_FALSE(res.equivalent);
  EXPECT_FALSE(res.detail.empty());
}
