// Observability layer: span nesting/aggregation, counter semantics, the
// JSON writer/parser round-trip, trace-session stacking, and the
// disabled-mode zero-allocation fast path.
#include "obs/obs.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "obs/json.hpp"

// Global allocation counter: every operator new in this binary bumps it,
// letting the disabled-path test assert that instrumentation points do not
// allocate when no trace session is active.
namespace {
std::atomic<long> g_allocs{0};
}

// The replacements below pair operator new with malloc and operator delete
// with free, which is consistent — but once sanitizer instrumentation
// changes inlining, GCC pairs a caller's `new` with the inlined `free` and
// raises -Wmismatched-new-delete. Suppress the false positive.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using nova::obs::Json;
using nova::obs::Report;
using nova::obs::Span;
using nova::obs::SpanNode;
using nova::obs::TraceSession;

void spin_briefly() {
  volatile long x = 0;
  for (int i = 0; i < 20000; ++i) x = x + i;
}

TEST(Span, NestingAggregatesByNameUnderParent) {
  Report r;
  {
    TraceSession session(r);
    for (int i = 0; i < 3; ++i) {
      Span outer("outer");
      spin_briefly();
      {
        Span inner("inner");
        spin_briefly();
      }
      {
        Span inner("inner");
      }
    }
  }
  const SpanNode* outer = r.find_span("outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->count, 3);
  EXPECT_GT(outer->seconds, 0.0);
  const SpanNode* inner = r.find_span("outer/inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->count, 6);
  // "inner" only ever ran nested under "outer".
  EXPECT_EQ(r.find_span("inner"), nullptr);
  // A parent's aggregate time includes its children's.
  EXPECT_GE(outer->seconds, inner->seconds);
}

TEST(Span, RecursiveSameNameBuildsAChain) {
  Report r;
  {
    TraceSession session(r);
    Span a("f");
    Span b("f");
    Span c("f");
  }
  EXPECT_NE(r.find_span("f/f/f"), nullptr);
  EXPECT_EQ(r.find_span("f/f/f/f"), nullptr);
}

TEST(Span, OutSecondsMeasuredEvenWhenDisabled) {
  ASSERT_FALSE(nova::obs::enabled());
  double secs = 0.0;
  {
    Span span("untracked", &secs);
    spin_briefly();
  }
  EXPECT_GT(secs, 0.0);
  // Accumulates across uses of the same slot.
  double first = secs;
  {
    Span span("untracked", &secs);
    spin_briefly();
  }
  EXPECT_GT(secs, first);
}

TEST(Counter, AddAndPeakSemantics) {
  Report r;
  {
    TraceSession session(r);
    nova::obs::counter_add("adds", 2);
    nova::obs::counter_add("adds", 3);
    nova::obs::counter_add("adds");  // default +1
    nova::obs::counter_peak("peak", 10);
    nova::obs::counter_peak("peak", 4);
    nova::obs::counter_peak("peak", 12);
  }
  EXPECT_EQ(r.counter("adds"), 6);
  EXPECT_EQ(r.counter("peak"), 12);
  EXPECT_EQ(r.counter("never_touched"), 0);
  auto all = r.counters();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].first, "adds");
  EXPECT_EQ(all[1].first, "peak");
}

TEST(Session, StacksAndRestores) {
  Report outer, inner;
  EXPECT_FALSE(nova::obs::enabled());
  {
    TraceSession s1(outer);
    EXPECT_TRUE(nova::obs::enabled());
    nova::obs::counter_add("c", 1);
    {
      TraceSession s2(inner);
      nova::obs::counter_add("c", 10);
    }
    nova::obs::counter_add("c", 2);
  }
  EXPECT_FALSE(nova::obs::enabled());
  EXPECT_EQ(outer.counter("c"), 3);
  EXPECT_EQ(inner.counter("c"), 10);
}

TEST(Disabled, InstrumentationDoesNotAllocate) {
  ASSERT_FALSE(nova::obs::enabled());
  long before = g_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    Span span("hot.path");
    nova::obs::counter_add("hot.counter", i);
    nova::obs::counter_peak("hot.peak", i);
  }
  long after = g_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(before, after);
}

TEST(Report, JsonRoundTrip) {
  Report r;
  {
    TraceSession session(r);
    Span top("phase.a");
    {
      Span child("phase.b");
      nova::obs::counter_add("cubes", 42);
    }
    nova::obs::counter_add("calls", 7);
  }
  std::string text = r.to_json_string();
  std::string err;
  auto parsed = Json::parse(text, &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  EXPECT_EQ(parsed->find("version")->as_long(), 1);
  const Json* counters = parsed->find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->find("cubes")->as_long(), 42);
  EXPECT_EQ(counters->find("calls")->as_long(), 7);
  const Json* spans = parsed->find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_EQ(spans->as_array().size(), 1u);
  const Json& a = spans->as_array()[0];
  EXPECT_EQ(a.find("name")->as_string(), "phase.a");
  EXPECT_EQ(a.find("count")->as_long(), 1);
  EXPECT_GE(a.find("seconds")->as_number(), 0.0);
  const Json& b = a.find("children")->as_array()[0];
  EXPECT_EQ(b.find("name")->as_string(), "phase.b");
  // Compact and indented dumps parse to the same document.
  auto reparsed = Json::parse(parsed->dump(-1));
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(reparsed->dump(2), parsed->dump(2));
}

TEST(JsonParse, ValuesAndEscapes) {
  auto j = Json::parse(
      R"({"s":"a\"b\n\t\\","n":-1.5e2,"i":7,"b":true,"z":null,)"
      R"("arr":[1,[2,{}],"x"],"u":"Aé"})");
  ASSERT_TRUE(j.has_value());
  EXPECT_EQ(j->find("s")->as_string(), "a\"b\n\t\\");
  EXPECT_DOUBLE_EQ(j->find("n")->as_number(), -150.0);
  EXPECT_EQ(j->find("i")->as_long(), 7);
  EXPECT_TRUE(j->find("b")->as_bool());
  EXPECT_TRUE(j->find("z")->is_null());
  EXPECT_EQ(j->find("arr")->as_array().size(), 3u);
  EXPECT_EQ(j->find("u")->as_string(), "A\xc3\xa9");
}

TEST(JsonParse, RejectsMalformedDocuments) {
  std::string err;
  EXPECT_FALSE(Json::parse("{", &err).has_value());
  EXPECT_FALSE(Json::parse("[1,]").has_value());
  EXPECT_FALSE(Json::parse("{\"a\":1} trailing").has_value());
  EXPECT_FALSE(Json::parse("{\"a\" 1}").has_value());
  EXPECT_FALSE(Json::parse("\"unterminated").has_value());
  EXPECT_FALSE(Json::parse("nul").has_value());
  EXPECT_FALSE(Json::parse("").has_value());
}

TEST(JsonDump, EscapesControlCharacters) {
  Json j = Json::object();
  j.set("k", std::string("line1\nline2\x01"));
  std::string text = j.dump();
  EXPECT_NE(text.find("\\n"), std::string::npos);
  EXPECT_NE(text.find("\\u0001"), std::string::npos);
  auto back = Json::parse(text);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->find("k")->as_string(), "line1\nline2\x01");
}

}  // namespace
