// Tests of the input poset machinery against the paper's worked examples
// (3.2.1 closure and fathers, 3.3.1.1 categories, 3.3.2.2.1 mincube_dim).
#include "encoding/poset.hpp"

#include <gtest/gtest.h>

#include <set>

#include "constraints/constraints.hpp"

using namespace nova::encoding;
using nova::constraints::make_constraint;
using nova::util::BitVec;

namespace {

/// The paper's running example: IC = {1110000, 0111000, 0000111, 1000110,
/// 0000011, 0011000} over 7 states.
std::vector<InputConstraint> paper_ic() {
  return {make_constraint("1110000"), make_constraint("0111000"),
          make_constraint("0000111"), make_constraint("1000110"),
          make_constraint("0000011"), make_constraint("0011000")};
}

std::set<std::string> node_sets(const InputGraph& ig) {
  std::set<std::string> out;
  for (const auto& n : ig.nodes()) out.insert(n.set.to_string());
  return out;
}

std::set<std::string> fathers_of(const InputGraph& ig, const std::string& s) {
  int i = ig.find(BitVec::from_string(s));
  EXPECT_GE(i, 0) << s;
  std::set<std::string> out;
  for (int f : ig.node(i).fathers) out.insert(ig.node(f).set.to_string());
  return out;
}

int category_of(const InputGraph& ig, const std::string& s) {
  int i = ig.find(BitVec::from_string(s));
  EXPECT_GE(i, 0) << s;
  return ig.node(i).category;
}

}  // namespace

TEST(Poset, ClosureMatchesPaperExample321) {
  InputGraph ig(paper_ic(), 7);
  std::set<std::string> expect = {
      "1111111", "1110000", "0111000", "0000111", "1000110", "0000011",
      "0011000", "0110000", "0000110", "1000000", "0100000", "0010000",
      "0001000", "0000100", "0000010", "0000001"};
  EXPECT_EQ(node_sets(ig), expect);
  EXPECT_EQ(ig.size(), 16);
}

TEST(Poset, FathersMatchPaperExample321) {
  InputGraph ig(paper_ic(), 7);
  EXPECT_EQ(fathers_of(ig, "1110000"), std::set<std::string>{"1111111"});
  EXPECT_EQ(fathers_of(ig, "0111000"), std::set<std::string>{"1111111"});
  EXPECT_EQ(fathers_of(ig, "0000111"), std::set<std::string>{"1111111"});
  EXPECT_EQ(fathers_of(ig, "1000110"), std::set<std::string>{"1111111"});
  EXPECT_EQ(fathers_of(ig, "0011000"), std::set<std::string>{"0111000"});
  EXPECT_EQ(fathers_of(ig, "0110000"),
            (std::set<std::string>{"0111000", "1110000"}));
  EXPECT_EQ(fathers_of(ig, "0000011"), std::set<std::string>{"0000111"});
  EXPECT_EQ(fathers_of(ig, "0000110"),
            (std::set<std::string>{"0000111", "1000110"}));
  EXPECT_EQ(fathers_of(ig, "0010000"),
            (std::set<std::string>{"0011000", "0110000"}));
  EXPECT_EQ(fathers_of(ig, "0001000"), std::set<std::string>{"0011000"});
  EXPECT_EQ(fathers_of(ig, "0100000"), std::set<std::string>{"0110000"});
  EXPECT_EQ(fathers_of(ig, "0000010"),
            (std::set<std::string>{"0000011", "0000110"}));
  EXPECT_EQ(fathers_of(ig, "0000001"), std::set<std::string>{"0000011"});
  EXPECT_EQ(fathers_of(ig, "1000000"),
            (std::set<std::string>{"1110000", "1000110"}));
  // Note: the paper's printed F(0000100) = (1110000, 1000110) is
  // inconsistent with its own closure (0000110 = 0000111 n 1000110 is in V
  // and strictly between); the mathematically forced value is {0000110}.
  // The paper's own category table agrees: cat(0000100) = 3 (one father).
  EXPECT_EQ(fathers_of(ig, "0000100"), std::set<std::string>{"0000110"});
}

TEST(Poset, CategoriesMatchPaperExample3311) {
  InputGraph ig(paper_ic(), 7);
  for (const char* s : {"1110000", "0111000", "0000111", "1000110"})
    EXPECT_EQ(category_of(ig, s), 1) << s;
  for (const char* s :
       {"0000110", "0110000", "0010000", "0000010", "1000000"})
    EXPECT_EQ(category_of(ig, s), 2) << s;
  for (const char* s : {"0011000", "0000011", "0001000", "0100000",
                        "0000001", "0000100"})
    EXPECT_EQ(category_of(ig, s), 3) << s;
}

TEST(Poset, UniverseIsCategoryZero) {
  InputGraph ig(paper_ic(), 7);
  EXPECT_EQ(ig.node(ig.universe()).category, 0);
  EXPECT_TRUE(ig.node(ig.universe()).fathers.empty());
}

TEST(Poset, SingletonLookup) {
  InputGraph ig(paper_ic(), 7);
  for (int s = 0; s < 7; ++s) {
    const auto& n = ig.node(ig.singleton(s));
    EXPECT_EQ(n.cardinality(), 1);
    EXPECT_TRUE(n.set.get(s));
  }
}

TEST(Poset, PrimariesSortedByCardinality) {
  InputGraph ig(paper_ic(), 7);
  const auto& p = ig.primaries();
  ASSERT_EQ(p.size(), 4u);  // the four 3-state constraints
  for (size_t i = 1; i < p.size(); ++i) {
    EXPECT_GE(ig.node(p[i - 1]).cardinality(), ig.node(p[i]).cardinality());
  }
}

TEST(Poset, MincubeDimMatchesPaperExample33221) {
  InputGraph ig(paper_ic(), 7);
  // count_cond1/2 give 3; the virtual-state argument (cond3) forces 4.
  EXPECT_EQ(mincube_dim(ig), 4);
}

TEST(Poset, MincubeDimTrivial) {
  // No constraints: just ceil(log2(n)).
  InputGraph ig({}, 8);
  EXPECT_EQ(mincube_dim(ig), 3);
  InputGraph ig5({}, 5);
  EXPECT_EQ(mincube_dim(ig5), 3);
  InputGraph ig2({}, 2);
  EXPECT_EQ(mincube_dim(ig2), 1);
}

TEST(Poset, TrivialConstraintsIgnored) {
  std::vector<InputConstraint> ics = {make_constraint("1111"),  // universe
                                      make_constraint("1000")}; // singleton
  InputGraph ig(ics, 4);
  // Only universe + 4 singletons.
  EXPECT_EQ(ig.size(), 5);
}

TEST(Poset, MinLevel) {
  PosetNode n;
  n.set = BitVec::from_string("1110000");
  EXPECT_EQ(n.min_level(), 2);
  n.set = BitVec::from_string("1100000");
  EXPECT_EQ(n.min_level(), 1);
  n.set = BitVec::from_string("1111100");
  EXPECT_EQ(n.min_level(), 3);
  n.set = BitVec::from_string("1000000");
  EXPECT_EQ(n.min_level(), 0);
}

TEST(Poset, ClosureIsFixpoint) {
  // Intersections of intersections must also be present.
  std::vector<InputConstraint> ics = {
      make_constraint("111100"), make_constraint("011110"),
      make_constraint("001111")};
  InputGraph ig(ics, 6);
  // 111100 n 011110 = 011100; 011100 n 001111 = 001100; all present.
  EXPECT_GE(ig.find(BitVec::from_string("011100")), 0);
  EXPECT_GE(ig.find(BitVec::from_string("001110")), 0);
  EXPECT_GE(ig.find(BitVec::from_string("001100")), 0);
}
