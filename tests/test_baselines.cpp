#include "encoding/baselines.hpp"

#include <gtest/gtest.h>

#include "fsm/kiss_io.hpp"
#include "util/rng.hpp"

using namespace nova::encoding;
using nova::constraints::make_constraint;
using nova::util::BitVec;
using nova::util::Rng;

namespace {
const char* kSmall =
    ".i 1\n.o 1\n"
    "0 a a 0\n"
    "1 a b 0\n"
    "0 b c 1\n"
    "1 b a 1\n"
    "0 c c 1\n"
    "1 c d 0\n"
    "0 d a 1\n"
    "1 d b 0\n"
    ".e\n";
}  // namespace

TEST(RandomEncoding, InjectiveAndInRange) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    int n = 2 + rng.uniform(20);
    int k = min_code_length(n) + rng.uniform(3);
    Encoding e = random_encoding(n, k, rng);
    EXPECT_TRUE(e.injective());
    EXPECT_EQ(e.nbits, k);
    for (uint64_t c : e.codes) EXPECT_LT(c, uint64_t{1} << k);
  }
}

TEST(RandomEncoding, WidePathInjective) {
  Rng rng(4);
  Encoding e = random_encoding(50, 25, rng);
  EXPECT_TRUE(e.injective());
}

TEST(RandomEncoding, Deterministic) {
  Rng a(9), b(9);
  Encoding ea = random_encoding(10, 4, a);
  Encoding eb = random_encoding(10, 4, b);
  EXPECT_EQ(ea.codes, eb.codes);
}

TEST(KissCode, SatisfiesAllConstraints) {
  Rng rng(41);
  for (int trial = 0; trial < 20; ++trial) {
    int n = 4 + rng.uniform(8);
    std::vector<InputConstraint> ics;
    for (int i = 0; i < 6; ++i) {
      BitVec s(n);
      for (int b = 0; b < n; ++b) {
        if (rng.chance(0.35)) s.set(b);
      }
      if (s.count() >= 2 && s.count() < n) ics.push_back({s, 1});
    }
    KissResult r = kiss_code(ics, n);
    EXPECT_TRUE(r.all_satisfied) << "trial " << trial;
    EXPECT_TRUE(r.enc.injective());
    for (const auto& ic : ics) {
      EXPECT_TRUE(constraint_satisfied(r.enc, ic)) << "trial " << trial;
    }
    EXPECT_GE(r.nbits, min_code_length(n));
  }
}

TEST(KissCode, NoConstraintsUsesMinimumLength) {
  KissResult r = kiss_code({}, 6);
  EXPECT_TRUE(r.all_satisfied);
  EXPECT_EQ(r.nbits, 3);
}

TEST(Mustang, WeightsSymmetricNonnegative) {
  auto f = nova::fsm::parse_kiss_string(kSmall, "small");
  for (auto variant : {MustangVariant::kFanout, MustangVariant::kFanin}) {
    auto w = mustang_weights(f, variant);
    int n = f.num_states();
    for (int u = 0; u < n; ++u) {
      EXPECT_EQ(w[u][u], 0);
      for (int v = 0; v < n; ++v) {
        EXPECT_EQ(w[u][v], w[v][u]);
        EXPECT_GE(w[u][v], 0);
      }
    }
  }
}

TEST(Mustang, FanoutRewardsCommonNextState) {
  // a and b both go to c on some input; their weight must be positive.
  nova::fsm::Fsm f(1, 0);
  f.add_transition("1", "a", "c", "");
  f.add_transition("1", "b", "c", "");
  f.add_transition("0", "c", "a", "");
  auto w = mustang_weights(f, MustangVariant::kFanout);
  int a = *f.find_state("a"), b = *f.find_state("b");
  EXPECT_GT(w[a][b], 0);
}

TEST(Mustang, FaninRewardsCommonPredecessor) {
  nova::fsm::Fsm f(1, 0);
  f.add_transition("0", "p", "u", "");
  f.add_transition("1", "p", "v", "");
  f.add_transition("-", "u", "p", "");
  f.add_transition("-", "v", "p", "");
  auto w = mustang_weights(f, MustangVariant::kFanin);
  int u = *f.find_state("u"), v = *f.find_state("v");
  EXPECT_GT(w[u][v], 0);
}

TEST(Mustang, EncodingInjectiveAndImproves) {
  auto f = nova::fsm::parse_kiss_string(kSmall, "small");
  Rng rng(11);
  Encoding e = mustang_code(f, 2, MustangVariant::kFanout, rng);
  EXPECT_TRUE(e.injective());
  EXPECT_EQ(e.nbits, 2);
  // Hill-climbed cost must not exceed the average random cost.
  auto w = mustang_weights(f, MustangVariant::kFanout);
  long mcost = weighted_hamming_cost(e, w);
  long rcost = 0;
  int trials = 20;
  Rng rng2(12);
  for (int i = 0; i < trials; ++i) {
    Encoding r = random_encoding(f.num_states(), 2, rng2);
    rcost += weighted_hamming_cost(r, w);
  }
  EXPECT_LE(mcost, rcost / trials);
}

TEST(Mustang, LargerStateCount) {
  // 10-state ring; fanin/fanout weights and the embedding must stay sane.
  nova::fsm::Fsm f(1, 1);
  for (int i = 0; i < 10; ++i) {
    std::string cur = "s" + std::to_string(i);
    std::string nxt = "s" + std::to_string((i + 1) % 10);
    f.add_transition("1", cur, nxt, i % 2 ? "1" : "0");
    f.add_transition("0", cur, cur, "0");
  }
  Rng rng(21);
  for (auto variant : {MustangVariant::kFanout, MustangVariant::kFanin}) {
    Encoding e = mustang_code(f, 4, variant, rng);
    EXPECT_TRUE(e.injective());
    EXPECT_EQ(e.nbits, 4);
  }
}
