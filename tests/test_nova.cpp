// End-to-end driver tests: encoded-PLA construction, minimization, area,
// and functional equivalence of the encoded implementation with the FSM.
#include "nova/nova.hpp"

#include <gtest/gtest.h>

#include "bench_data/benchmarks.hpp"
#include "fsm/kiss_io.hpp"
#include "util/rng.hpp"

using namespace nova::driver;
using nova::bench_data::load_benchmark;
using nova::util::Rng;

namespace {

/// Random-walk functional equivalence: drive FSM and encoded PLA together.
void check_equivalence(const nova::fsm::Fsm& f, const Encoding& enc,
                       const EvalResult& ev, int steps, uint64_t seed) {
  Rng rng(seed);
  int state = f.reset_state();
  for (int i = 0; i < steps; ++i) {
    std::string in(f.num_inputs(), '0');
    for (auto& c : in) c = rng.chance(0.5) ? '1' : '0';
    auto ref = f.step(state, in);
    if (!ref || ref->first < 0) {
      state = f.reset_state();
      continue;  // unspecified: any implementation behaviour is legal
    }
    std::string got = simulate_pla(ev, f, in, enc.codes[state]);
    // Next-state code must match exactly.
    uint64_t ncode = 0;
    for (int b = 0; b < enc.nbits; ++b) {
      if (got[b] == '1') ncode |= uint64_t{1} << b;
    }
    EXPECT_EQ(ncode, enc.codes[ref->first])
        << "step " << i << " state " << f.state_name(state) << " in " << in;
    // Specified outputs must match; '-' outputs are free.
    for (int j = 0; j < f.num_outputs(); ++j) {
      if (ref->second[j] != '-') {
        EXPECT_EQ(got[enc.nbits + j], ref->second[j])
            << "output " << j << " step " << i;
      }
    }
    state = ref->first;
  }
}

}  // namespace

TEST(PlaArea, Formula) {
  // (2*(#in + #bits) + #bits + #out) * #cubes -- spot values from Table III.
  EXPECT_EQ(pla_area(7, 5, 2, 48), 1488);   // keyb
  EXPECT_EQ(pla_area(7, 6, 19, 86), 4386);  // planet
  EXPECT_EQ(pla_area(2, 3, 2, 8), 120);     // bbtas
}

TEST(Evaluate, ShiftregIsTiny) {
  auto f = load_benchmark("shiftreg");
  // The natural 3-bit shift encoding: state index = register contents.
  Encoding enc;
  enc.nbits = 3;
  enc.codes = {0, 1, 2, 3, 4, 5, 6, 7};
  EvalResult ev = evaluate_encoding(f, enc);
  // next = (in, b2, b1), out = b0: 4 cubes suffice (one per output bit of
  // {n2,n1,n0,out}); espresso should get close.
  EXPECT_LE(ev.metrics.cubes, 6);
  check_equivalence(f, enc, ev, 200, 1);
}

TEST(Evaluate, EquivalenceAcrossAlgorithms) {
  for (const char* name : {"lion", "bbtas", "dk27", "train11"}) {
    auto f = load_benchmark(name);
    for (auto alg : {Algorithm::kIHybrid, Algorithm::kIGreedy,
                     Algorithm::kRandom, Algorithm::kMustangFanout}) {
      NovaOptions opts;
      opts.algorithm = alg;
      NovaResult r = encode_fsm(f, opts);
      ASSERT_TRUE(r.success);
      EXPECT_TRUE(r.enc.injective()) << name;
      EvalResult ev = evaluate_encoding(f, r.enc);
      EXPECT_EQ(ev.metrics.cubes, r.metrics.cubes);
      check_equivalence(f, r.enc, ev, 150, 7);
    }
  }
}

TEST(Evaluate, IoHybridEquivalence) {
  for (const char* name : {"lion", "bbtas", "modulo12"}) {
    auto f = load_benchmark(name);
    NovaOptions opts;
    opts.algorithm = Algorithm::kIoHybrid;
    NovaResult r = encode_fsm(f, opts);
    EvalResult ev = evaluate_encoding(f, r.enc);
    check_equivalence(f, r.enc, ev, 150, 9);
  }
}

TEST(Evaluate, AreaMatchesComponents) {
  auto f = load_benchmark("lion");
  NovaOptions opts;
  NovaResult r = encode_fsm(f, opts);
  EXPECT_EQ(r.metrics.area,
            pla_area(f.num_inputs(), r.metrics.nbits, f.num_outputs(),
                     r.metrics.cubes));
}

TEST(Evaluate, OneHotMetrics) {
  auto f = load_benchmark("shiftreg");
  PlaMetrics m = one_hot_metrics(f);
  EXPECT_EQ(m.nbits, 8);
  EXPECT_GT(m.cubes, 0);
  // 1-hot cube count is at most the number of rows.
  EXPECT_LE(m.cubes, f.num_transitions());
}

TEST(Evaluate, HybridBeatsOrMatchesRandomOnAverage) {
  // The headline qualitative claim, on small machines: NOVA's ihybrid area
  // is no worse than the average of random encodings.
  for (const char* name : {"bbtas", "dk27", "train11"}) {
    auto f = load_benchmark(name);
    NovaOptions hopts;
    hopts.algorithm = Algorithm::kIHybrid;
    NovaResult h = encode_fsm(f, hopts);
    long rand_total = 0;
    const int kTrials = 5;
    for (int t = 0; t < kTrials; ++t) {
      NovaOptions ropts;
      ropts.algorithm = Algorithm::kRandom;
      ropts.seed = 100 + t;
      rand_total += encode_fsm(f, ropts).metrics.area;
    }
    EXPECT_LE(h.metrics.area, rand_total / kTrials) << name;
  }
}

TEST(Evaluate, PerOutputSops) {
  auto f = load_benchmark("lion");
  NovaResult r = encode_fsm(f, {});
  EvalResult ev = evaluate_encoding(f, r.enc);
  auto sops = per_output_sops(ev, r.metrics.nbits + f.num_outputs());
  ASSERT_EQ(sops.size(), static_cast<size_t>(r.metrics.nbits + 1));
  int total = 0;
  for (const auto& s : sops) total += static_cast<int>(s.size());
  EXPECT_GT(total, 0);
}

TEST(Evaluate, SatisfactionStatsReported) {
  auto f = load_benchmark("train11");
  NovaOptions opts;
  opts.algorithm = Algorithm::kIHybrid;
  NovaResult r = encode_fsm(f, opts);
  EXPECT_GE(r.constraints_total, r.constraints_satisfied);
  EXPECT_GE(r.weight_satisfied, 0);
}

TEST(Evaluate, KissSatisfiesEverything) {
  auto f = load_benchmark("bbtas");
  NovaOptions opts;
  opts.algorithm = Algorithm::kKiss;
  NovaResult r = encode_fsm(f, opts);
  EXPECT_EQ(r.constraints_satisfied, r.constraints_total);
}

TEST(Trace, TracedRunReportsSpansAndCounters) {
  auto f = load_benchmark("train11");
  NovaOptions opts;
  opts.algorithm = Algorithm::kIHybrid;
  opts.trace = true;
  NovaResult r = encode_fsm(f, opts);
  ASSERT_TRUE(r.success);
  ASSERT_NE(r.report, nullptr);

  // The hot layers left their marks.
  EXPECT_GT(r.report->counter("espresso.calls"), 0);
  EXPECT_GT(r.report->counter("espresso.iterations"), 0);
  EXPECT_GT(r.report->counter("espresso.expand_calls"), 0);
  EXPECT_GT(r.report->counter("logic.complement_calls"), 0);
  EXPECT_GT(r.report->counter("embed.work"), 0);
  EXPECT_GT(r.report->counter("embed.nodes_visited"), 0);
  EXPECT_GT(r.report->counter("embed.backtracks"), 0);
  EXPECT_GT(r.report->counter("constraints.normalized"), 0);

  // Pipeline phases appear as nested spans under nova.run.
  ASSERT_NE(r.report->find_span("nova.run"), nullptr);
  EXPECT_NE(r.report->find_span("nova.run/nova.extract"), nullptr);
  EXPECT_NE(
      r.report->find_span("nova.run/nova.extract/constraints.extract"),
      nullptr);
  EXPECT_NE(r.report->find_span(
                "nova.run/nova.extract/constraints.extract/"
                "constraints.minimize"),
            nullptr);
  EXPECT_NE(r.report->find_span("nova.run/nova.embed"), nullptr);
  EXPECT_NE(r.report->find_span("nova.run/nova.final"), nullptr);

  // Per-phase seconds are populated and consistent with the lump total.
  EXPECT_GT(r.phases.total, 0.0);
  EXPECT_GT(r.phases.extract, 0.0);
  EXPECT_GT(r.phases.final_espresso, 0.0);
  EXPECT_LE(r.phases.extract + r.phases.embed + r.phases.polish +
                r.phases.final_espresso,
            r.phases.total);
  EXPECT_DOUBLE_EQ(r.seconds, r.phases.total);

  // dump_report emits parseable JSON with the trace attached.
  std::string err;
  auto j = nova::obs::Json::parse(dump_report(r), &err);
  ASSERT_TRUE(j.has_value()) << err;
  const auto* trace = j->find("trace");
  ASSERT_NE(trace, nullptr);
  EXPECT_NE(trace->find("counters"), nullptr);
  EXPECT_NE(trace->find("spans"), nullptr);
  EXPECT_EQ(j->find("metrics")->find("cubes")->as_long(), r.metrics.cubes);
}

TEST(Trace, UntracedRunStillReportsPhaseSeconds) {
  auto f = load_benchmark("lion");
  NovaOptions opts;
  opts.trace = false;
  NovaResult r = encode_fsm(f, opts);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.report, nullptr);
  EXPECT_GT(r.phases.total, 0.0);
  EXPECT_GT(r.phases.final_espresso, 0.0);
  EXPECT_DOUBLE_EQ(r.seconds, r.phases.total);
  // dump_report degrades gracefully: trace is null, document still valid.
  auto j = nova::obs::Json::parse(dump_report(r));
  ASSERT_TRUE(j.has_value());
  EXPECT_TRUE(j->find("trace")->is_null());
}

TEST(BenchData, Table1Shape) {
  const auto& t = nova::bench_data::table1_benchmarks();
  EXPECT_EQ(t.size(), 30u);
  // Ordered by increasing number of states (paper figure order).
  for (size_t i = 1; i < t.size(); ++i)
    EXPECT_LE(t[i - 1].states, t[i].states);
}

TEST(BenchData, AllBenchmarksLoadAndValidate) {
  for (const auto& b : nova::bench_data::table1_benchmarks()) {
    auto f = load_benchmark(b.name);
    EXPECT_EQ(f.num_inputs(), b.inputs) << b.name;
    EXPECT_EQ(f.num_outputs(), b.outputs) << b.name;
    EXPECT_EQ(f.num_states(), b.states) << b.name;
    EXPECT_LE(f.num_transitions(), b.terms) << b.name;
    for (const auto& issue : f.validate()) {
      EXPECT_NE(issue.kind, nova::fsm::Fsm::ValidationIssue::kNondeterministic)
          << b.name << ": " << issue.detail;
    }
  }
  for (const auto& b : nova::bench_data::table5_extras()) {
    auto f = load_benchmark(b.name);
    EXPECT_EQ(f.num_states(), b.states) << b.name;
  }
}

TEST(BenchData, GeneratorDeterministic) {
  auto a = nova::bench_data::generate_structured_fsm("x", 3, 2, 9, 40, 42);
  auto b = nova::bench_data::generate_structured_fsm("x", 3, 2, 9, 40, 42);
  EXPECT_EQ(nova::fsm::write_kiss_string(a), nova::fsm::write_kiss_string(b));
  auto c = nova::bench_data::generate_structured_fsm("x", 3, 2, 9, 40, 43);
  EXPECT_NE(nova::fsm::write_kiss_string(a), nova::fsm::write_kiss_string(c));
}

TEST(BenchData, UnknownNameThrows) {
  EXPECT_THROW(load_benchmark("nosuch"), std::runtime_error);
}
