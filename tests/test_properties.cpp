// Parameterized property sweeps (TEST_P) over problem sizes and seeds:
// the library's core invariants checked across a grid of configurations.
#include <gtest/gtest.h>

#include "encoding/baselines.hpp"
#include "encoding/embed.hpp"
#include "encoding/hybrid.hpp"
#include "encoding/polish.hpp"
#include "logic/espresso.hpp"
#include "logic/exact.hpp"
#include "util/rng.hpp"

using namespace nova;
using namespace nova::encoding;
using nova::util::BitVec;
using nova::util::Rng;

// ---------------------------------------------------------------- encoders
struct EncConfig {
  int num_states;
  int extra_bits;
  uint64_t seed;
};

class EncoderSweep : public testing::TestWithParam<EncConfig> {
 protected:
  std::vector<InputConstraint> random_constraints(int n, Rng& rng, int count) {
    std::vector<InputConstraint> out;
    for (int i = 0; i < count; ++i) {
      BitVec s(n);
      for (int b = 0; b < n; ++b) {
        if (rng.chance(0.35)) s.set(b);
      }
      if (s.count() >= 2 && s.count() < n)
        out.push_back({s, 1 + rng.uniform(5)});
    }
    return out;
  }
};

TEST_P(EncoderSweep, IHybridInvariants) {
  auto [n, extra, seed] = GetParam();
  Rng rng(seed);
  auto ics = random_constraints(n, rng, 6);
  HybridOptions ho;
  ho.nbits = min_code_length(n) + extra;
  auto r = ihybrid_code(ics, n, ho);
  EXPECT_TRUE(r.enc.injective());
  EXPECT_EQ(r.enc.num_states(), n);
  EXPECT_LE(r.enc.nbits, ho.nbits);
  // Reported SIC/RIC sets must be accurate and form a partition.
  EXPECT_EQ(r.sic.size() + r.ric.size(), ics.size());
  for (const auto& ic : r.sic) EXPECT_TRUE(constraint_satisfied(r.enc, ic));
  for (const auto& ic : r.ric) EXPECT_FALSE(constraint_satisfied(r.enc, ic));
}

TEST_P(EncoderSweep, IGreedyInvariants) {
  auto [n, extra, seed] = GetParam();
  Rng rng(seed ^ 0xabcdef);
  auto ics = random_constraints(n, rng, 6);
  auto r = igreedy_code(ics, n, min_code_length(n) + extra);
  EXPECT_TRUE(r.enc.injective());
  EXPECT_EQ(r.satisfied + r.unsatisfied, static_cast<int>(ics.size()));
}

TEST_P(EncoderSweep, PolishMonotone) {
  auto [n, extra, seed] = GetParam();
  Rng rng(seed ^ 0x123456);
  auto ics = random_constraints(n, rng, 8);
  Encoding enc = random_encoding(n, min_code_length(n) + extra, rng);
  auto before = summarize_satisfaction(enc, ics);
  polish_encoding(enc, ics);
  auto after = summarize_satisfaction(enc, ics);
  EXPECT_GE(after.weight_satisfied, before.weight_satisfied);
  EXPECT_TRUE(enc.injective());
}

TEST_P(EncoderSweep, ProjectionChainSatisfiesEverything) {
  auto [n, extra, seed] = GetParam();
  (void)extra;
  Rng rng(seed ^ 0x777);
  auto ics = random_constraints(n, rng, 5);
  Encoding enc = random_encoding(n, min_code_length(n), rng);
  std::vector<InputConstraint> sic, ric = ics;
  // Sweep already-satisfied ones into SIC first (project_code contract).
  for (auto it = ric.begin(); it != ric.end();) {
    if (constraint_satisfied(enc, *it)) {
      sic.push_back(*it);
      it = ric.erase(it);
    } else {
      ++it;
    }
  }
  int guard = 0;
  while (!ric.empty() && guard++ < 40) enc = project_code(enc, sic, ric);
  EXPECT_TRUE(ric.empty());
  for (const auto& ic : ics) EXPECT_TRUE(constraint_satisfied(enc, ic));
  EXPECT_TRUE(enc.injective());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EncoderSweep,
    testing::Values(EncConfig{4, 0, 1}, EncConfig{5, 0, 2},
                    EncConfig{6, 1, 3}, EncConfig{7, 0, 4},
                    EncConfig{8, 1, 5}, EncConfig{9, 0, 6},
                    EncConfig{10, 1, 7}, EncConfig{12, 0, 8},
                    EncConfig{14, 1, 9}, EncConfig{16, 0, 10}),
    [](const testing::TestParamInfo<EncConfig>& i) {
      return "n" + std::to_string(i.param.num_states) + "e" +
             std::to_string(i.param.extra_bits) + "s" +
             std::to_string(i.param.seed);
    });

// ---------------------------------------------------------------- espresso
struct MinConfig {
  int vars;
  int cubes;
  uint64_t seed;
};

class EspressoSweep : public testing::TestWithParam<MinConfig> {};

TEST_P(EspressoSweep, EquivalentAndNearOptimal) {
  auto [nv, nc, seed] = GetParam();
  Rng rng(seed);
  logic::CubeSpec spec = logic::CubeSpec::binary(nv);
  logic::Cover on(spec);
  for (int i = 0; i < nc; ++i) {
    std::string row(nv, '-');
    for (auto& ch : row) {
      int r = rng.uniform(3);
      ch = r == 0 ? '0' : (r == 1 ? '1' : '-');
    }
    logic::Cube q = logic::Cube::full(spec);
    q.set_binary_from_pla(spec, 0, row);
    on.add(q);
  }
  if (on.empty()) GTEST_SKIP();
  logic::Cover g = logic::espresso(on);
  auto ex = logic::exact_minimize(on);
  ASSERT_TRUE(ex.optimal);
  EXPECT_GE(g.size(), ex.cover.size());
  // The heuristic should be within one cube of optimal at these sizes.
  EXPECT_LE(g.size(), ex.cover.size() + 1);
  // Semantic equivalence via mutual coverage.
  EXPECT_TRUE(logic::covers_cover(g, ex.cover));
  EXPECT_TRUE(logic::covers_cover(ex.cover, g));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EspressoSweep,
    testing::Values(MinConfig{3, 3, 11}, MinConfig{3, 6, 12},
                    MinConfig{4, 4, 13}, MinConfig{4, 8, 14},
                    MinConfig{5, 5, 15}, MinConfig{5, 10, 16},
                    MinConfig{6, 6, 17}, MinConfig{6, 12, 18}),
    [](const testing::TestParamInfo<MinConfig>& i) {
      return "v" + std::to_string(i.param.vars) + "c" +
             std::to_string(i.param.cubes) + "s" +
             std::to_string(i.param.seed);
    });

// ------------------------------------------------------------- embeddings
class DimensionSweep : public testing::TestWithParam<int> {};

TEST_P(DimensionSweep, SingleConstraintAlwaysEmbedsWithSlack) {
  const int n = GetParam();
  Rng rng(n * 31);
  BitVec s(n);
  for (int b = 0; b < n; ++b) {
    if (rng.chance(0.5)) s.set(b);
  }
  if (s.count() < 2 || s.count() >= n) GTEST_SKIP();
  std::vector<InputConstraint> ics = {{s, 1}};
  // One extra dimension beyond the constraint's own need always suffices.
  int minlev = 0;
  while ((1 << minlev) < s.count()) ++minlev;
  int k = std::max(min_code_length(n), minlev) + 1;
  EmbedOptions eo;
  eo.max_work = 500000;
  EmbedResult r = semiexact_code(ics, n, k, eo);
  ASSERT_TRUE(r.success) << "n=" << n << " k=" << k;
  EXPECT_TRUE(constraint_satisfied(r.enc, ics[0]));
}

INSTANTIATE_TEST_SUITE_P(Grid, DimensionSweep,
                         testing::Range(4, 17));
