#include "logic/pla_io.hpp"

#include <gtest/gtest.h>

#include "logic/espresso.hpp"

using namespace nova::logic;

namespace {
const char* kSample =
    "# a comment\n"
    ".i 3\n"
    ".o 2\n"
    ".ilb a b c\n"
    ".ob f g\n"
    ".p 4\n"
    "0-1 10\n"
    "11- 01\n"
    "000 1-\n"
    "--- 00\n"
    ".e\n";
}  // namespace

TEST(PlaIo, ParseBasics) {
  Pla p = parse_pla_string(kSample);
  EXPECT_EQ(p.num_inputs, 3);
  EXPECT_EQ(p.num_outputs, 2);
  EXPECT_EQ(p.input_labels.size(), 3u);
  EXPECT_EQ(p.output_labels[1], "g");
  // The all-zero-output row asserts nothing: 3 on-cubes, 1 dc-cube.
  EXPECT_EQ(p.on.size(), 3);
  EXPECT_EQ(p.dc.size(), 1);
}

TEST(PlaIo, InferDimensionsFromRows) {
  Pla p = parse_pla_string("01 1\n10 1\n");
  EXPECT_EQ(p.num_inputs, 2);
  EXPECT_EQ(p.num_outputs, 1);
  EXPECT_EQ(p.on.size(), 2);
}

TEST(PlaIo, RoundTrip) {
  Pla p = parse_pla_string(kSample);
  std::string text = write_pla_string(p);
  Pla q = parse_pla_string(text);
  EXPECT_EQ(q.num_inputs, p.num_inputs);
  EXPECT_EQ(q.num_outputs, p.num_outputs);
  EXPECT_EQ(q.on.size(), p.on.size());
  EXPECT_EQ(q.dc.size(), p.dc.size());
  // Semantic identity of the on-sets.
  EXPECT_TRUE(covers_cover(q.on, p.on));
  EXPECT_TRUE(covers_cover(p.on, q.on));
}

TEST(PlaIo, WidthMismatchRejected) {
  EXPECT_THROW(parse_pla_string(".i 3\n.o 1\n01 1\n"), std::runtime_error);
  EXPECT_THROW(parse_pla_string(".i 2\n.o 2\n01 1\n"), std::runtime_error);
}

TEST(PlaIo, BadOutputCharRejected) {
  EXPECT_THROW(parse_pla_string(".i 1\n.o 1\n0 x\n"), std::runtime_error);
}

TEST(PlaIo, MinimizeParsedPla) {
  // The classic: f = a'b + ab + a'b' minimizes to b + a' (2 cubes).
  Pla p = parse_pla_string(
      ".i 2\n.o 1\n"
      "01 1\n"
      "11 1\n"
      "00 1\n"
      ".e\n");
  Cover g = espresso(p.on, p.dc);
  EXPECT_EQ(g.size(), 2);
}

TEST(PlaIo, EmptyPla) {
  Pla p = parse_pla_string(".i 2\n.o 1\n.e\n");
  EXPECT_TRUE(p.on.empty());
  std::string text = write_pla_string(p);
  EXPECT_NE(text.find(".i 2"), std::string::npos);
}
