// The lint engine behind the nova_check CLI: KISS2, PLA, and encoding
// diagnostics, JSON rendering, and lint-cleanliness of the bundled corpus.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "bench_data/benchmarks.hpp"
#include "check/lint.hpp"
#include "fsm/kiss_io.hpp"
#include "obs/json.hpp"

namespace check = nova::check;
using check::LintResult;
using check::Severity;

namespace {

std::set<std::string> ids_of(const LintResult& r) {
  std::set<std::string> ids;
  for (const auto& d : r.diags) ids.insert(d.id);
  return ids;
}

const char* kBadKiss = R"(# deliberately broken
.i 2
.o 1
.s 4
.p 9
.r start
1- start run 0
1- start stop 1
0x start start 0
01 start run
00 start start 0
-- run run 0
-- run run 0
11 stop stop 2
-- ghost stop 0
.e
)";

}  // namespace

TEST(LintKiss, CleanMachineHasNoDiagnostics) {
  const char* text = R"(.i 1
.o 1
.s 2
.p 4
.r a
0 a a 0
1 a b 0
0 b a 1
1 b b 1
.e
)";
  auto r = check::lint_kiss_text(text, "<good>");
  EXPECT_TRUE(r.diags.empty());
}

TEST(LintKiss, BadFixtureFlagsManyDistinctClasses) {
  auto r = check::lint_kiss_text(kBadKiss, "<bad>");
  auto ids = ids_of(r);
  // The acceptance bar is >= 4 distinct diagnostic classes.
  EXPECT_GE(ids.size(), 4u) << "got " << ids.size() << " classes";
  EXPECT_TRUE(ids.count("malformed-row"));
  EXPECT_TRUE(ids.count("bad-literal"));
  EXPECT_TRUE(ids.count("count-mismatch"));
  EXPECT_TRUE(ids.count("conflicting-transitions"));
  EXPECT_TRUE(ids.count("duplicate-transition"));
  EXPECT_TRUE(ids.count("unreachable-state"));
  EXPECT_TRUE(ids.count("dead-end-state"));
  EXPECT_GT(r.errors(), 0);
  EXPECT_GT(r.warnings(), 0);
}

TEST(LintKiss, DiagnosticsCarryFileAndLine) {
  auto r = check::lint_kiss_text(kBadKiss, "bad.kiss");
  bool found = false;
  for (const auto& d : r.diags) {
    if (d.id == "conflicting-transitions") {
      found = true;
      EXPECT_EQ(d.file, "bad.kiss");
      EXPECT_EQ(d.line, 8);  // the second of the two overlapping rows
      EXPECT_EQ(d.severity, Severity::kError);
      EXPECT_NE(d.render().find("bad.kiss:8: error:"), std::string::npos);
    }
  }
  EXPECT_TRUE(found);
}

TEST(LintKiss, MissingHeaderStillLintsRows) {
  auto r = check::lint_kiss_text("0 a b 1\n1z a a 0\n", "<nohdr>");
  auto ids = ids_of(r);
  EXPECT_TRUE(ids.count("missing-header"));
  // Width inference from the first row keeps row checks alive.
  EXPECT_TRUE(ids.count("width-mismatch") || ids.count("bad-literal"));
}

TEST(LintKiss, UnknownResetState) {
  auto r = check::lint_kiss_text(
      ".i 1\n.o 1\n.r nowhere\n0 a a 0\n1 a a 0\n", "<reset>");
  EXPECT_TRUE(ids_of(r).count("unknown-state"));
}

TEST(LintKiss, UnusedInputColumn) {
  auto r = check::lint_kiss_text(
      ".i 2\n.o 1\n0- a b 0\n1- a a 0\n-- b b 1\n", "<unused>");
  EXPECT_TRUE(ids_of(r).count("unused-input"));
}

TEST(LintKiss, BundledBenchmarksAreLintErrorFree) {
  auto lint_all = [](const std::vector<nova::bench_data::BenchmarkInfo>& set) {
    for (const auto& info : set) {
      auto fsm = nova::bench_data::load_benchmark(info.name);
      auto text = nova::fsm::write_kiss_string(fsm);
      auto r = check::lint_kiss_text(text, info.name);
      EXPECT_EQ(r.errors(), 0) << info.name << ": "
                               << (r.diags.empty() ? ""
                                                   : r.diags[0].render());
    }
  };
  lint_all(nova::bench_data::table1_benchmarks());
  lint_all(nova::bench_data::table5_extras());
}

TEST(LintPla, CleanCoverHasNoDiagnostics) {
  auto r = check::lint_pla_text(".i 3\n.o 1\n.p 3\n11- 1\n1-1 1\n-11 1\n.e\n",
                                "<pla>");
  EXPECT_TRUE(r.diags.empty());
}

TEST(LintPla, FlagsSilentDropsAndDuplicates) {
  const char* text = R"(.i 3
.o 1
.p 5
11- 1
11- 1
1z0 1
110 1
00
.e
)";
  auto r = check::lint_pla_text(text, "<pla>");
  auto ids = ids_of(r);
  EXPECT_TRUE(ids.count("duplicate-row"));
  EXPECT_TRUE(ids.count("bad-literal"));  // 'z' is silently dropped by the reader
  EXPECT_TRUE(ids.count("redundant-term"));  // 110 is inside 11-
  EXPECT_TRUE(ids.count("malformed-row"));   // "00" lacks an output field
  EXPECT_TRUE(ids.count("count-mismatch"));
}

TEST(LintPla, LabelMismatch) {
  auto r = check::lint_pla_text(
      ".i 2\n.o 1\n.ilb a b c\n.ob y\n01 1\n", "<pla>");
  EXPECT_TRUE(ids_of(r).count("label-mismatch"));
}

TEST(LintEncoding, GoodBadAndMissingCodes) {
  auto fsm = nova::fsm::parse_kiss_string(
      ".i 1\n.o 1\n0 a a 0\n1 a b 0\n0 b a 1\n1 b b 1\n");
  auto ok = check::lint_encoding_text(fsm, "a 0\nb 1\n", "<enc>");
  EXPECT_EQ(ok.errors(), 0);

  auto dup = check::lint_encoding_text(fsm, "a 0\nb 0\n", "<enc>");
  EXPECT_TRUE(ids_of(dup).count("duplicate-code"));

  auto unknown = check::lint_encoding_text(fsm, "a 0\nzz 1\n", "<enc>");
  auto ids = ids_of(unknown);
  EXPECT_TRUE(ids.count("unknown-state"));
  EXPECT_TRUE(ids.count("missing-code"));

  auto widths = check::lint_encoding_text(fsm, "a 00\nb 1\n", "<enc>");
  EXPECT_TRUE(ids_of(widths).count("width-mismatch"));

  auto junk = check::lint_encoding_text(fsm, "a 0x\nb 1\n", "<enc>");
  EXPECT_TRUE(ids_of(junk).count("bad-literal"));
}

TEST(LintJson, ReportRoundTrips) {
  auto r = check::lint_kiss_text(kBadKiss, "bad.kiss");
  std::string dumped = check::lint_to_json(r).dump(2);
  std::string err;
  auto parsed = nova::obs::Json::parse(dumped, &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  EXPECT_EQ(parsed->find("version")->as_long(), 1);
  EXPECT_EQ(parsed->find("errors")->as_long(), r.errors());
  EXPECT_EQ(parsed->find("warnings")->as_long(), r.warnings());
  const auto& diags = parsed->find("diagnostics")->as_array();
  ASSERT_EQ(diags.size(), r.diags.size());
  EXPECT_EQ(diags[0].find("id")->as_string(), r.diags[0].id);
  EXPECT_EQ(diags[0].find("file")->as_string(), "bad.kiss");
}
