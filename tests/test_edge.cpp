// Edge cases across the encoding stack: degenerate machines, extreme
// widths, covering-constrained embedding, and the failure/fallback paths.
#include <gtest/gtest.h>

#include "encoding/baselines.hpp"
#include "encoding/embed.hpp"
#include "encoding/io.hpp"
#include "fsm/kiss_io.hpp"
#include "nova/nova.hpp"
#include "util/rng.hpp"

using namespace nova;
using namespace nova::encoding;
using nova::constraints::make_constraint;
using nova::util::BitVec;
using nova::util::Rng;

TEST(Edge, TwoStateMachine) {
  fsm::Fsm f(1, 1);
  f.add_transition("0", "a", "a", "0");
  f.add_transition("1", "a", "b", "1");
  f.add_transition("-", "b", "a", "0");
  driver::NovaResult r = driver::encode_fsm(f, {});
  EXPECT_EQ(r.metrics.nbits, 1);
  EXPECT_TRUE(r.enc.injective());
  EXPECT_GT(r.metrics.cubes, 0);
}

TEST(Edge, SingleStateMachine) {
  fsm::Fsm f(1, 1);
  f.add_transition("0", "a", "a", "1");
  f.add_transition("1", "a", "a", "0");
  driver::NovaResult r = driver::encode_fsm(f, {});
  EXPECT_TRUE(r.enc.injective());
  EXPECT_GE(r.metrics.nbits, 1);
}

TEST(Edge, NoInputsMachine) {
  // Autonomous counter: zero primary inputs.
  fsm::Fsm f(0, 1);
  f.add_transition("", "a", "b", "0");
  f.add_transition("", "b", "c", "0");
  f.add_transition("", "c", "a", "1");
  driver::NovaResult r = driver::encode_fsm(f, {});
  EXPECT_TRUE(r.enc.injective());
  EXPECT_GT(r.metrics.cubes, 0);
}

TEST(Edge, NoOutputsMachine) {
  fsm::Fsm f(1, 0);
  f.add_transition("0", "a", "b", "");
  f.add_transition("1", "a", "a", "");
  f.add_transition("-", "b", "a", "");
  driver::NovaResult r = driver::encode_fsm(f, {});
  EXPECT_TRUE(r.enc.injective());
}

TEST(Edge, StarPresentState) {
  // '*' present state rows apply to every state.
  fsm::Fsm f = fsm::parse_kiss_string(
      ".i 1\n.o 1\n"
      "1 * rst 1\n"
      "0 rst a 0\n"
      "0 a rst 0\n"
      ".e\n");
  driver::NovaResult r = driver::encode_fsm(f, {});
  EXPECT_TRUE(r.enc.injective());
  auto ev = driver::evaluate_encoding(f, r.enc);
  // From any state, input 1 must drive the next-state code to rst's code.
  int rst = *f.find_state("rst");
  for (int s = 0; s < f.num_states(); ++s) {
    std::string got = driver::simulate_pla(ev, f, "1", r.enc.codes[s]);
    uint64_t ncode = 0;
    for (int b = 0; b < r.enc.nbits; ++b) {
      if (got[b] == '1') ncode |= uint64_t{1} << b;
    }
    EXPECT_EQ(ncode, r.enc.codes[rst]);
  }
}

TEST(Edge, UnspecifiedNextState) {
  fsm::Fsm f = fsm::parse_kiss_string(
      ".i 1\n.o 1\n"
      "0 a b 1\n"
      "1 a * 0\n"
      "- b a -\n"
      ".e\n");
  driver::NovaResult r = driver::encode_fsm(f, {});
  EXPECT_TRUE(r.enc.injective());
  EXPECT_GT(r.metrics.cubes, 0);
}

TEST(Edge, PowerOfTwoStates) {
  // Exactly 2^k states: zero unused codes, the tightest case.
  Rng rng(3);
  for (int n : {4, 8, 16}) {
    Encoding enc = random_encoding(n, min_code_length(n), rng);
    EXPECT_EQ(enc.nbits, min_code_length(n));
    EXPECT_TRUE(enc.injective());
  }
}

TEST(Edge, CoveringsRejectImpossiblePair) {
  // A covering cycle u>v and v>u is unsatisfiable: pos_equiv must fail
  // rather than return a bogus encoding.
  std::vector<OutputConstraint> cov = {{0, 1}, {1, 0}};
  InputGraph ig({}, 4);
  EmbedOptions eo;
  eo.coverings = &cov;
  EmbedResult r = pos_equiv(ig, 2, {}, eo);
  EXPECT_FALSE(r.success);
}

TEST(Edge, CoveringsSatisfiableChain) {
  std::vector<OutputConstraint> cov = {{0, 1}, {1, 2}};
  InputGraph ig({}, 4);
  EmbedOptions eo;
  eo.coverings = &cov;
  eo.max_work = 100000;
  EmbedResult r = pos_equiv(ig, 2, {}, eo);
  ASSERT_TRUE(r.success);
  for (const auto& oc : cov) EXPECT_TRUE(covering_satisfied(r.enc, oc));
}

TEST(Edge, SemiexactInfeasibleCardinality) {
  // A 5-state constraint cannot fit any proper face of a 3-cube (needs
  // level 3 = the whole cube, which is reserved for the universe).
  std::vector<InputConstraint> ics = {make_constraint("11111000")};
  EmbedResult r = semiexact_code(ics, 8, 3);
  EXPECT_FALSE(r.success);
  EXPECT_FALSE(r.exhausted);  // proven infeasible, not out of budget
}

TEST(Edge, ProjectCodeWithEmptyRic) {
  Rng rng(5);
  Encoding enc = random_encoding(5, 3, rng);
  std::vector<InputConstraint> sic, ric;
  Encoding out = project_code(enc, sic, ric);
  EXPECT_EQ(out.nbits, 4);
  EXPECT_TRUE(out.injective());
  // Codes unchanged in the low bits.
  for (int s = 0; s < 5; ++s) EXPECT_EQ(out.codes[s] & 7u, enc.codes[s]);
}

TEST(Edge, OutEncoderWideFallback) {
  // Beyond the word width the encoder falls back to plain injective codes.
  Encoding e = out_encoder({{0, 1}}, 70);
  EXPECT_TRUE(e.injective());
  EXPECT_EQ(e.num_states(), 70);
}

TEST(Edge, MustangZeroWeightMachine) {
  // No shared structure at all: weights all zero; embedding still valid.
  fsm::Fsm f(1, 0);
  f.add_transition("0", "a", "b", "");
  f.add_transition("1", "b", "c", "");
  f.add_transition("0", "c", "a", "");
  Rng rng(7);
  Encoding e = mustang_code(f, 2, MustangVariant::kFanout, rng);
  EXPECT_TRUE(e.injective());
}

TEST(Edge, IGreedyFullCube) {
  // n = 2^k: igreedy must still place everybody injectively.
  std::vector<InputConstraint> ics = {make_constraint("11000000"),
                                      make_constraint("00110000"),
                                      make_constraint("00001111")};
  auto r = igreedy_code(ics, 8, 3);
  EXPECT_TRUE(r.enc.injective());
  EXPECT_EQ(r.enc.nbits, 3);
}

TEST(Edge, ConstraintOfAllButOneState) {
  // Cardinality n-1 constraints force the remaining state to a corner.
  std::vector<InputConstraint> ics = {make_constraint("11101111")};
  EmbedOptions eo;
  eo.max_work = 200000;
  EmbedResult r = semiexact_code(ics, 8, 3);
  // 7 states in a face of 8 vertices + 1 outside is impossible in 3 bits
  // (the face would be the universe); 4 bits works.
  EXPECT_FALSE(r.success);
  EmbedResult r4 = semiexact_code(ics, 8, 4, eo);
  if (r4.success) {
    EXPECT_TRUE(constraint_satisfied(r4.enc, ics[0]));
  }
}

TEST(Edge, DuplicateConstraintsHarmless) {
  std::vector<InputConstraint> ics = {make_constraint("1100"),
                                      make_constraint("1100"),
                                      make_constraint("1100")};
  EmbedResult r = semiexact_code(ics, 4, 2);
  ASSERT_TRUE(r.success);
  EXPECT_TRUE(constraint_satisfied(r.enc, ics[0]));
}

TEST(Edge, EvaluateOneBitState) {
  fsm::Fsm f(2, 1);
  f.add_transition("0-", "a", "a", "0");
  f.add_transition("1-", "a", "b", "1");
  f.add_transition("-0", "b", "b", "1");
  f.add_transition("-1", "b", "a", "0");
  Encoding enc;
  enc.nbits = 1;
  enc.codes = {0, 1};
  auto ev = driver::evaluate_encoding(f, enc);
  EXPECT_GT(ev.metrics.cubes, 0);
  EXPECT_EQ(ev.metrics.area,
            driver::pla_area(2, 1, 1, ev.metrics.cubes));
}
