// Parameterized end-to-end sweeps: for every small benchmark machine and
// every algorithm, the full pipeline must produce an injective encoding, a
// consistent area, and an encoded PLA functionally equivalent to the FSM.
#include <gtest/gtest.h>

#include "bench_data/benchmarks.hpp"
#include "constraints/input_constraints.hpp"
#include "encoding/embed.hpp"
#include "nova/nova.hpp"
#include "util/rng.hpp"

using namespace nova;
using driver::Algorithm;
using nova::util::Rng;

namespace {

struct Param {
  const char* machine;
  Algorithm alg;
};

std::string param_name(const testing::TestParamInfo<Param>& info) {
  const char* alg = "";
  switch (info.param.alg) {
    case Algorithm::kIHybrid: alg = "ihybrid"; break;
    case Algorithm::kIGreedy: alg = "igreedy"; break;
    case Algorithm::kIoHybrid: alg = "iohybrid"; break;
    case Algorithm::kIoVariant: alg = "iovariant"; break;
    case Algorithm::kKiss: alg = "kiss"; break;
    case Algorithm::kRandom: alg = "random"; break;
    case Algorithm::kMustangFanout: alg = "mustangp"; break;
    case Algorithm::kMustangFanin: alg = "mustangn"; break;
    case Algorithm::kIExact: alg = "iexact"; break;
  }
  return std::string(info.param.machine) + "_" + alg;
}

class PipelineTest : public testing::TestWithParam<Param> {};

TEST_P(PipelineTest, EncodesAndMatchesFsm) {
  const Param& p = GetParam();
  auto f = bench_data::load_benchmark(p.machine);
  driver::NovaOptions opts;
  opts.algorithm = p.alg;
  opts.max_work = 10000;
  driver::NovaResult r = driver::encode_fsm(f, opts);
  ASSERT_TRUE(r.success);
  EXPECT_TRUE(r.enc.injective());
  EXPECT_GE(r.metrics.nbits, encoding::min_code_length(f.num_states()));
  EXPECT_GT(r.metrics.cubes, 0);
  EXPECT_EQ(r.metrics.area,
            driver::pla_area(f.num_inputs(), r.metrics.nbits,
                             f.num_outputs(), r.metrics.cubes));

  // Functional equivalence under random stimulus.
  auto ev = driver::evaluate_encoding(f, r.enc);
  Rng rng(99);
  int state = f.reset_state();
  for (int i = 0; i < 60; ++i) {
    std::string in(f.num_inputs(), '0');
    for (auto& c : in) c = rng.chance(0.5) ? '1' : '0';
    auto ref = f.step(state, in);
    if (!ref || ref->first < 0) {
      state = f.reset_state();
      continue;
    }
    std::string got = driver::simulate_pla(ev, f, in, r.enc.codes[state]);
    uint64_t ncode = 0;
    for (int b = 0; b < r.enc.nbits; ++b) {
      if (got[b] == '1') ncode |= uint64_t{1} << b;
    }
    ASSERT_EQ(ncode, r.enc.codes[ref->first])
        << p.machine << " step " << i << " state " << f.state_name(state);
    for (int j = 0; j < f.num_outputs(); ++j) {
      if (ref->second[j] != '-') {
        ASSERT_EQ(got[r.enc.nbits + j], ref->second[j])
            << p.machine << " output " << j;
      }
    }
    state = ref->first;
  }
}

std::vector<Param> make_params() {
  std::vector<Param> out;
  const char* machines[] = {"lion",  "bbtas",    "dk27",     "shiftreg",
                            "tav",   "beecount", "modulo12", "train11",
                            "lion9", "iofsm"};
  Algorithm algs[] = {Algorithm::kIHybrid,       Algorithm::kIGreedy,
                      Algorithm::kIoHybrid,      Algorithm::kIoVariant,
                      Algorithm::kKiss,          Algorithm::kRandom,
                      Algorithm::kMustangFanout, Algorithm::kMustangFanin};
  for (const char* m : machines) {
    for (Algorithm a : algs) out.push_back({m, a});
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(AllSmallMachines, PipelineTest,
                         testing::ValuesIn(make_params()), param_name);

// iexact separately on tiny machines only (it is exponential by design).
class ExactPipelineTest : public testing::TestWithParam<const char*> {};

TEST_P(ExactPipelineTest, ExactSatisfiesEverything) {
  auto f = bench_data::load_benchmark(GetParam());
  auto icr = constraints::extract_input_constraints(f);
  encoding::InputGraph ig(icr.constraints, f.num_states());
  encoding::ExactOptions eo;
  eo.max_work = 400000;
  auto er = encoding::iexact_code(ig, eo);
  if (!er.success) GTEST_SKIP() << "budget exhausted (allowed)";
  EXPECT_TRUE(er.enc.injective());
  for (const auto& ic : icr.constraints) {
    EXPECT_TRUE(encoding::constraint_satisfied(er.enc, ic))
        << GetParam() << " " << ic.states.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(TinyMachines, ExactPipelineTest,
                         testing::Values("lion", "bbtas", "dk27", "tav",
                                         "shiftreg", "beecount"));

// Constraint-weight sanity across all real (non-synthetic) machines.
class ConstraintSweep : public testing::TestWithParam<const char*> {};

TEST_P(ConstraintSweep, WeightsAndCardinalities) {
  auto f = bench_data::load_benchmark(GetParam());
  auto icr = constraints::extract_input_constraints(f);
  EXPECT_GT(icr.minimized_cubes, 0);
  int total_weight = 0;
  for (const auto& ic : icr.constraints) {
    EXPECT_GE(ic.cardinality(), 2);
    EXPECT_LT(ic.cardinality(), f.num_states());
    EXPECT_GE(ic.weight, 1);
    total_weight += ic.weight;
  }
  // Each constraint occurrence is a product term of the minimized cover.
  EXPECT_LE(total_weight, icr.minimized_cubes);
}

INSTANTIATE_TEST_SUITE_P(RealMachines, ConstraintSweep,
                         testing::Values("lion", "lion9", "bbtas", "dk27",
                                         "shiftreg", "modulo12", "tav",
                                         "beecount", "train11"));

}  // namespace
