#include "logic/cover.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

using namespace nova::logic;
using nova::util::Rng;

namespace {

CubeSpec bspec(int n) { return CubeSpec::binary(n); }

/// Builds a cover over binary variables from PLA-style rows ("0-1", ...).
Cover from_pla(const CubeSpec& s, std::initializer_list<const char*> rows) {
  Cover c(s);
  for (const char* r : rows) {
    Cube q = Cube::full(s);
    q.set_binary_from_pla(s, 0, r);
    c.add(q);
  }
  return c;
}

/// Enumerates all minterms of a binary spec; returns true iff F covers m.
bool truth(const Cover& F, unsigned m, int n) {
  Cube q = Cube::full(F.spec());
  std::string s(n, '0');
  for (int i = 0; i < n; ++i) s[i] = (m >> i) & 1 ? '1' : '0';
  q.set_binary_from_pla(F.spec(), 0, s);
  return covers_minterm(F, q);
}

}  // namespace

TEST(Cover, AddDropsEmptyCubes) {
  CubeSpec s = bspec(2);
  Cover F(s);
  Cube empty(s);
  F.add(empty);
  EXPECT_TRUE(F.empty());
}

TEST(Cover, MakeSccRemovesContained) {
  CubeSpec s = bspec(3);
  Cover F = from_pla(s, {"0--", "01-", "011", "1--"});
  F.make_scc();
  EXPECT_EQ(F.size(), 2);
}

TEST(Cover, TautologyOfUniverse) {
  CubeSpec s = bspec(3);
  Cover F = from_pla(s, {"---"});
  EXPECT_TRUE(tautology(F));
}

TEST(Cover, TautologyOfComplementaryPair) {
  CubeSpec s = bspec(3);
  Cover F = from_pla(s, {"0--", "1--"});
  EXPECT_TRUE(tautology(F));
}

TEST(Cover, NonTautology) {
  CubeSpec s = bspec(3);
  Cover F = from_pla(s, {"0--", "10-"});
  EXPECT_FALSE(tautology(F));
}

TEST(Cover, TautologyEmptyCover) {
  CubeSpec s = bspec(2);
  Cover F(s);
  EXPECT_FALSE(tautology(F));
}

TEST(Cover, TautologyXorStyle) {
  CubeSpec s = bspec(2);
  // x^y plus its complement is a tautology.
  Cover F = from_pla(s, {"01", "10", "00", "11"});
  EXPECT_TRUE(tautology(F));
  Cover G = from_pla(s, {"01", "10", "00"});
  EXPECT_FALSE(tautology(G));
}

TEST(Cover, TautologyMvSpace) {
  CubeSpec s({3});  // single 3-valued variable
  Cover F(s);
  F.add(Cube::from_bits(s, "110"));
  EXPECT_FALSE(tautology(F));
  F.add(Cube::from_bits(s, "001"));
  EXPECT_TRUE(tautology(F));
}

TEST(Cover, CoversCube) {
  CubeSpec s = bspec(3);
  Cover F = from_pla(s, {"0--", "11-"});
  Cube c = Cube::full(s);
  c.set_binary_from_pla(s, 0, "01-");
  EXPECT_TRUE(covers_cube(F, c));
  Cube d = Cube::full(s);
  d.set_binary_from_pla(s, 0, "1--");
  EXPECT_FALSE(covers_cube(F, d));
}

TEST(Cover, CoversCubeNeedsMultipleCubes) {
  CubeSpec s = bspec(2);
  // F = {00,01,10,11} as minterms covers the universe cube though no single
  // cube does.
  Cover F = from_pla(s, {"00", "01", "10", "11"});
  Cube u = Cube::full(s);
  EXPECT_TRUE(covers_cube(F, u));
}

TEST(Cover, ComplementOfEmptyIsUniverse) {
  CubeSpec s = bspec(3);
  Cover F(s);
  Cover C = complement(F);
  ASSERT_EQ(C.size(), 1);
  EXPECT_TRUE(C[0].is_full(s));
}

TEST(Cover, ComplementOfUniverseIsEmpty) {
  CubeSpec s = bspec(3);
  Cover F = from_pla(s, {"---"});
  EXPECT_TRUE(complement(F).empty());
}

TEST(Cover, ComplementSingleCube) {
  CubeSpec s = bspec(2);
  Cover F = from_pla(s, {"01"});
  Cover C = complement(F);
  // Union of F and C must be a tautology and they must be disjoint in truth.
  Cover U = F;
  U.add_all(C);
  EXPECT_TRUE(tautology(U));
  for (unsigned m = 0; m < 4; ++m)
    EXPECT_NE(truth(F, m, 2), truth(C, m, 2));
}

TEST(Cover, ComplementRandomFunctionsExact) {
  // Property: for random covers, complement partitions the truth table.
  Rng rng(123);
  for (int trial = 0; trial < 30; ++trial) {
    int n = 3 + rng.uniform(3);  // 3..5 vars
    CubeSpec s = bspec(n);
    Cover F(s);
    int ncubes = 1 + rng.uniform(5);
    for (int i = 0; i < ncubes; ++i) {
      std::string row(n, '-');
      for (int j = 0; j < n; ++j) {
        int r = rng.uniform(3);
        row[j] = r == 0 ? '0' : (r == 1 ? '1' : '-');
      }
      Cube q = Cube::full(s);
      q.set_binary_from_pla(s, 0, row);
      F.add(q);
    }
    Cover C = complement(F);
    for (unsigned m = 0; m < (1u << n); ++m) {
      EXPECT_NE(truth(F, m, n), truth(C, m, n))
          << "trial " << trial << " minterm " << m;
    }
  }
}

TEST(Cover, ComplementMvCover) {
  CubeSpec s({2, 4});
  Cover F(s);
  F.add(Cube::from_bits(s, "10|1100"));
  F.add(Cube::from_bits(s, "01|0011"));
  Cover C = complement(F);
  Cover U = F;
  U.add_all(C);
  EXPECT_TRUE(tautology(U));
  // Disjointness check via intersection emptiness of each pair.
  for (const Cube& f : F) {
    for (const Cube& c : C) {
      EXPECT_FALSE(f.intersects(s, c));
    }
  }
}

TEST(Cover, SupercubeOf) {
  CubeSpec s = bspec(3);
  Cover F = from_pla(s, {"001", "011"});
  Cube sc = supercube_of(F);
  EXPECT_EQ(sc.to_string(s), "10|11|01");
}

TEST(Cover, CountMintermsExact) {
  CubeSpec s = bspec(4);
  Cover F = from_pla(s, {"0---", "10--"});
  EXPECT_DOUBLE_EQ(static_cast<double>(count_minterms(F)), 12.0);
  Cover G = from_pla(s, {"0---", "----"});
  EXPECT_DOUBLE_EQ(static_cast<double>(count_minterms(G)), 16.0);
}

TEST(Cover, CofactorDropsDisjointCubes) {
  CubeSpec s = bspec(2);
  Cover F = from_pla(s, {"0-", "11"});
  Cube p = Cube::full(s);
  p.set_binary_from_pla(s, 0, "1-");
  Cover cf = cofactor(F, p);
  ASSERT_EQ(cf.size(), 1);
  EXPECT_EQ(cf[0].to_string(s), "11|01");
}

TEST(Cover, CoversCoverReflexive) {
  CubeSpec s = bspec(3);
  Cover F = from_pla(s, {"0--", "1-1"});
  EXPECT_TRUE(covers_cover(F, F));
  Cover G = from_pla(s, {"0-1"});
  EXPECT_TRUE(covers_cover(F, G));
  EXPECT_FALSE(covers_cover(G, F));
}
