#include "logic/espresso.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

using namespace nova::logic;
using nova::util::Rng;

namespace {

Cover from_pla(const CubeSpec& s, std::initializer_list<const char*> rows) {
  Cover c(s);
  for (const char* r : rows) {
    Cube q = Cube::full(s);
    q.set_binary_from_pla(s, 0, r);
    c.add(q);
  }
  return c;
}

bool truth(const Cover& F, unsigned m, int n) {
  Cube q = Cube::full(F.spec());
  std::string s(n, '0');
  for (int i = 0; i < n; ++i) s[i] = (m >> i) & 1 ? '1' : '0';
  q.set_binary_from_pla(F.spec(), 0, s);
  return covers_minterm(F, q);
}

/// Checks ON subseteq G subseteq ON u DC by truth-table enumeration.
void check_equivalent(const Cover& on, const Cover& dc, const Cover& g, int n) {
  for (unsigned m = 0; m < (1u << n); ++m) {
    bool in_on = truth(on, m, n);
    bool in_dc = truth(dc, m, n);
    bool in_g = truth(g, m, n);
    // A minterm in both ON and DC is optional (DC wins the ambiguity), so
    // only minterms in ON \ DC are mandatory.
    if (in_on && !in_dc) {
      EXPECT_TRUE(in_g) << "minterm " << m << " lost";
    }
    if (in_g) {
      EXPECT_TRUE(in_on || in_dc) << "minterm " << m << " gained";
    }
  }
}

}  // namespace

TEST(Expand, GrowsToPrimes) {
  CubeSpec s = CubeSpec::binary(3);
  // f = minterms of x0' (4 minterms given as separate cubes)
  Cover on = from_pla(s, {"000", "001", "010", "011"});
  Cover off = complement(on);
  Cover e = expand(on, off);
  ASSERT_EQ(e.size(), 1);
  EXPECT_EQ(e[0].to_string(s), "10|11|11");
}

TEST(Expand, RespectsOffset) {
  CubeSpec s = CubeSpec::binary(2);
  Cover on = from_pla(s, {"00"});
  Cover off = from_pla(s, {"11"});
  Cover e = expand(on, off);
  ASSERT_EQ(e.size(), 1);
  // The prime may grow but must not intersect 11.
  Cube bad = Cube::full(s);
  bad.set_binary_from_pla(s, 0, "11");
  EXPECT_FALSE(e[0].intersects(s, bad));
}

TEST(Irredundant, RemovesRedundantMiddleCube) {
  CubeSpec s = CubeSpec::binary(2);
  // ab' + a'b + consensus-ish middle cube; with cubes 0-,1- the - - cube in
  // between is redundant.
  Cover F = from_pla(s, {"0-", "1-", "-1"});
  Cover dc(s);
  Cover r = irredundant(F, dc);
  EXPECT_EQ(r.size(), 2);
}

TEST(Irredundant, KeepsNeededCubes) {
  CubeSpec s = CubeSpec::binary(3);
  Cover F = from_pla(s, {"0--", "-11"});
  Cover r = irredundant(F, Cover(s));
  EXPECT_EQ(r.size(), 2);
}

TEST(Essentials, DetectsEssential) {
  CubeSpec s = CubeSpec::binary(2);
  Cover F = from_pla(s, {"0-", "-1"});
  auto [ess, rest] = essentials(F, Cover(s));
  EXPECT_EQ(ess.size(), 2);
  EXPECT_EQ(rest.size(), 0);
}

TEST(Reduce, ShrinksOverlap) {
  CubeSpec s = CubeSpec::binary(2);
  Cover F = from_pla(s, {"0-", "--"});
  Cover r = reduce(F, Cover(s));
  // Cover must stay equivalent.
  for (unsigned m = 0; m < 4; ++m) EXPECT_TRUE(truth(r, m, 2));
}

TEST(Espresso, XorStaysTwoCubes) {
  CubeSpec s = CubeSpec::binary(2);
  Cover on = from_pla(s, {"01", "10"});
  Cover g = espresso(on);
  EXPECT_EQ(g.size(), 2);
  check_equivalent(on, Cover(s), g, 2);
}

TEST(Espresso, MergesAdjacentMinterms) {
  CubeSpec s = CubeSpec::binary(3);
  Cover on = from_pla(s, {"000", "001", "011", "010", "110", "111"});
  Cover g = espresso(on);
  EXPECT_LE(g.size(), 2);
  check_equivalent(on, Cover(s), g, 3);
}

TEST(Espresso, UsesDontCares) {
  CubeSpec s = CubeSpec::binary(3);
  Cover on = from_pla(s, {"000", "011"});
  Cover dc = from_pla(s, {"001", "010"});
  Cover g = espresso(on, dc);
  EXPECT_EQ(g.size(), 1);  // whole x0=0 face
  check_equivalent(on, dc, g, 3);
}

TEST(Espresso, EmptyOnSet) {
  CubeSpec s = CubeSpec::binary(3);
  Cover on(s);
  Cover g = espresso(on);
  EXPECT_TRUE(g.empty());
}

TEST(Espresso, TautologyInput) {
  CubeSpec s = CubeSpec::binary(3);
  Cover on = from_pla(s, {"0--", "1--"});
  Cover g = espresso(on);
  EXPECT_EQ(g.size(), 1);
  EXPECT_TRUE(g[0].is_full(s));
}

TEST(Espresso, RandomFunctionsStayEquivalentAndShrink) {
  Rng rng(77);
  for (int trial = 0; trial < 25; ++trial) {
    int n = 3 + rng.uniform(3);
    CubeSpec s = CubeSpec::binary(n);
    Cover on(s);
    Cover dc(s);
    int ncubes = 2 + rng.uniform(8);
    for (int i = 0; i < ncubes; ++i) {
      std::string row(n, '-');
      for (int j = 0; j < n; ++j) {
        int r = rng.uniform(4);
        row[j] = r == 0 ? '0' : (r == 1 ? '1' : '-');
      }
      Cube q = Cube::full(s);
      q.set_binary_from_pla(s, 0, row);
      if (rng.chance(0.2))
        dc.add(q);
      else
        on.add(q);
    }
    // Remove overlap between dc and on to keep the spec well-formed: a
    // minterm in both is treated as on; espresso tolerates this but the
    // truth check must too, so subtract is unnecessary -- check_equivalent
    // treats dc as allowed.
    Cover g = espresso(on, dc);
    EXPECT_LE(g.size(), std::max(1, on.size()));
    check_equivalent(on, dc, g, n);
  }
}

TEST(Espresso, MultiValuedSingleVar) {
  // One 5-valued variable; on-set = values {0,1} and {1,2} should merge.
  CubeSpec s({5});
  Cover on(s);
  on.add(Cube::from_bits(s, "11000"));
  on.add(Cube::from_bits(s, "01100"));
  Cover g = espresso(on);
  ASSERT_EQ(g.size(), 1);
  EXPECT_EQ(g[0].to_string(s), "11100");
}

TEST(Espresso, MultiOutputCharacteristicView) {
  // Two binary inputs, output variable with 2 "functions".
  // f0 = x0', f1 = x0'x1. Expect f0 cube to absorb sharing where possible.
  CubeSpec s({2, 2, 2});  // x0, x1, output-id
  Cover on(s);
  {
    Cube c = Cube::full(s);
    c.set_binary_from_pla(s, 0, "0-");
    c.set_value(s, 2, 0);
    on.add(c);
  }
  {
    Cube c = Cube::full(s);
    c.set_binary_from_pla(s, 0, "01");
    c.set_value(s, 2, 1);
    on.add(c);
  }
  Cover g = espresso(on);
  // Optimal: cubes "0-|f0" and "01|f0f1" merged as "01|11" + "00|10" (2 cubes)
  EXPECT_LE(g.size(), 2);
  // Semantics preserved: check all (x, output) points.
  for (unsigned m = 0; m < 4; ++m) {
    for (int o = 0; o < 2; ++o) {
      Cube q = Cube::full(s);
      std::string row = {char('0' + (m & 1)), char('0' + ((m >> 1) & 1))};
      q.set_binary_from_pla(s, 0, row);
      q.set_value(s, 2, o);
      bool want = covers_minterm(on, q);
      EXPECT_EQ(covers_minterm(g, q), want) << m << " " << o;
    }
  }
}

TEST(Espresso, StatsReported) {
  CubeSpec s = CubeSpec::binary(3);
  Cover on = from_pla(s, {"000", "001", "011"});
  EspressoStats stats;
  Cover g = espresso(on, Cover(s), {}, &stats);
  EXPECT_GT(stats.offset_cubes, 0);
  EXPECT_FALSE(stats.offset_capped);
  EXPECT_FALSE(g.empty());
}

TEST(Espresso, SinglePassOption) {
  CubeSpec s = CubeSpec::binary(4);
  Cover on = from_pla(s, {"0000", "0001", "0011", "0010", "1000"});
  EspressoOptions opts;
  opts.single_pass = true;
  Cover g = espresso(on, Cover(s), opts);
  check_equivalent(on, Cover(s), g, 4);
}
