// Deterministic malformed-input corpus for the KISS2 and PLA parsers: every
// input must either parse or raise std::runtime_error / std::invalid_argument
// with a useful message -- never crash, hang, or corrupt memory. The CI
// sanitizer job runs this suite under ASan+UBSan.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "fsm/kiss_io.hpp"
#include "logic/pla_io.hpp"
#include "util/rng.hpp"

namespace {

/// Feeds `text` to the parser; passes iff it returns normally or throws one
/// of the documented exception types.
template <typename Parse>
::testing::AssertionResult graceful(Parse parse, const std::string& text) {
  try {
    parse(text);
    return ::testing::AssertionSuccess();
  } catch (const std::runtime_error&) {
    return ::testing::AssertionSuccess();
  } catch (const std::invalid_argument&) {
    return ::testing::AssertionSuccess();
  } catch (const std::exception& e) {
    return ::testing::AssertionFailure()
           << "undocumented exception type: " << e.what();
  }
}

void parse_kiss(const std::string& s) { nova::fsm::parse_kiss_string(s); }
void parse_pla(const std::string& s) { nova::logic::parse_pla_string(s); }

const std::vector<std::string>& kiss_corpus() {
  static const std::vector<std::string> corpus = {
      "",
      "\n\n\n",
      "# only a comment\n",
      ".i\n",
      ".i -3\n.o 1\n",
      ".i 1\n.o\n",
      ".i 1\n.o 1\n",
      ".i 1\n.o 1\n0 a\n",
      ".i 1\n.o 1\n0 a b\n",
      ".i 1\n.o 1\n0 a b 0 extra\n",
      ".i 2\n.o 1\n0 a b 0\n",       // input narrower than .i
      ".i 1\n.o 2\n0 a b 0\n",       // output narrower than .o
      ".i 1\n.o 1\nq a b 0\n",       // bad input literal
      ".i 1\n.o 1\n0 a b 7\n",       // bad output literal
      ".i 1\n.o 1\n.p x\n0 a b 0\n",
      ".i 1\n.o 1\n.s -1\n0 a b 0\n",
      ".i 1\n.o 1\n.r\n0 a b 0\n",
      ".i 1\n.o 1\n.r ghost\n0 a b 0\n",
      ".i 1\n.o 1\n0 * * 0\n",
      ".i 1\n.o 1\n.e\n0 a b 0\n",   // rows after the terminator
      ".i 99999999\n.o 1\n0 a b 0\n",
      ".i 1\n.o 1\n\x01\x02\x03 a b 0\n",
      std::string(".i 1\n.o 1\n0 a b 0\n") + std::string(4096, 'x'),
      std::string("\0\0\0", 3),
  };
  return corpus;
}

const std::vector<std::string>& pla_corpus() {
  static const std::vector<std::string> corpus = {
      "",
      ".i\n",
      ".i 2\n.o\n",
      ".i 2\n.o 1\n",
      ".i 2\n.o 1\n01\n",            // missing output field
      ".i 2\n.o 1\n011 1\n",         // too-wide input
      ".i 2\n.o 1\n01 11\n",         // too-wide output
      ".i 2\n.o 1\nzz 1\n",          // junk literals
      ".i 2\n.o 1\n01 q\n",
      ".i 2\n.o 1\n.p nope\n01 1\n",
      ".i 2\n.o 1\n.type xyz\n01 1\n",
      ".i -1\n.o 1\n01 1\n",
      ".o 1\n01 1\n",
      ".i 2\n01 1\n",
      std::string("\xff\xfe junk", 7),
  };
  return corpus;
}

}  // namespace

TEST(ParserFuzz, KissCorpusNeverCrashes) {
  for (const auto& text : kiss_corpus()) {
    EXPECT_TRUE(graceful(parse_kiss, text))
        << "input: " << testing::PrintToString(text);
  }
}

TEST(ParserFuzz, PlaCorpusNeverCrashes) {
  for (const auto& text : pla_corpus()) {
    EXPECT_TRUE(graceful(parse_pla, text))
        << "input: " << testing::PrintToString(text);
  }
}

// Seeded random mutations of a valid machine: truncations, deletions, and
// byte substitutions. Deterministic across runs (fixed seed, fixed count).
TEST(ParserFuzz, MutatedKissNeverCrashes) {
  const std::string base =
      ".i 2\n.o 2\n.s 3\n.p 4\n.r a\n"
      "0- a b 01\n1- a c 10\n-- b a 00\n-1 c c 11\n.e\n";
  ASSERT_NO_THROW(nova::fsm::parse_kiss_string(base));
  nova::util::Rng rng(2024);
  const std::string alphabet = "01-.*aeiprsx \n\t";
  for (int trial = 0; trial < 500; ++trial) {
    std::string t = base;
    const int edits = 1 + rng.uniform(6);
    for (int e = 0; e < edits && !t.empty(); ++e) {
      const int pos = rng.uniform(static_cast<int>(t.size()));
      switch (rng.uniform(3)) {
        case 0:
          t[pos] = alphabet[rng.uniform(static_cast<int>(alphabet.size()))];
          break;
        case 1:
          t.erase(pos, 1 + rng.uniform(4));
          break;
        default:
          t.resize(pos);  // truncation
          break;
      }
    }
    EXPECT_TRUE(graceful(parse_kiss, t)) << "trial " << trial;
  }
}

TEST(ParserFuzz, MutatedPlaNeverCrashes) {
  const std::string base =
      ".i 3\n.o 2\n.p 4\n.ilb x y z\n.ob f g\n"
      "11- 10\n1-1 01\n-11 1-\n000 0-\n.e\n";
  ASSERT_NO_THROW(nova::logic::parse_pla_string(base));
  nova::util::Rng rng(4096);
  const std::string alphabet = "01-2x.~fgp \n";
  for (int trial = 0; trial < 500; ++trial) {
    std::string t = base;
    const int edits = 1 + rng.uniform(6);
    for (int e = 0; e < edits && !t.empty(); ++e) {
      const int pos = rng.uniform(static_cast<int>(t.size()));
      switch (rng.uniform(3)) {
        case 0:
          t[pos] = alphabet[rng.uniform(static_cast<int>(alphabet.size()))];
          break;
        case 1:
          t.erase(pos, 1 + rng.uniform(4));
          break;
        default:
          t.resize(pos);
          break;
      }
    }
    EXPECT_TRUE(graceful(parse_pla, t)) << "trial " << trial;
  }
}
