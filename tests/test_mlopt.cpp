#include "mlopt/algebraic.hpp"

#include <gtest/gtest.h>

#include "mlopt/bridge.hpp"
#include "util/rng.hpp"

using namespace nova::mlopt;

namespace {
// Literal helpers: p(v) = positive, n(v) = complemented.
Lit p(int v) { return 2 * v + 1; }
Lit n(int v) { return 2 * v; }
}  // namespace

TEST(Algebraic, NormalizeSortsAndDedups) {
  Sop f = {{p(2), p(0)}, {p(0), p(2)}, {p(1)}};
  Sop g = normalize(f);
  EXPECT_EQ(g.size(), 2u);
  // Cubes sort lexicographically by literal id: {p(0),p(2)} = {1,5} first.
  EXPECT_EQ(g[0], (CubeL{p(0), p(2)}));
  EXPECT_EQ(g[1], (CubeL{p(1)}));
}

TEST(Algebraic, SopLiterals) {
  Sop f = {{p(0), p(1)}, {n(2)}};
  EXPECT_EQ(sop_literals(f), 3);
}

TEST(Algebraic, DivideTextbook) {
  // f = ab + ac + ad + bc -> f / a = b + c + d, remainder bc.
  Sop f = normalize({{p(0), p(1)}, {p(0), p(2)}, {p(0), p(3)}, {p(1), p(2)}});
  Sop r;
  Sop q = divide(f, {{p(0)}}, &r);
  EXPECT_EQ(normalize(q),
            normalize(Sop{{p(1)}, {p(2)}, {p(3)}}));
  EXPECT_EQ(normalize(r), normalize(Sop{{p(1), p(2)}}));
}

TEST(Algebraic, DivideByMultiCubeDivisor) {
  // f = (a+b)(c+d) + e = ac+ad+bc+bd+e ; f / (c+d) = a+b, remainder e.
  Sop f = normalize({{p(0), p(2)},
                     {p(0), p(3)},
                     {p(1), p(2)},
                     {p(1), p(3)},
                     {p(4)}});
  Sop d = {{p(2)}, {p(3)}};
  Sop r;
  Sop q = divide(f, d, &r);
  EXPECT_EQ(normalize(q), normalize(Sop{{p(0)}, {p(1)}}));
  EXPECT_EQ(normalize(r), normalize(Sop{{p(4)}}));
}

TEST(Algebraic, DivideFailure) {
  Sop f = {{p(0), p(1)}};
  Sop q = divide(f, {{p(2)}});
  EXPECT_TRUE(q.empty());
}

TEST(Algebraic, CommonCube) {
  Sop f = normalize({{p(0), p(1), p(2)}, {p(0), p(2), p(3)}});
  EXPECT_EQ(common_cube(f), (CubeL{p(0), p(2)}));
  EXPECT_FALSE(cube_free(f));
  Sop g = normalize({{p(0)}, {p(1)}});
  EXPECT_TRUE(cube_free(g));
}

TEST(Algebraic, KernelsTextbook) {
  // f = adf + aef + bdf + bef + cdf + cef + g
  //   = (a+b+c)(d+e)f + g. Kernels include (a+b+c), (d+e), and f itself
  //   without the common cube... classic example from the MIS papers.
  Sop f = normalize({{p(0), p(3), p(5)},
                     {p(0), p(4), p(5)},
                     {p(1), p(3), p(5)},
                     {p(1), p(4), p(5)},
                     {p(2), p(3), p(5)},
                     {p(2), p(4), p(5)},
                     {p(6)}});
  auto ks = kernels(f);
  auto has = [&](const Sop& k) {
    for (const auto& x : ks) {
      if (x == normalize(k)) return true;
    }
    return false;
  };
  EXPECT_TRUE(has({{p(0)}, {p(1)}, {p(2)}}));
  EXPECT_TRUE(has({{p(3)}, {p(4)}}));
  EXPECT_FALSE(ks.empty());
}

TEST(Algebraic, KernelsOfCubeFreeSop) {
  Sop f = normalize({{p(0)}, {p(1)}});
  auto ks = kernels(f);
  ASSERT_EQ(ks.size(), 1u);  // only f itself
  EXPECT_EQ(ks[0], f);
}

TEST(Algebraic, FactoredLiteralsSingleCube) {
  EXPECT_EQ(factored_literals({{p(0), p(1), n(2)}}), 3);
  EXPECT_EQ(factored_literals({}), 0);
}

TEST(Algebraic, FactoredBeatsFlatOnFactorableSop) {
  // f = ac + ad + bc + bd = (a+b)(c+d): flat 8 literals, factored 4.
  Sop f = normalize(
      {{p(0), p(2)}, {p(0), p(3)}, {p(1), p(2)}, {p(1), p(3)}});
  EXPECT_EQ(sop_literals(f), 8);
  EXPECT_EQ(factored_literals(f), 4);
}

TEST(Algebraic, FactoredCommonCube) {
  // f = abc + abd = ab(c+d): 4 literals factored.
  Sop f = normalize({{p(0), p(1), p(2)}, {p(0), p(1), p(3)}});
  EXPECT_EQ(factored_literals(f), 4);
}

TEST(Algebraic, FactoredNoWorseThanFlat) {
  nova::util::Rng rng(55);
  for (int trial = 0; trial < 40; ++trial) {
    Sop f;
    int ncubes = 1 + rng.uniform(8);
    for (int i = 0; i < ncubes; ++i) {
      CubeL c;
      for (int v = 0; v < 6; ++v) {
        int r = rng.uniform(3);
        if (r == 0) c.push_back(n(v));
        if (r == 1) c.push_back(p(v));
      }
      if (!c.empty()) f.push_back(c);
    }
    if (f.empty()) continue;
    f = normalize(f);
    EXPECT_LE(factored_literals(f), sop_literals(f)) << "trial " << trial;
  }
}

TEST(Algebraic, NetworkSharedExtraction) {
  // Two outputs sharing (a+b): extraction pays off across the network.
  Sop f1 = normalize({{p(0), p(2)}, {p(1), p(2)}, {p(0), p(3)}, {p(1), p(3)}});
  Sop f2 = normalize({{p(0), p(4)}, {p(1), p(4)}, {p(0), p(5)}, {p(1), p(5)}});
  NetworkResult r = optimize_network({f1, f2}, 6);
  EXPECT_EQ(r.sop_lits, 16);
  EXPECT_LT(r.literals, r.sop_lits);
  EXPECT_GE(r.divisors, 1);
}

TEST(Algebraic, NetworkNoStructure) {
  Sop f = {{p(0)}};
  NetworkResult r = optimize_network({f}, 1);
  EXPECT_EQ(r.literals, 1);
  EXPECT_EQ(r.divisors, 0);
}

TEST(Bridge, SopsFromCover) {
  using namespace nova::logic;
  // 2 binary vars + output var with 2 values.
  CubeSpec spec({2, 2, 2});
  Cover g(spec);
  {
    Cube c = Cube::full(spec);
    c.set_binary_from_pla(spec, 0, "01");
    c.set_value(spec, 2, 0);
    g.add(c);
  }
  {
    Cube c = Cube::full(spec);
    c.set_binary_from_pla(spec, 0, "-1");
    c.set(spec.bit(2, 0));  // both outputs asserted
    g.add(c);
  }
  auto sops = sops_from_cover(g, 2, 2);
  ASSERT_EQ(sops.size(), 2u);
  EXPECT_EQ(sops[0].size(), 2u);  // output 0: both cubes
  EXPECT_EQ(sops[1].size(), 1u);  // output 1: second cube only
  // First cube of output 0: x0' x1 -> literals {n(0), p(1)}.
  EXPECT_EQ(sops[0][0], (CubeL{n(0), p(1)}));
}
