// Exact two-level minimization tests, including its use as a quality
// oracle for espresso on random small functions.
#include "logic/exact.hpp"

#include <gtest/gtest.h>

#include "logic/espresso.hpp"
#include "util/rng.hpp"

using namespace nova::logic;
using nova::util::Rng;

namespace {
Cover from_pla(const CubeSpec& s, std::initializer_list<const char*> rows) {
  Cover c(s);
  for (const char* r : rows) {
    Cube q = Cube::full(s);
    q.set_binary_from_pla(s, 0, r);
    c.add(q);
  }
  return c;
}

bool truth(const Cover& F, unsigned m, int n) {
  Cube q = Cube::full(F.spec());
  std::string s(n, '0');
  for (int i = 0; i < n; ++i) s[i] = (m >> i) & 1 ? '1' : '0';
  q.set_binary_from_pla(F.spec(), 0, s);
  return covers_minterm(F, q);
}
}  // namespace

TEST(Consensus, BinaryDistanceOne) {
  CubeSpec s = CubeSpec::binary(2);
  Cube a = Cube::full(s), b = Cube::full(s);
  a.set_binary_from_pla(s, 0, "01");
  b.set_binary_from_pla(s, 0, "11");
  Cube c = consensus(s, a, b, 0);
  ASSERT_TRUE(c.nonempty(s));
  EXPECT_EQ(c.to_string(s), "11|01");  // -1
}

TEST(Consensus, UndefinedAtDistanceTwo) {
  CubeSpec s = CubeSpec::binary(2);
  Cube a = Cube::full(s), b = Cube::full(s);
  a.set_binary_from_pla(s, 0, "00");
  b.set_binary_from_pla(s, 0, "11");
  // Union on var 0, intersection on var 1: empty part -> undefined.
  Cube c = consensus(s, a, b, 0);
  EXPECT_FALSE(c.nonempty(s));
}

TEST(BlakePrimes, XorHasTwoPrimes) {
  CubeSpec s = CubeSpec::binary(2);
  Cover on = from_pla(s, {"01", "10"});
  Cover p = blake_primes(on, Cover(s));
  EXPECT_EQ(p.size(), 2);
}

TEST(BlakePrimes, MajorityHasThreePrimes) {
  CubeSpec s = CubeSpec::binary(3);
  Cover on = from_pla(s, {"110", "101", "011", "111"});
  Cover p = blake_primes(on, Cover(s));
  EXPECT_EQ(p.size(), 3);
}

TEST(BlakePrimes, ConsensusChainFindsBigPrime) {
  // f = a'b' + a'b + ab' + ab = 1: consensus closure must reach '--'.
  CubeSpec s = CubeSpec::binary(2);
  Cover on = from_pla(s, {"00", "01", "10", "11"});
  Cover p = blake_primes(on, Cover(s));
  ASSERT_EQ(p.size(), 1);
  EXPECT_TRUE(p[0].is_full(s));
}

TEST(ExactMin, MajorityIsThreeCubes) {
  CubeSpec s = CubeSpec::binary(3);
  Cover on = from_pla(s, {"110", "101", "011", "111"});
  auto r = exact_minimize(on);
  EXPECT_TRUE(r.optimal);
  EXPECT_EQ(r.cover.size(), 3);
}

TEST(ExactMin, XorIsTwoCubes) {
  CubeSpec s = CubeSpec::binary(2);
  Cover on = from_pla(s, {"01", "10"});
  auto r = exact_minimize(on);
  EXPECT_TRUE(r.optimal);
  EXPECT_EQ(r.cover.size(), 2);
}

TEST(ExactMin, UsesDontCares) {
  CubeSpec s = CubeSpec::binary(3);
  Cover on = from_pla(s, {"000", "011"});
  Cover dc = from_pla(s, {"001", "010"});
  auto r = exact_minimize(on, dc);
  EXPECT_TRUE(r.optimal);
  EXPECT_EQ(r.cover.size(), 1);  // the whole a'=0 face
}

TEST(ExactMin, EmptyOnSet) {
  CubeSpec s = CubeSpec::binary(3);
  auto r = exact_minimize(Cover(s));
  EXPECT_TRUE(r.optimal);
  EXPECT_TRUE(r.cover.empty());
}

TEST(ExactMin, OnInsideDc) {
  CubeSpec s = CubeSpec::binary(2);
  Cover on = from_pla(s, {"01"});
  Cover dc = from_pla(s, {"--"});
  auto r = exact_minimize(on, dc);
  EXPECT_TRUE(r.optimal);
  EXPECT_TRUE(r.cover.empty());
}

TEST(ExactMin, MvSingleVariable) {
  CubeSpec s({6});
  Cover on(s);
  on.add(Cube::from_bits(s, "110000"));
  on.add(Cube::from_bits(s, "011000"));
  on.add(Cube::from_bits(s, "000110"));
  auto r = exact_minimize(on);
  EXPECT_TRUE(r.optimal);
  // Over a single MV variable every value subset is one cube: consensus
  // unions {0,1,2} and {3,4} into the single prime {0,1,2,3,4}.
  EXPECT_EQ(r.cover.size(), 1);
  EXPECT_EQ(r.cover[0].to_string(s), "111110");
}

TEST(ExactMin, EspressoNeverBeatsExact) {
  // The oracle test: on random functions, espresso's cube count is >= the
  // exact minimum, and both covers are equivalent to the spec.
  Rng rng(13579);
  int espresso_total = 0, exact_total = 0;
  for (int trial = 0; trial < 30; ++trial) {
    int n = 3 + rng.uniform(2);  // 3..4 vars
    CubeSpec s = CubeSpec::binary(n);
    Cover on(s);
    for (int i = 0; i < 2 + rng.uniform(6); ++i) {
      std::string row(n, '-');
      for (auto& ch : row) {
        int r = rng.uniform(3);
        ch = r == 0 ? '0' : (r == 1 ? '1' : '-');
      }
      Cube q = Cube::full(s);
      q.set_binary_from_pla(s, 0, row);
      on.add(q);
    }
    if (on.empty()) continue;
    auto ex = exact_minimize(on);
    ASSERT_TRUE(ex.optimal) << "trial " << trial;
    Cover esp = espresso(on);
    EXPECT_GE(esp.size(), ex.cover.size()) << "trial " << trial;
    espresso_total += esp.size();
    exact_total += ex.cover.size();
    for (unsigned m = 0; m < (1u << n); ++m) {
      bool want = truth(on, m, n);
      EXPECT_EQ(truth(ex.cover, m, n), want) << "exact trial " << trial;
      EXPECT_EQ(truth(esp, m, n), want) << "espresso trial " << trial;
    }
  }
  // Espresso should be close to optimal in aggregate (within ~15%).
  EXPECT_LE(espresso_total, exact_total + (exact_total * 3) / 20 + 1);
}

TEST(ExactMin, ReportsStats) {
  CubeSpec s = CubeSpec::binary(3);
  Cover on = from_pla(s, {"110", "101", "011", "111"});
  auto r = exact_minimize(on);
  EXPECT_EQ(r.num_primes, 3);
  EXPECT_EQ(r.num_rows, 4);
}
