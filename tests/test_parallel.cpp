// Determinism of the parallel embedding restarts and the fork-join pool
// underneath them: any thread count (1, 2, 8, and the implicit default)
// must produce byte-identical encodings for the same (seed, restarts), and
// restarts = 1 must reproduce the single-attempt legacy results exactly.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "encoding/hybrid.hpp"
#include "util/budget.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

using namespace nova;
using namespace nova::encoding;
using nova::util::Rng;
using nova::util::ThreadPool;

namespace {

/// Deterministic synthetic constraint set: random subsets of 2..6 states
/// with weights 1..6 -- enough conflict pressure that different restart
/// perturbations genuinely produce different embeddings.
std::vector<InputConstraint> synthetic_constraints(int num_states,
                                                   int count, uint64_t seed) {
  Rng rng(seed);
  std::vector<InputConstraint> ics;
  for (int i = 0; i < count; ++i) {
    util::BitVec s(num_states);
    int card = 2 + rng.uniform(5);
    while (s.count() < card) s.set(rng.uniform(num_states));
    ics.push_back({s, 1 + rng.uniform(6)});
  }
  return ics;
}

int ric_weight(const HybridResult& r) {
  int w = 0;
  for (const auto& ic : r.ric) w += ic.weight;
  return w;
}

}  // namespace

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  for (int threads : {1, 3, 8}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> hits(100);
    for (auto& h : hits) h.store(0);
    pool.run_indexed(100, [&](int i) { hits[i].fetch_add(1); });
    for (int i = 0; i < 100; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPool, HandlesMoreThreadsThanTasks) {
  ThreadPool pool(8);
  std::atomic<int> ran{0};
  pool.run_indexed(3, [&](int) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 3);
  pool.run_indexed(0, [&](int) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 3);
}

TEST(ThreadPool, PropagatesTaskExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.run_indexed(50,
                                [&](int i) {
                                  if (i == 37) throw std::runtime_error("37");
                                }),
               std::runtime_error);
}

TEST(ThreadPool, RemainingTasksRunAfterAThrow) {
  // The contract: the first exception is rethrown after the join, and every
  // other index still runs -- on any thread count, including 1.
  for (int threads : {1, 4}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> hits(40);
    for (auto& h : hits) h.store(0);
    EXPECT_THROW(pool.run_indexed(40,
                                  [&](int i) {
                                    hits[i].fetch_add(1);
                                    if (i == 3) throw std::runtime_error("3");
                                  }),
                 std::runtime_error) << "threads=" << threads;
    for (int i = 0; i < 40; ++i)
      EXPECT_EQ(hits[i].load(), 1) << "threads=" << threads << " i=" << i;
  }
}

TEST(ThreadPool, FirstThrownExceptionWinsOnSingleThread) {
  // Single-thread execution is in index order, so "first" is index 5.
  ThreadPool pool(1);
  try {
    pool.run_indexed(20, [&](int i) {
      if (i == 5) throw std::runtime_error("five");
      if (i == 11) throw std::logic_error("eleven");
    });
    FAIL() << "expected a throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "five");
  }
}

TEST(ThreadPool, DefaultThreadsIsPositive) {
  EXPECT_GE(ThreadPool::default_threads(), 1);
}

TEST(ParallelRestarts, IHybridIdenticalAcrossThreadCounts) {
  auto ics = synthetic_constraints(24, 18, 42);
  HybridOptions base;
  base.restarts = 6;
  base.threads = 1;
  HybridResult want = ihybrid_code(ics, 24, base);
  for (int threads : {2, 8}) {
    HybridOptions ho = base;
    ho.threads = threads;
    HybridResult got = ihybrid_code(ics, 24, ho);
    EXPECT_EQ(got.enc.nbits, want.enc.nbits) << "threads=" << threads;
    EXPECT_EQ(got.enc.codes, want.enc.codes) << "threads=" << threads;
    EXPECT_EQ(got.clength_all, want.clength_all) << "threads=" << threads;
    EXPECT_EQ(ric_weight(got), ric_weight(want)) << "threads=" << threads;
  }
}

TEST(ParallelRestarts, IHybridSingleRestartMatchesLegacy) {
  auto ics = synthetic_constraints(20, 14, 7);
  HybridResult legacy = ihybrid_code(ics, 20, HybridOptions{});
  HybridOptions ho;
  ho.restarts = 1;
  ho.threads = 8;  // must not matter: one attempt is never farmed out
  HybridResult got = ihybrid_code(ics, 20, ho);
  EXPECT_EQ(got.enc.nbits, legacy.enc.nbits);
  EXPECT_EQ(got.enc.codes, legacy.enc.codes);
  EXPECT_EQ(got.clength_all, legacy.clength_all);
}

TEST(ParallelRestarts, IHybridRestartsNeverWorseThanLegacy) {
  // Restart 0 is the unperturbed legacy attempt and ties break toward it,
  // so the merged best can only improve on the single-attempt cost.
  for (uint64_t seed : {3u, 11u, 29u}) {
    auto ics = synthetic_constraints(22, 16, seed);
    HybridResult legacy = ihybrid_code(ics, 22, HybridOptions{});
    HybridOptions ho;
    ho.restarts = 8;
    HybridResult multi = ihybrid_code(ics, 22, ho);
    EXPECT_LE(ric_weight(multi), ric_weight(legacy)) << "seed=" << seed;
  }
}

TEST(ParallelRestarts, IGreedyIdenticalAcrossThreadCounts) {
  auto ics = synthetic_constraints(24, 18, 57);
  GreedyOptions base;
  base.restarts = 6;
  base.threads = 1;
  GreedyResult want = igreedy_code(ics, 24, base);
  for (int threads : {2, 8}) {
    GreedyOptions go = base;
    go.threads = threads;
    GreedyResult got = igreedy_code(ics, 24, go);
    EXPECT_EQ(got.enc.nbits, want.enc.nbits) << "threads=" << threads;
    EXPECT_EQ(got.enc.codes, want.enc.codes) << "threads=" << threads;
    EXPECT_EQ(got.unsatisfied, want.unsatisfied) << "threads=" << threads;
    EXPECT_EQ(got.weight_unsatisfied, want.weight_unsatisfied)
        << "threads=" << threads;
  }
}

TEST(ParallelRestarts, IGreedySingleRestartMatchesLegacy) {
  auto ics = synthetic_constraints(20, 14, 91);
  GreedyResult legacy = igreedy_code(ics, 20, 0);
  GreedyOptions go;
  go.restarts = 1;
  go.threads = 8;
  GreedyResult got = igreedy_code(ics, 20, go);
  EXPECT_EQ(got.enc.nbits, legacy.enc.nbits);
  EXPECT_EQ(got.enc.codes, legacy.enc.codes);
  EXPECT_EQ(got.unsatisfied, legacy.unsatisfied);
}

TEST(ParallelRestarts, IHybridWorkBudgetIdenticalAcrossThreadCounts) {
  // Work budgets are charged per restart attempt (Budget::fork_attempt),
  // so exhaustion points depend only on the attempt index -- the same
  // limit must yield byte-identical encodings at 1, 2 and 8 threads.
  auto ics = synthetic_constraints(24, 18, 42);
  for (long limit : {50L, 500L, 5000L}) {
    nova::util::Budget ref_budget;
    ref_budget.set_work_limit(limit);
    HybridOptions base;
    base.restarts = 6;
    base.threads = 1;
    base.budget = &ref_budget;
    HybridResult want = ihybrid_code(ics, 24, base);
    for (int threads : {2, 8}) {
      nova::util::Budget bud;
      bud.set_work_limit(limit);
      HybridOptions ho = base;
      ho.threads = threads;
      ho.budget = &bud;
      HybridResult got = ihybrid_code(ics, 24, ho);
      EXPECT_EQ(got.enc.nbits, want.enc.nbits)
          << "limit=" << limit << " threads=" << threads;
      EXPECT_EQ(got.enc.codes, want.enc.codes)
          << "limit=" << limit << " threads=" << threads;
    }
  }
}

TEST(ParallelRestarts, IGreedyWorkBudgetIdenticalAcrossThreadCounts) {
  auto ics = synthetic_constraints(24, 18, 57);
  for (long limit : {50L, 1000L}) {
    nova::util::Budget ref_budget;
    ref_budget.set_work_limit(limit);
    GreedyOptions base;
    base.restarts = 6;
    base.threads = 1;
    base.budget = &ref_budget;
    GreedyResult want = igreedy_code(ics, 24, base);
    for (int threads : {2, 8}) {
      nova::util::Budget bud;
      bud.set_work_limit(limit);
      GreedyOptions go = base;
      go.threads = threads;
      go.budget = &bud;
      GreedyResult got = igreedy_code(ics, 24, go);
      EXPECT_EQ(got.enc.nbits, want.enc.nbits)
          << "limit=" << limit << " threads=" << threads;
      EXPECT_EQ(got.enc.codes, want.enc.codes)
          << "limit=" << limit << " threads=" << threads;
    }
  }
}

TEST(ParallelRestarts, IGreedyRestartsNeverWorseThanLegacy) {
  for (uint64_t seed : {13u, 47u, 83u}) {
    auto ics = synthetic_constraints(22, 16, seed);
    GreedyResult legacy = igreedy_code(ics, 22, 0);
    GreedyOptions go;
    go.restarts = 8;
    GreedyResult multi = igreedy_code(ics, 22, go);
    EXPECT_LE(multi.weight_unsatisfied, legacy.weight_unsatisfied)
        << "seed=" << seed;
    if (multi.weight_unsatisfied == legacy.weight_unsatisfied) {
      EXPECT_LE(multi.unsatisfied, legacy.unsatisfied) << "seed=" << seed;
    }
  }
}
