// Crash-safety proof for the batch server: a worker process is SIGKILL'd
// mid-batch, the batch is resumed from the journal, and the concatenated
// outputs are byte-identical to an uninterrupted run, with zero completed
// jobs re-run.
//
// The fixture re-execs the test binary itself (/proc/self/exe) with
// NOVA_SERVE_RESUME_CHILD set: the child runs the batch with a per-job
// delay (NOVA_SERVE_JOB_DELAY_MS) so the parent has a window to observe a
// few `done` journal records land and then kill -9 it.
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "serve/serve.hpp"

using namespace nova;

namespace {

const char* kManifest =
    "bbtas\ndk27\nlion\ndk17\nex3\nbeecount\nlion9\ntrain11\n"
    "dk14\ndk15\nbbara\nshiftreg\n";

std::vector<serve::JobSpec> jobs() {
  std::string err;
  auto j = serve::parse_manifest(kManifest, driver::Algorithm::kIHybrid,
                                 &err);
  EXPECT_TRUE(err.empty()) << err;
  return j;
}

serve::BatchOptions options(const std::string& dir) {
  serve::BatchOptions opts;
  opts.journal_path = dir + "/journal.jsonl";
  opts.out_dir = dir + "/out";
  opts.job_delay_ms = 0;
  return opts;
}

int count_done_records(const std::string& journal) {
  std::ifstream in(journal);
  std::string line;
  int done = 0;
  while (std::getline(in, line)) {
    if (line.find("\"type\":\"done\"") != std::string::npos) ++done;
  }
  return done;
}

}  // namespace

int main(int argc, char** argv) {
  // Child mode: run the batch (slowly) until killed. Must be decided
  // before gtest takes over.
  if (const char* dir = std::getenv("NOVA_SERVE_RESUME_CHILD")) {
    std::string err;
    auto j = serve::parse_manifest(kManifest, driver::Algorithm::kIHybrid,
                                   &err);
    if (!err.empty()) return 3;
    serve::BatchOptions opts = options(dir);
    opts.job_delay_ms = -1;  // honor NOVA_SERVE_JOB_DELAY_MS
    serve::run_batch(j, opts);
    return 0;
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}

TEST(ServeResume, SigkillMidBatchThenResumeIsByteIdentical) {
  std::string base = std::string(::testing::TempDir()) + "nova_sigkill";
  std::string ref_dir = base + "_ref";
  std::string dir = base + "_run";
  for (const std::string& d : {ref_dir, dir}) {
    std::string cmd = "rm -rf " + d;
    ASSERT_EQ(std::system(cmd.c_str()), 0);
  }

  // Reference: the same batch, uninterrupted, in-process.
  auto ref = serve::run_batch(jobs(), options(ref_dir));
  ASSERT_TRUE(ref.complete());
  ASSERT_EQ(ref.failed, 0);
  const std::string reference = ref.concatenated_outputs();

  // Spawn the child worker and kill -9 it after a few jobs completed.
  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    setenv("NOVA_SERVE_RESUME_CHILD", dir.c_str(), 1);
    setenv("NOVA_SERVE_JOB_DELAY_MS", "25", 1);
    execl("/proc/self/exe", "test_serve_resume_child",
          static_cast<char*>(nullptr));
    _exit(3);  // exec failed
  }
  std::string journal = dir + "/journal.jsonl";
  bool killed = false;
  for (int i = 0; i < 4000; ++i) {  // up to ~20 s
    if (count_done_records(journal) >= 2) {
      ASSERT_EQ(kill(pid, SIGKILL), 0);
      killed = true;
      break;
    }
    int status = 0;
    if (waitpid(pid, &status, WNOHANG) == pid) {
      // Child finished everything before we saw two done records — the
      // machine is extremely slow or fast; resume still must hold below.
      pid = -1;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  if (pid > 0) {
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    if (killed) {
      ASSERT_TRUE(WIFSIGNALED(status));
    }
  }
  int done_before_resume = count_done_records(journal);
  ASSERT_GE(done_before_resume, 1);

  // The journal must replay clean even after SIGKILL (at worst a torn
  // final line, which replay tolerates).
  auto rep = serve::replay_journal(journal);
  ASSERT_TRUE(rep.clean());

  // Resume in-process. Jobs recorded done must be skipped, not re-run.
  serve::BatchOptions ropts = options(dir);
  ropts.resume = true;
  auto res = serve::run_batch(jobs(), ropts);
  EXPECT_TRUE(res.complete());
  EXPECT_EQ(res.failed, 0);
  EXPECT_EQ(res.resumed_skips, rep.count_terminal("done"));
  for (const auto& j : res.jobs) {
    const auto* st = rep.find(j.spec.id);
    if (st != nullptr && st->terminal == "done") {
      EXPECT_TRUE(j.resumed_skip) << j.spec.id << " was re-run";
    }
  }

  // The whole batch's concatenated output is byte-identical to the
  // uninterrupted reference run.
  EXPECT_EQ(res.concatenated_outputs(), reference);

  // And the final journal accounts for every job with at most one done
  // record each.
  auto rep2 = serve::replay_journal(journal);
  EXPECT_TRUE(rep2.clean());
  EXPECT_TRUE(rep2.fully_accounted());
  for (const auto& [id, st] : rep2.jobs)
    EXPECT_LE(st.done_records, 1) << id;
}
