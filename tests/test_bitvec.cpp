#include "util/bitvec.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

using nova::util::BitVec;
using nova::util::Rng;

TEST(BitVec, DefaultIsEmptyWidth) {
  BitVec v;
  EXPECT_EQ(v.size(), 0);
  EXPECT_TRUE(v.none());
  EXPECT_EQ(v.count(), 0);
}

TEST(BitVec, SetGetClear) {
  BitVec v(130);
  EXPECT_EQ(v.size(), 130);
  v.set(0);
  v.set(64);
  v.set(129);
  EXPECT_TRUE(v.get(0));
  EXPECT_TRUE(v.get(64));
  EXPECT_TRUE(v.get(129));
  EXPECT_FALSE(v.get(1));
  EXPECT_EQ(v.count(), 3);
  v.clear(64);
  EXPECT_FALSE(v.get(64));
  EXPECT_EQ(v.count(), 2);
}

TEST(BitVec, SetAllMasksTail) {
  BitVec v(70);
  v.set_all();
  EXPECT_EQ(v.count(), 70);
  EXPECT_TRUE(v.all());
  v.flip_all();
  EXPECT_TRUE(v.none());
}

TEST(BitVec, FlipAllTwiceIsIdentity) {
  BitVec v(90);
  v.set(3);
  v.set(89);
  BitVec w = v;
  w.flip_all();
  w.flip_all();
  EXPECT_EQ(v, w);
}

TEST(BitVec, FromStringRoundTrip) {
  std::string s = "1010011";
  BitVec v = BitVec::from_string(s);
  EXPECT_EQ(v.to_string(), s);
  EXPECT_EQ(v.count(), 4);
}

TEST(BitVec, BitwiseOps) {
  BitVec a = BitVec::from_string("1100");
  BitVec b = BitVec::from_string("1010");
  EXPECT_EQ((a & b).to_string(), "1000");
  EXPECT_EQ((a | b).to_string(), "1110");
  EXPECT_EQ((a ^ b).to_string(), "0110");
  BitVec c = a;
  c.subtract(b);
  EXPECT_EQ(c.to_string(), "0100");
}

TEST(BitVec, ContainsAndIntersects) {
  BitVec a = BitVec::from_string("1110");
  BitVec b = BitVec::from_string("0110");
  BitVec c = BitVec::from_string("0001");
  EXPECT_TRUE(a.contains(b));
  EXPECT_FALSE(b.contains(a));
  EXPECT_TRUE(a.contains(a));
  EXPECT_TRUE(a.intersects(b));
  EXPECT_FALSE(a.intersects(c));
  EXPECT_FALSE(c.intersects(b));
}

TEST(BitVec, FirstAndNext) {
  BitVec v(200);
  EXPECT_EQ(v.first(), -1);
  v.set(5);
  v.set(70);
  v.set(199);
  EXPECT_EQ(v.first(), 5);
  EXPECT_EQ(v.next(0), 5);
  EXPECT_EQ(v.next(5), 5);
  EXPECT_EQ(v.next(6), 70);
  EXPECT_EQ(v.next(71), 199);
  EXPECT_EQ(v.next(200), -1);
}

TEST(BitVec, IterationMatchesCount) {
  Rng rng(42);
  BitVec v(300);
  int expected = 0;
  for (int i = 0; i < 300; ++i) {
    if (rng.chance(0.3)) {
      v.set(i);
      ++expected;
    }
  }
  int seen = 0;
  for (int i = v.first(); i >= 0; i = v.next(i + 1)) ++seen;
  EXPECT_EQ(seen, expected);
  EXPECT_EQ(v.count(), expected);
}

TEST(BitVec, EqualityAndOrdering) {
  BitVec a = BitVec::from_string("101");
  BitVec b = BitVec::from_string("101");
  BitVec c = BitVec::from_string("011");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_TRUE(a < c || c < a);
}

TEST(BitVec, HashDiffersForDifferentContent) {
  BitVec a = BitVec::from_string("10101010");
  BitVec b = BitVec::from_string("01010101");
  EXPECT_NE(a.hash(), b.hash());
  BitVec c = a;
  EXPECT_EQ(a.hash(), c.hash());
}

TEST(BitVec, SubtractAliasesSafely) {
  BitVec a = BitVec::from_string("1111");
  a.subtract(a);
  EXPECT_TRUE(a.none());
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, UniformInRange) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    int x = r.uniform(13);
    EXPECT_GE(x, 0);
    EXPECT_LT(x, 13);
  }
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng r(11);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[i] = i;
  auto w = v;
  r.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}
