// Concurrency safety: N threads calling encode_fsm_robust at once under
// armed fault injection and tight budgets (the batch server's exact usage
// pattern), plus a multi-threaded run_batch. Runs under the ASan/UBSan CI
// job; any data race in the fault registry, the obs layer, or the budget
// plumbing surfaces here.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "bench_data/benchmarks.hpp"
#include "check/faultinject.hpp"
#include "nova/robust.hpp"
#include "obs/obs.hpp"
#include "serve/serve.hpp"
#include "util/budget.hpp"
#include "util/thread_pool.hpp"

using namespace nova;
namespace fault = nova::check::fault;

namespace {

const char* kMachines[] = {"lion",  "dk14",     "bbara", "shiftreg",
                           "bbtas", "beecount", "dk27",  "train11"};

}  // namespace

TEST(Concurrent, ParallelRobustEncodesUnderFaultAndBudgets) {
  constexpr int kThreads = 8;
  // One fault armed across the pool: it fires in exactly one thread; every
  // thread must still produce a usable, verified outcome.
  fault::arm("driver.verify:3:error");
  std::vector<std::shared_ptr<obs::Report>> reports(kThreads);
  std::vector<int> usable(kThreads, 0);
  util::ThreadPool pool(kThreads);
  pool.run_indexed(kThreads, [&](int i) {
    reports[i] = std::make_shared<obs::Report>();
    obs::TraceSession session(*reports[i]);
    util::Budget b;
    b.set_work_limit(50 + 100 * i);  // some runs exhaust, some don't
    driver::NovaOptions opts;
    opts.budget = &b;
    driver::RobustOptions ropts;
    auto fsm = bench_data::load_benchmark(kMachines[i % 8]);
    auto out = driver::encode_fsm_robust(fsm, opts, ropts);
    if (out.usable() && out.value.verified &&
        out.value.nova.enc.injective())
      usable[i] = 1;
  });
  fault::disarm();
  long rungs = 0;
  for (int i = 0; i < kThreads; ++i) {
    EXPECT_EQ(usable[i], 1) << "thread " << i;
    // Each thread's counters landed in its own report (per-job isolation).
    EXPECT_GE(reports[i]->counter("robust.rungs_tried"), 1) << i;
    rungs += reports[i]->counter("robust.rungs_tried");
  }
  EXPECT_GE(rungs, kThreads);
}

TEST(Concurrent, FaultRegistryReArmRace) {
  // The soak scheduler re-arms the registry from worker threads while
  // other workers probe it. This must be free of data races (ASan/TSan)
  // and of crashes; which faults actually fire is intentionally fuzzy.
  constexpr int kThreads = 4;
  std::atomic<int> usable{0};
  util::ThreadPool pool(kThreads);
  pool.run_indexed(kThreads, [&](int i) {
    for (int round = 0; round < 6; ++round) {
      if ((i + round) % 2 == 0) {
        fault::arm(round % 2 == 0 ? "driver.verify:1:error"
                                  : "embed.search:2:alloc");
      }
      util::Budget b;
      b.set_work_limit(400);
      driver::NovaOptions opts;
      opts.budget = &b;
      auto fsm = bench_data::load_benchmark(kMachines[(i * 3 + round) % 8]);
      auto out = driver::encode_fsm_robust(fsm, opts);
      if (out.usable()) usable.fetch_add(1);
      if ((i + round) % 2 == 0) fault::disarm();
    }
  });
  fault::disarm();
  EXPECT_EQ(usable.load(), kThreads * 6);
}

TEST(Concurrent, MultiThreadedBatchTerminatesEveryJobAndSumsCounters) {
  std::string manifest;
  for (int i = 0; i < 12; ++i)
    manifest += std::string(kMachines[i % 8]) + " seed=" +
                std::to_string(i + 1) + "\n";
  std::string err;
  auto jobs =
      serve::parse_manifest(manifest, driver::Algorithm::kIHybrid, &err);
  ASSERT_TRUE(err.empty()) << err;
  serve::BatchOptions opts;
  opts.threads = 4;
  opts.job_work_budget = 300;  // tight: forces degradation paths
  opts.keep_sub_reports = true;
  auto res = serve::run_batch(jobs, opts);
  EXPECT_TRUE(res.complete());
  EXPECT_EQ(res.pending, 0);
  int terminal = 0;
  long sub_rungs = 0;
  for (const auto& j : res.jobs) {
    if (j.state != serve::JobState::kPending) ++terminal;
    if (j.state == serve::JobState::kDone ||
        j.state == serve::JobState::kDegraded) {
      EXPECT_FALSE(j.output.empty()) << j.spec.id;
      EXPECT_EQ(j.digest, serve::fnv1a_hex(j.output)) << j.spec.id;
    }
    for (const auto& [name, value] : j.counters)
      if (name == "robust.rungs_tried") sub_rungs += value;
  }
  EXPECT_EQ(terminal, 12);
  // Counter sums hold across sub-reports merged into the batch report.
  EXPECT_EQ(res.report->counter("robust.rungs_tried"), sub_rungs);
  EXPECT_GE(res.report->counter("serve.attempts"), 12);
}

TEST(Concurrent, ParallelBatchWithSoakFaultsStaysAccounted) {
  std::string manifest;
  for (int i = 0; i < 10; ++i)
    manifest += std::string(kMachines[i % 8]) + "\n";
  std::string err;
  auto jobs =
      serve::parse_manifest(manifest, driver::Algorithm::kIHybrid, &err);
  ASSERT_TRUE(err.empty()) << err;
  serve::BatchOptions opts;
  opts.threads = 4;
  opts.fault_rate = 0.5;
  opts.fault_seed = 77;
  auto res = serve::run_batch(jobs, opts);
  EXPECT_TRUE(res.complete());
  EXPECT_EQ(res.done + res.degraded + res.failed, 10);
}
