#include "logic/cube.hpp"

#include <gtest/gtest.h>

using namespace nova::logic;

namespace {
// Two binary variables and one 3-valued variable: bits [ab][cd][efg].
CubeSpec make_spec() { return CubeSpec({2, 2, 3}); }
}  // namespace

TEST(CubeSpec, LayoutOffsets) {
  CubeSpec s = make_spec();
  EXPECT_EQ(s.num_vars(), 3);
  EXPECT_EQ(s.total_bits(), 7);
  EXPECT_EQ(s.offset(0), 0);
  EXPECT_EQ(s.offset(1), 2);
  EXPECT_EQ(s.offset(2), 4);
  EXPECT_EQ(s.bit(2, 2), 6);
  EXPECT_TRUE(s.is_binary(0));
  EXPECT_FALSE(s.is_binary(2));
}

TEST(CubeSpec, BinaryFactory) {
  CubeSpec s = CubeSpec::binary(4);
  EXPECT_EQ(s.num_vars(), 4);
  EXPECT_EQ(s.total_bits(), 8);
}

TEST(Cube, FullCube) {
  CubeSpec s = make_spec();
  Cube f = Cube::full(s);
  EXPECT_TRUE(f.is_full(s));
  EXPECT_TRUE(f.nonempty(s));
  for (int v = 0; v < 3; ++v) EXPECT_TRUE(f.part_full(s, v));
  EXPECT_EQ(f.minterms(s), 2.0L * 2 * 3);
}

TEST(Cube, FromBitsAndToString) {
  CubeSpec s = make_spec();
  Cube c = Cube::from_bits(s, "10|11|010");
  EXPECT_EQ(c.to_string(s), "10|11|010");
  EXPECT_TRUE(c.part_full(s, 1));
  EXPECT_FALSE(c.part_full(s, 0));
  EXPECT_EQ(c.part_count(s, 2), 1);
}

TEST(Cube, SetValueAndSetFull) {
  CubeSpec s = make_spec();
  Cube c = Cube::full(s);
  c.set_value(s, 2, 1);
  EXPECT_EQ(c.to_string(s), "11|11|010");
  c.set_full(s, 2);
  EXPECT_TRUE(c.is_full(s));
}

TEST(Cube, EmptyPartMeansEmptyCube) {
  CubeSpec s = make_spec();
  Cube c(s);  // all zero
  EXPECT_FALSE(c.nonempty(s));
  c.set(0);
  EXPECT_FALSE(c.nonempty(s));  // vars 1,2 still empty
  c.set(2);
  c.set(4);
  EXPECT_TRUE(c.nonempty(s));
}

TEST(Cube, Containment) {
  CubeSpec s = make_spec();
  Cube big = Cube::from_bits(s, "11|11|110");
  Cube small = Cube::from_bits(s, "10|11|010");
  EXPECT_TRUE(big.contains(small));
  EXPECT_FALSE(small.contains(big));
  EXPECT_TRUE(big.contains(big));
}

TEST(Cube, IntersectionEmptyAndNonempty) {
  CubeSpec s = make_spec();
  Cube a = Cube::from_bits(s, "10|11|100");
  Cube b = Cube::from_bits(s, "01|11|110");
  EXPECT_FALSE(a.intersects(s, b));  // var 0 disjoint
  Cube c = Cube::from_bits(s, "11|11|110");
  EXPECT_TRUE(a.intersects(s, c));
  Cube i = a.intersect(c);
  EXPECT_EQ(i.to_string(s), "10|11|100");
}

TEST(Cube, Supercube) {
  CubeSpec s = make_spec();
  Cube a = Cube::from_bits(s, "10|10|100");
  Cube b = Cube::from_bits(s, "01|10|010");
  EXPECT_EQ(a.supercube(b).to_string(s), "11|10|110");
}

TEST(Cube, Distance) {
  CubeSpec s = make_spec();
  Cube a = Cube::from_bits(s, "10|10|100");
  Cube b = Cube::from_bits(s, "01|01|010");
  EXPECT_EQ(a.distance(s, b), 3);
  Cube c = Cube::from_bits(s, "11|10|100");
  EXPECT_EQ(a.distance(s, c), 0);
  Cube d = Cube::from_bits(s, "01|10|100");
  EXPECT_EQ(a.distance(s, d), 1);
}

TEST(Cube, CofactorAgainstValue) {
  CubeSpec s = make_spec();
  // Cofactor of a|b|e-cube against var0 = value 0.
  Cube c = Cube::from_bits(s, "10|01|110");
  Cube p = Cube::full(s);
  p.set_value(s, 0, 0);
  ASSERT_EQ(c.distance(s, p), 0);
  Cube cf = c.cofactor(s, p);
  // The cofactored cube is full in var0 and unchanged elsewhere.
  EXPECT_EQ(cf.to_string(s), "11|01|110");
}

TEST(Cube, CofactorIdentityWithUniverse) {
  CubeSpec s = make_spec();
  Cube c = Cube::from_bits(s, "10|01|110");
  Cube u = Cube::full(s);
  EXPECT_EQ(c.cofactor(s, u), c);
}

TEST(Cube, BinaryPlaParsing) {
  CubeSpec s = CubeSpec::binary(3);
  Cube c = Cube::full(s);
  c.set_binary_from_pla(s, 0, "0-1");
  EXPECT_EQ(c.to_string(s), "10|11|01");
}

TEST(Cube, WeightCountsSetBits) {
  CubeSpec s = make_spec();
  EXPECT_EQ(Cube::full(s).weight(), 7);
  EXPECT_EQ(Cube::from_bits(s, "10|10|100").weight(), 3);
}
