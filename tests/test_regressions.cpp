// Regression tests for bugs found and fixed during development. Each case
// pins the exact scenario that used to go wrong.
#include <gtest/gtest.h>

#include "bench_data/benchmarks.hpp"
#include "constraints/input_constraints.hpp"
#include "encoding/hybrid.hpp"
#include "encoding/io.hpp"
#include "fsm/minimize.hpp"
#include "logic/espresso.hpp"
#include "logic/exact.hpp"
#include "nova/nova.hpp"

using namespace nova;
using namespace nova::logic;

namespace {
Cover from_pla(const CubeSpec& s, std::initializer_list<const char*> rows) {
  Cover c(s);
  for (const char* r : rows) {
    Cube q = Cube::full(s);
    q.set_binary_from_pla(s, 0, r);
    c.add(q);
  }
  return c;
}
}  // namespace

// BUG 1: the essential-prime test used "covered by the rest of the cover",
// which declares EVERY cube of an irredundant cover essential, freezing
// the reduce/expand loop at the first local minimum. The fix uses
// distance-1 consensus augmentation (espresso-II). Symptom: the tav
// machine's encoded PLA stuck at 16 cubes when 7 is optimal.
TEST(Regression, EssentialsDoNotFreezeTheLoop) {
  auto f = bench_data::load_benchmark("tav");
  auto ics = constraints::extract_input_constraints(f).constraints;
  auto hr = encoding::ihybrid_code(ics, f.num_states(), {});
  auto ev = driver::evaluate_encoding(f, hr.enc);
  auto ex = exact_minimize(ev.minimized);
  ASSERT_TRUE(ex.optimal);
  EXPECT_EQ(ev.metrics.cubes, ex.cover.size())
      << "espresso left the tav local minimum unescaped";
}

// BUG 1b: with the broken test, an irredundant two-cube cover had zero
// non-essential cubes. The fixed test must still mark genuinely essential
// primes as essential (each covers a private minterm).
TEST(Regression, TrueEssentialsStillDetected) {
  CubeSpec s = CubeSpec::binary(2);
  Cover F = from_pla(s, {"0-", "-1"});
  auto [ess, rest] = essentials(F, Cover(s));
  EXPECT_EQ(ess.size(), 2);
  EXPECT_EQ(rest.size(), 0);
}

// ... and primes covered by the consensus of their neighbours must be
// non-essential (the cover of x'y + xy' + consensus xx' slice).
TEST(Regression, ConsensusCoveredPrimeIsNotEssential) {
  CubeSpec s = CubeSpec::binary(3);
  // f = ab + a'c + bc: bc is the consensus term, not essential.
  Cover F = from_pla(s, {"11-", "0-1", "-11"});
  auto [ess, rest] = essentials(F, Cover(s));
  EXPECT_EQ(rest.size(), 1);
  // The non-essential cube is exactly bc.
  Cube bc = Cube::full(s);
  bc.set_binary_from_pla(s, 0, "-11");
  ASSERT_EQ(rest.size(), 1);
  EXPECT_EQ(rest[0], bc);
}

// BUG 2: igreedy anchored constraints with no coded member at vertex 0,
// so disjoint constraints piled onto the same corner and placement failed.
// Fixed by seeding each such constraint at a fresh free vertex.
TEST(Regression, IGreedyHandlesDisjointConstraints) {
  using nova::constraints::make_constraint;
  std::vector<encoding::InputConstraint> ics = {
      make_constraint("11000000"), make_constraint("00110000"),
      make_constraint("00001100"), make_constraint("00000011")};
  auto r = encoding::igreedy_code(ics, 8, 3);
  EXPECT_TRUE(r.enc.injective());
  EXPECT_EQ(r.satisfied, 4) << "all four disjoint pairs fit in a 3-cube";
}

// BUG 3: partial face overlap combined with set containment was accepted
// by the embedding verifier (the intersection node check only fired when
// the intersection node was already assigned). The fixed verifier rejects
// it outright; this instance exercises that path via nested constraints.
TEST(Regression, NestedConstraintsEmbedCorrectly) {
  using nova::constraints::make_constraint;
  std::vector<encoding::InputConstraint> ics = {
      make_constraint("111100"), make_constraint("011000"),
      make_constraint("110000")};
  encoding::EmbedOptions eo;
  eo.max_work = 300000;
  auto r = encoding::semiexact_code(ics, 6, 3, eo);
  if (r.success) {
    for (const auto& ic : ics) {
      EXPECT_TRUE(encoding::constraint_satisfied(r.enc, ic))
          << ic.states.to_string();
    }
  }
}

// BUG 4: the structured benchmark generator produced more rows than the
// Table-I budget because row dropping was probabilistic. It is exact now.
TEST(Regression, GeneratorRespectsTermBudget) {
  for (const auto& b : bench_data::table1_benchmarks()) {
    if (!b.synthetic) continue;
    auto f = bench_data::load_benchmark(b.name);
    EXPECT_LE(f.num_transitions(), b.terms) << b.name;
  }
}

// BUG 5: lion9's hand-written table was nondeterministic ("01" overlapped
// "-1" in st3) and later behaviourally collapsible to 2 states. The
// current table is deterministic and non-degenerate.
TEST(Regression, Lion9DeterministicAndNonDegenerate) {
  auto f = bench_data::load_benchmark("lion9");
  for (const auto& issue : f.validate()) {
    EXPECT_NE(issue.kind, fsm::Fsm::ValidationIssue::kNondeterministic)
        << issue.detail;
  }
  auto red = fsm::minimize_states(f);
  ASSERT_TRUE(red.applied);
  EXPECT_GE(red.classes, 8) << "lion9 must not collapse to a toy machine";
}

// BUG 6: out_encoder shifted 1 << state for state >= 64 (UB). The wide
// fallback must return a sane injective encoding.
TEST(Regression, OutEncoderWideStatesNoUb) {
  std::vector<encoding::OutputConstraint> ocs;
  for (int i = 0; i < 32; ++i) ocs.push_back({i, i + 32});
  auto e = encoding::out_encoder(ocs, 70);
  EXPECT_TRUE(e.injective());
}
