// Anytime-budget semantics: the Budget object itself, early return with
// valid results from espresso and the embedding search, and the driver's
// degradation ladder (encode_fsm_robust) -- which must produce a verified
// encoding under any budget, including zero, and reproduce encode_fsm
// byte-for-byte when no budget is configured.
#include "util/budget.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "bench_data/benchmarks.hpp"
#include "encoding/embed.hpp"
#include "encoding/poset.hpp"
#include "logic/espresso.hpp"
#include "nova/nova.hpp"
#include "nova/robust.hpp"
#include "nova/verify.hpp"
#include "util/outcome.hpp"
#include "util/rng.hpp"

using namespace nova;
using nova::util::Budget;
using nova::util::BudgetStop;

TEST(Budget, UnlimitedByDefault) {
  Budget b;
  EXPECT_FALSE(b.limited());
  for (int i = 0; i < 10000; ++i) EXPECT_TRUE(b.charge());
  EXPECT_TRUE(b.checkpoint());
  EXPECT_FALSE(b.exhausted());
  EXPECT_EQ(b.stop_reason(), BudgetStop::kNone);
}

TEST(Budget, WorkLimitTripsAndSticks) {
  Budget b;
  b.set_work_limit(10);
  EXPECT_TRUE(b.limited());
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(b.charge()) << i;
  EXPECT_FALSE(b.charge());
  EXPECT_TRUE(b.exhausted());
  EXPECT_EQ(b.stop_reason(), BudgetStop::kWork);
  // Sticky: no probe ever succeeds again.
  EXPECT_FALSE(b.charge());
  EXPECT_FALSE(b.checkpoint());
  EXPECT_FALSE(b.charge_alloc(1));
}

TEST(Budget, AllocCapTrips) {
  Budget b;
  b.set_alloc_limit(1000);
  EXPECT_TRUE(b.charge_alloc(600));
  EXPECT_TRUE(b.charge_alloc(400));
  EXPECT_FALSE(b.charge_alloc(1));
  EXPECT_EQ(b.stop_reason(), BudgetStop::kAlloc);
}

TEST(Budget, CancelTripsFromOutside) {
  Budget b;
  EXPECT_TRUE(b.charge());
  b.cancel();
  EXPECT_FALSE(b.charge());
  EXPECT_EQ(b.stop_reason(), BudgetStop::kCancelled);
}

TEST(Budget, PastDeadlineTripsOnCheckpoint) {
  Budget b;
  b.set_deadline(Budget::Clock::now() - std::chrono::milliseconds(1));
  EXPECT_FALSE(b.checkpoint());
  EXPECT_EQ(b.stop_reason(), BudgetStop::kDeadline);
}

TEST(Budget, FirstTripReasonWins) {
  Budget b;
  b.set_work_limit(0);
  EXPECT_FALSE(b.charge());
  b.cancel();  // must not overwrite the original reason
  EXPECT_EQ(b.stop_reason(), BudgetStop::kWork);
}

TEST(Budget, ForkAttemptGetsFreshCountersAndSameLimits) {
  Budget b;
  b.set_work_limit(5);
  for (int i = 0; i < 3; ++i) b.charge();
  Budget child = b.fork_attempt();
  EXPECT_EQ(child.work_used(), 0);
  EXPECT_EQ(child.work_limit(), 5);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(child.charge()) << i;
  EXPECT_FALSE(child.charge());
  // The child tripping does not touch the parent.
  EXPECT_FALSE(b.exhausted());
}

TEST(Budget, ForkAttemptPropagatesTrippedState) {
  Budget b;
  b.cancel();
  Budget child = b.fork_attempt();
  EXPECT_TRUE(child.exhausted());
  EXPECT_EQ(child.stop_reason(), BudgetStop::kCancelled);
}

TEST(Budget, FromEnvReadsKnobs) {
  ASSERT_EQ(setenv("NOVA_WORK_BUDGET", "1234", 1), 0);
  ASSERT_EQ(unsetenv("NOVA_DEADLINE_MS"), 0);
  Budget b = Budget::from_env();
  EXPECT_TRUE(b.limited());
  EXPECT_EQ(b.work_limit(), 1234);
  ASSERT_EQ(unsetenv("NOVA_WORK_BUDGET"), 0);
  EXPECT_FALSE(Budget::from_env().limited());
}

namespace {

logic::Cover random_cover(const logic::CubeSpec& spec, int cubes,
                          uint64_t seed) {
  util::Rng rng(seed);
  logic::Cover c(spec);
  const int n = spec.num_vars() - 1;
  for (int i = 0; i < cubes; ++i) {
    logic::Cube q = logic::Cube::full(spec);
    std::string bits(n, '0');
    for (int v = 0; v < n; ++v)
      bits[v] = "01-"[rng.uniform(3)];
    q.set_binary_from_pla(spec, 0, bits);
    c.add(q);
  }
  return c;
}

bool minterm_covered(const logic::Cover& F, unsigned m, int n) {
  logic::Cube q = logic::Cube::full(F.spec());
  std::string s(n, '0');
  for (int i = 0; i < n; ++i) s[i] = (m >> i) & 1 ? '1' : '0';
  q.set_binary_from_pla(F.spec(), 0, s);
  return logic::covers_minterm(F, q);
}

}  // namespace

TEST(AnytimeEspresso, ExhaustedRunStillReturnsValidCover) {
  const int n = 6;
  logic::CubeSpec spec = logic::CubeSpec::binary(n);
  logic::Cover on = random_cover(spec, 20, 5);
  logic::Cover dc(spec);
  for (long limit : {0L, 1L, 10L, 100L}) {
    util::Budget bud;
    bud.set_work_limit(limit);
    logic::EspressoOptions opts;
    opts.budget = &bud;
    logic::EspressoStats stats;
    logic::Cover r = logic::espresso(on, dc, opts, &stats);
    // ON subseteq R subseteq ON (dc empty): same function, any cube count.
    for (unsigned m = 0; m < (1u << n); ++m) {
      EXPECT_EQ(minterm_covered(r, m, n), minterm_covered(on, m, n))
          << "limit=" << limit << " minterm=" << m;
    }
  }
}

TEST(AnytimeEspresso, TinyBudgetSetsExhaustedFlag) {
  logic::CubeSpec spec = logic::CubeSpec::binary(6);
  logic::Cover on = random_cover(spec, 20, 5);
  util::Budget bud;
  bud.set_work_limit(1);
  logic::EspressoOptions opts;
  opts.budget = &bud;
  logic::EspressoStats stats;
  logic::espresso(on, logic::Cover(spec), opts, &stats);
  EXPECT_TRUE(stats.budget_exhausted);
  EXPECT_TRUE(bud.exhausted());
}

TEST(AnytimeEspresso, NullAndUnlimitedBudgetAreIdentical) {
  logic::CubeSpec spec = logic::CubeSpec::binary(7);
  logic::Cover on = random_cover(spec, 24, 11);
  logic::Cover plain = logic::espresso(on);
  util::Budget bud;  // unlimited
  logic::EspressoOptions opts;
  opts.budget = &bud;
  logic::Cover budgeted = logic::espresso(on, logic::Cover(spec), opts);
  ASSERT_EQ(plain.size(), budgeted.size());
  for (int i = 0; i < plain.size(); ++i)
    EXPECT_TRUE(plain[i] == budgeted[i]) << i;
}

TEST(AnytimeEmbed, IExactSurfacesExhaustion) {
  // A constraint set iexact cannot settle within one work unit.
  std::vector<encoding::InputConstraint> ics;
  util::Rng rng(3);
  for (int i = 0; i < 10; ++i) {
    util::BitVec s(12);
    while (s.count() < 3) s.set(rng.uniform(12));
    ics.push_back({s, 1});
  }
  encoding::InputGraph ig(ics, 12);
  util::Budget bud;
  bud.set_work_limit(1);
  encoding::ExactOptions opts;
  opts.budget = &bud;
  encoding::ExactResult r = encoding::iexact_code(ig, opts);
  EXPECT_TRUE(r.exhausted);
  EXPECT_FALSE(r.success);
}

TEST(RobustLadder, ZeroWorkBudgetYieldsVerifiedEncoding) {
  fsm::Fsm f = bench_data::load_benchmark("bbara");
  util::Budget bud;
  bud.set_work_limit(0);
  driver::NovaOptions opts;
  opts.budget = &bud;
  auto outcome = driver::encode_fsm_robust(f, opts);
  ASSERT_TRUE(outcome.usable()) << outcome.detail;
  EXPECT_NE(outcome.status, util::Status::kOk);
  const auto& rr = outcome.value;
  EXPECT_TRUE(rr.verified);
  ASSERT_EQ(rr.nova.enc.num_states(), f.num_states());
  EXPECT_TRUE(rr.nova.enc.injective());
  auto vr = driver::verify_encoding(f, rr.nova.enc);
  EXPECT_TRUE(vr.equivalent) << vr.detail;
}

TEST(RobustLadder, PastDeadlineYieldsVerifiedEncoding) {
  fsm::Fsm f = bench_data::load_benchmark("dk14");
  util::Budget bud;
  bud.set_deadline(Budget::Clock::now() - std::chrono::milliseconds(1));
  driver::NovaOptions opts;
  opts.budget = &bud;
  auto outcome = driver::encode_fsm_robust(f, opts);
  ASSERT_TRUE(outcome.usable()) << outcome.detail;
  EXPECT_TRUE(outcome.value.verified);
  EXPECT_TRUE(outcome.value.nova.enc.injective());
}

TEST(RobustLadder, IExactExhaustionDowngradesToUsableEncoding) {
  fsm::Fsm f = bench_data::load_benchmark("bbara");
  driver::NovaOptions opts;
  opts.algorithm = driver::Algorithm::kIExact;
  opts.exact_work = 1;  // force the iexact rung to fail
  auto outcome = driver::encode_fsm_robust(f, opts);
  ASSERT_TRUE(outcome.usable()) << outcome.detail;
  EXPECT_EQ(outcome.status, util::Status::kDegraded);
  EXPECT_GE(outcome.value.downgrades, 1);
  EXPECT_TRUE(outcome.value.verified);
}

TEST(RobustLadder, NoBudgetMatchesEncodeFsmExactly) {
  // With no budget configured the robust path must be a pass-through:
  // same algorithm, byte-identical encoding, identical metrics.
  for (const char* name : {"bbara", "dk14", "lion", "train11", "shiftreg"}) {
    fsm::Fsm f = bench_data::load_benchmark(name);
    driver::NovaOptions opts;
    driver::NovaResult want = driver::encode_fsm(f, opts);
    driver::RobustOptions ropts;
    ropts.budget_from_env = false;
    auto outcome = driver::encode_fsm_robust(f, opts, ropts);
    ASSERT_TRUE(outcome.ok()) << name << ": " << outcome.detail;
    const auto& got = outcome.value;
    EXPECT_EQ(got.downgrades, 0) << name;
    EXPECT_FALSE(got.used_sequential) << name;
    EXPECT_EQ(got.nova.enc.nbits, want.enc.nbits) << name;
    EXPECT_EQ(got.nova.enc.codes, want.enc.codes) << name;
    EXPECT_EQ(got.nova.metrics.cubes, want.metrics.cubes) << name;
    EXPECT_EQ(got.nova.metrics.area, want.metrics.area) << name;
  }
}

TEST(RobustLadder, TableBenchmarksUnchangedByUnlimitedBudget) {
  // An unlimited Budget object threaded through the pipeline must also be
  // a no-op: every charge succeeds, so no early-out path can fire. Spot
  // check a slice of the Table I / Table V workload.
  for (const char* name : {"dk27", "bbtas", "beecount", "lion9", "modulo12"}) {
    fsm::Fsm f = bench_data::load_benchmark(name);
    driver::NovaOptions plain;
    driver::NovaResult want = driver::encode_fsm(f, plain);
    util::Budget bud;  // no limits
    driver::NovaOptions budgeted;
    budgeted.budget = &bud;
    driver::NovaResult got = driver::encode_fsm(f, budgeted);
    EXPECT_FALSE(got.budget_exhausted) << name;
    EXPECT_EQ(got.enc.nbits, want.enc.nbits) << name;
    EXPECT_EQ(got.enc.codes, want.enc.codes) << name;
    EXPECT_EQ(got.metrics.area, want.metrics.area) << name;
  }
}

TEST(RobustLadder, WorkBudgetLadderIsDeterministic) {
  fsm::Fsm f = bench_data::load_benchmark("bbara");
  auto run = [&] {
    util::Budget bud;
    bud.set_work_limit(500);
    driver::NovaOptions opts;
    opts.budget = &bud;
    auto outcome = driver::encode_fsm_robust(f, opts);
    EXPECT_TRUE(outcome.usable()) << outcome.detail;
    return outcome.value.nova.enc;
  };
  encoding::Encoding first = run();
  for (int i = 0; i < 3; ++i) {
    encoding::Encoding again = run();
    EXPECT_EQ(again.nbits, first.nbits);
    EXPECT_EQ(again.codes, first.codes);
  }
}
