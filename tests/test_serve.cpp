// The batch-serving subsystem: manifest parsing, journal round-trip and
// torn-tail tolerance, atomic file writes, deterministic retry backoff, the
// circuit breaker, and run_batch itself — happy path, retry under injected
// faults, breaker short-circuit, graceful drain, resume, and the serve-site
// fault sweep.
#include "serve/serve.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "check/faultinject.hpp"
#include "serve/drain.hpp"
#include "util/fileio.hpp"

using namespace nova;
namespace fault = nova::check::fault;

namespace {

/// Disarms on scope exit so one test's fault cannot leak into the next.
struct Armed {
  explicit Armed(const std::string& spec) { fault::arm(spec); }
  ~Armed() { fault::disarm(); }
};

std::string tmp_dir(const std::string& name) {
  std::string dir =
      std::string(::testing::TempDir()) + "nova_serve_" + name;
  EXPECT_TRUE(util::ensure_dir(dir));
  return dir;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::vector<serve::JobSpec> jobs_from(const std::string& manifest) {
  std::string err;
  auto jobs =
      serve::parse_manifest(manifest, driver::Algorithm::kIHybrid, &err);
  EXPECT_TRUE(err.empty()) << err;
  return jobs;
}

}  // namespace

// ---------------------------------------------------------------- manifest

TEST(Manifest, ParsesSpecsOverridesAndComments) {
  auto jobs = jobs_from(
      "# header comment\n"
      "lion\n"
      "dk14 alg=igreedy nbits=4 seed=9 class=dk\n"
      "\n"
      "bbara  # trailing comment\n");
  ASSERT_EQ(jobs.size(), 3u);
  EXPECT_EQ(jobs[0].spec, "lion");
  EXPECT_EQ(jobs[0].id, "0000-lion");
  EXPECT_EQ(jobs[0].cls, "lion");
  EXPECT_EQ(jobs[1].algorithm, driver::Algorithm::kIGreedy);
  EXPECT_EQ(jobs[1].nbits, 4);
  EXPECT_EQ(jobs[1].seed, 9u);
  EXPECT_EQ(jobs[1].cls, "dk");
  EXPECT_EQ(jobs[2].index, 2);
}

TEST(Manifest, UniqueIdsForRepeatedSpecs) {
  auto jobs = jobs_from("lion\nlion\nlion\n");
  ASSERT_EQ(jobs.size(), 3u);
  EXPECT_NE(jobs[0].id, jobs[1].id);
  EXPECT_NE(jobs[1].id, jobs[2].id);
}

TEST(Manifest, RejectsMalformedLines) {
  std::string err;
  EXPECT_TRUE(
      serve::parse_manifest("lion alg=nosuch\n", driver::Algorithm::kIHybrid,
                            &err)
          .empty());
  EXPECT_NE(err.find("nosuch"), std::string::npos);
  err.clear();
  EXPECT_TRUE(serve::parse_manifest("lion bogus\n",
                                    driver::Algorithm::kIHybrid, &err)
                  .empty());
  EXPECT_FALSE(err.empty());
}

TEST(Manifest, DigestIsStableAndCoversOverrides) {
  auto a = jobs_from("lion\ndk14\n");
  auto b = jobs_from("lion\ndk14\n");
  auto c = jobs_from("lion seed=2\ndk14\n");
  EXPECT_EQ(serve::manifest_digest(a), serve::manifest_digest(b));
  EXPECT_NE(serve::manifest_digest(a), serve::manifest_digest(c));
}

TEST(Manifest, AlgorithmNamesRoundTrip) {
  for (const char* name :
       {"iexact", "ihybrid", "igreedy", "iohybrid", "iovariant", "kiss",
        "mustang-p", "mustang-n", "random"}) {
    driver::Algorithm a;
    ASSERT_TRUE(serve::parse_algorithm(name, &a)) << name;
    EXPECT_STREQ(serve::algorithm_name(a), name);
  }
  driver::Algorithm a;
  EXPECT_FALSE(serve::parse_algorithm("bogus", &a));
}

// ----------------------------------------------------------------- journal

TEST(Journal, RoundTripsRecordsIntoPerJobState) {
  std::string path = tmp_dir("journal") + "/j.jsonl";
  std::remove(path.c_str());
  {
    serve::Journal j;
    j.open(path);
    j.record_batch("abcd", 2, false);
    j.record_queued("0000-a", "a");
    j.record_queued("0001-b", "b");
    j.record_running("0000-a", 1);
    j.record_retry("0000-a", 2, 64, "boom");
    j.record_running("0000-a", 2);
    j.record_done("0000-a", "00112233445566aa", 2, 42);
    j.record_running("0001-b", 1);
    j.record_failed("0001-b", "bad spec", 1);
    j.close();
  }
  auto rep = serve::replay_journal(path);
  EXPECT_TRUE(rep.clean());
  EXPECT_FALSE(rep.truncated_tail);
  EXPECT_EQ(rep.manifest_digest, "abcd");
  ASSERT_EQ(rep.jobs.size(), 2u);
  const auto* a = rep.find("0000-a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->terminal, "done");
  EXPECT_EQ(a->digest, "00112233445566aa");
  EXPECT_EQ(a->attempts, 2);
  const auto* b = rep.find("0001-b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->terminal, "failed");
  EXPECT_EQ(b->cause, "bad spec");
  EXPECT_TRUE(rep.fully_accounted());
  EXPECT_EQ(rep.count_terminal("done"), 1);
  EXPECT_EQ(rep.count_terminal("failed"), 1);
}

TEST(Journal, ToleratesTornFinalLineOnly) {
  std::string path = tmp_dir("torn") + "/j.jsonl";
  {
    std::ofstream out(path, std::ios::binary);
    out << R"({"type":"queued","job":"x","class":"x"})" << "\n";
    out << R"({"type":"done","job":"x","dig)";  // crash mid-append
  }
  auto rep = serve::replay_journal(path);
  EXPECT_TRUE(rep.clean());
  EXPECT_TRUE(rep.truncated_tail);
  const auto* x = rep.find("x");
  ASSERT_NE(x, nullptr);
  EXPECT_EQ(x->terminal, "");  // the torn record never happened
  EXPECT_FALSE(rep.fully_accounted());
}

TEST(Journal, MalformedInteriorLineIsCorruption) {
  std::string path = tmp_dir("corrupt") + "/j.jsonl";
  {
    std::ofstream out(path, std::ios::binary);
    out << "not json at all\n";
    out << R"({"type":"queued","job":"x","class":"x"})" << "\n";
  }
  auto rep = serve::replay_journal(path);
  EXPECT_FALSE(rep.clean());
}

TEST(Journal, MissingFileIsEmptyAndClean) {
  auto rep = serve::replay_journal(tmp_dir("nofile") + "/absent.jsonl");
  EXPECT_TRUE(rep.clean());
  EXPECT_TRUE(rep.jobs.empty());
}

TEST(Journal, DigestIsFnv1a) {
  EXPECT_EQ(serve::fnv1a_hex(""), "cbf29ce484222325");
  EXPECT_EQ(serve::fnv1a_hex("a"), "af63dc4c8601ec8c");
  EXPECT_EQ(serve::fnv1a_hex("hello"), "a430d84680aabd0b");
}

// ------------------------------------------------------------ atomic write

TEST(FileIo, AtomicWriteReplacesWholeFile) {
  std::string dir = tmp_dir("atomic");
  std::string path = dir + "/r.json";
  ASSERT_TRUE(util::write_file_atomic(path, "first"));
  EXPECT_EQ(read_file(path), "first");
  ASSERT_TRUE(util::write_file_atomic(path, "second, longer content"));
  EXPECT_EQ(read_file(path), "second, longer content");
  // No temp file left behind.
  EXPECT_TRUE(read_file(path + ".tmp").empty());
}

TEST(FileIo, AtomicWriteFailsCleanlyOnBadPath) {
  EXPECT_FALSE(util::write_file_atomic(
      tmp_dir("atomicbad") + "/no/such/dir/r.json", "x"));
}

TEST(FileIo, EnsureDirCreatesNestedPaths) {
  std::string dir = tmp_dir("mkdirs") + "/a/b/c";
  EXPECT_TRUE(util::ensure_dir(dir));
  EXPECT_TRUE(util::ensure_dir(dir));  // idempotent
  ASSERT_TRUE(util::write_file_atomic(dir + "/f", "ok"));
}

// ------------------------------------------------------------------- retry

TEST(Retry, BackoffIsDeterministicAndExponential) {
  serve::RetryPolicy p;
  EXPECT_EQ(p.backoff_units(2, 7), p.backoff_units(2, 7));
  EXPECT_EQ(p.backoff_units(3, 7), p.backoff_units(3, 7));
  // Different jobs get different jitter; different attempts grow roughly
  // exponentially (jitter is bounded by +-25%).
  EXPECT_NE(p.backoff_units(2, 7), p.backoff_units(2, 8));
  long b2 = p.backoff_units(2, 7), b3 = p.backoff_units(3, 7),
       b4 = p.backoff_units(4, 7);
  EXPECT_GE(b2, p.base_backoff_units * 3 / 4);
  EXPECT_LE(b2, p.base_backoff_units * 5 / 4);
  EXPECT_GT(b3, b2 / 2);
  EXPECT_GT(b4, b3 / 2);
  EXPECT_LE(b4, p.max_backoff_units);
}

TEST(Retry, BackoffRespectsCap) {
  serve::RetryPolicy p;
  p.base_backoff_units = 1 << 19;
  long b = p.backoff_units(10, 3);
  EXPECT_LE(b, p.max_backoff_units + p.max_backoff_units / 4);
  EXPECT_GE(b, 1);
}

TEST(Breaker, OpensAfterThresholdAndRecloses) {
  serve::CircuitBreaker br(3, 100);
  EXPECT_TRUE(br.admit(0));
  EXPECT_FALSE(br.on_failure(1));
  EXPECT_FALSE(br.on_failure(2));
  EXPECT_TRUE(br.on_failure(3));  // third consecutive failure: trips
  EXPECT_EQ(br.state(4), serve::CircuitBreaker::State::kOpen);
  EXPECT_FALSE(br.admit(4));
  // After the cooldown one probe is admitted, a second is not.
  EXPECT_EQ(br.state(103), serve::CircuitBreaker::State::kHalfOpen);
  EXPECT_TRUE(br.admit(103));
  EXPECT_FALSE(br.admit(103));
  br.on_success();
  EXPECT_EQ(br.state(104), serve::CircuitBreaker::State::kClosed);
  EXPECT_TRUE(br.admit(104));
}

TEST(Breaker, FailedProbeRestartsCooldown) {
  serve::CircuitBreaker br(1, 100);
  EXPECT_TRUE(br.on_failure(0));
  EXPECT_TRUE(br.admit(100));       // half-open probe
  EXPECT_FALSE(br.on_failure(100));  // probe fails: still open
  EXPECT_FALSE(br.admit(150));       // cooldown restarted at 100
  EXPECT_TRUE(br.admit(200));
}

// --------------------------------------------------------------- run_batch

TEST(Batch, HappyPathIsDeterministic) {
  auto jobs = jobs_from("lion\ndk14\nshiftreg\n");
  serve::BatchOptions opts;
  auto r1 = serve::run_batch(jobs, opts);
  auto r2 = serve::run_batch(jobs, opts);
  EXPECT_EQ(r1.done, 3);
  EXPECT_EQ(r1.failed + r1.degraded + r1.pending, 0);
  EXPECT_TRUE(r1.complete());
  EXPECT_FALSE(r1.drained);
  std::string out1 = r1.concatenated_outputs();
  EXPECT_EQ(out1, r2.concatenated_outputs());
  EXPECT_NE(out1.find(".code"), std::string::npos);
  for (const auto& j : r1.jobs) {
    EXPECT_EQ(j.state, serve::JobState::kDone);
    EXPECT_EQ(j.digest, serve::fnv1a_hex(j.output));
    EXPECT_EQ(j.attempts, 1);
  }
  ASSERT_TRUE(r1.report != nullptr);
  EXPECT_EQ(r1.report->counter("serve.jobs_done"), 3);
  EXPECT_EQ(r1.report->counter("serve.attempts"), 3);
}

TEST(Batch, CountersSumAcrossSubReports) {
  auto jobs = jobs_from("lion\nbbara\n");
  serve::BatchOptions opts;
  opts.keep_sub_reports = true;
  auto res = serve::run_batch(jobs, opts);
  ASSERT_TRUE(res.complete());
  long sub_sum = 0;
  for (const auto& j : res.jobs) {
    for (const auto& [name, value] : j.counters) {
      if (name == "robust.rungs_tried") sub_sum += value;
    }
  }
  EXPECT_GT(sub_sum, 0);
  // Every sub-report counter was merged into the batch report, so the batch
  // total equals the sum over jobs.
  EXPECT_EQ(res.report->counter("robust.rungs_tried"), sub_sum);
}

TEST(Batch, RetriesAfterInjectedFaultThenSucceeds) {
  auto jobs = jobs_from("lion\n");
  serve::BatchOptions opts;
  Armed armed("serve.job:1:error");  // fires once: first attempt only
  auto res = serve::run_batch(jobs, opts);
  EXPECT_TRUE(res.complete());
  EXPECT_EQ(res.done, 1);
  EXPECT_EQ(res.retries, 1);
  EXPECT_EQ(res.jobs[0].attempts, 2);
  EXPECT_GT(res.jobs[0].backoff_units, 0);
}

TEST(Batch, FailedJobIsIsolatedAndTerminal) {
  auto jobs = jobs_from("no_such_benchmark\nlion\n");
  serve::BatchOptions opts;
  opts.retry.max_attempts = 2;
  auto res = serve::run_batch(jobs, opts);
  EXPECT_TRUE(res.complete());
  EXPECT_EQ(res.failed, 1);
  EXPECT_EQ(res.done, 1);
  EXPECT_EQ(res.jobs[0].state, serve::JobState::kFailed);
  EXPECT_NE(res.jobs[0].note.find("no_such_benchmark"), std::string::npos);
  EXPECT_EQ(res.jobs[0].attempts, 2);
  EXPECT_EQ(res.jobs[1].state, serve::JobState::kDone);
}

TEST(Batch, BreakerShortCircuitsToSafeModeDegraded) {
  // Two hard-failing jobs open the class breaker; the third job of the
  // same class is a valid machine and completes in safe mode: terminal
  // `degraded`, cause "breaker".
  auto jobs = jobs_from(
      "no_such_1 class=mix\n"
      "no_such_2 class=mix\n"
      "lion class=mix\n");
  serve::BatchOptions opts;
  opts.retry.max_attempts = 1;
  opts.breaker_threshold = 2;
  opts.breaker_cooldown_units = 1000000;  // stays open for the whole batch
  auto res = serve::run_batch(jobs, opts);
  EXPECT_TRUE(res.complete());
  EXPECT_EQ(res.failed, 2);
  EXPECT_EQ(res.breaker_trips, 1);
  ASSERT_EQ(res.jobs[2].state, serve::JobState::kDegraded);
  EXPECT_EQ(res.jobs[2].note, "breaker");
  EXPECT_FALSE(res.jobs[2].output.empty());
  EXPECT_EQ(res.jobs[2].digest, serve::fnv1a_hex(res.jobs[2].output));
  EXPECT_EQ(res.report->counter("serve.breaker_open"), 1);
  EXPECT_EQ(res.report->counter("serve.breaker_shortcircuit"), 1);
}

TEST(Batch, DrainLeavesPendingJobsAndResumeFinishes) {
  std::string dir = tmp_dir("drain");
  std::string journal = dir + "/j.jsonl";
  std::remove(journal.c_str());
  auto jobs = jobs_from("lion\nlion seed=2\nlion seed=3\nlion seed=4\n");
  serve::BatchOptions opts;
  opts.journal_path = journal;
  opts.out_dir = dir + "/out";
  opts.job_delay_ms = 30;  // every attempt outlasts the watcher's poll
  serve::reset_drain();
  serve::request_drain();
  auto res = serve::run_batch(jobs, opts);
  serve::reset_drain();
  EXPECT_TRUE(res.drained);
  EXPECT_FALSE(res.complete());
  EXPECT_GE(res.pending, 2);

  // Resume finishes the batch; already-terminal jobs are not re-run.
  serve::BatchOptions ropts = opts;
  ropts.job_delay_ms = 0;
  ropts.resume = true;
  auto res2 = serve::run_batch(jobs, ropts);
  EXPECT_TRUE(res2.complete());
  EXPECT_FALSE(res2.drained);
  EXPECT_EQ(res2.done + res2.degraded + res2.failed, 4);
  auto rep = serve::replay_journal(journal);
  EXPECT_TRUE(rep.clean());
  EXPECT_TRUE(rep.fully_accounted());
  // The journal never accumulates a second done record for any job.
  for (const auto& [id, st] : rep.jobs) EXPECT_LE(st.done_records, 1) << id;
}

TEST(Batch, ResumeSkipsTerminalJobsAndIsByteIdentical) {
  std::string dir = tmp_dir("resume");
  std::string journal = dir + "/j.jsonl";
  std::remove(journal.c_str());
  auto jobs = jobs_from("lion\ndk14\nbbara\n");
  serve::BatchOptions opts;
  opts.journal_path = journal;
  opts.out_dir = dir + "/out";
  auto res1 = serve::run_batch(jobs, opts);
  ASSERT_TRUE(res1.complete());
  std::string reference = res1.concatenated_outputs();

  serve::BatchOptions ropts = opts;
  ropts.resume = true;
  auto res2 = serve::run_batch(jobs, ropts);
  EXPECT_TRUE(res2.complete());
  EXPECT_EQ(res2.resumed_skips, 3);
  EXPECT_EQ(res2.report->counter("serve.resume_skipped"), 3);
  EXPECT_EQ(res2.concatenated_outputs(), reference);
  for (const auto& j : res2.jobs) {
    EXPECT_TRUE(j.resumed_skip);
    EXPECT_EQ(j.seconds, 0.0);
  }
}

TEST(Batch, ResumeReRunsJobsWithTamperedOutputs) {
  std::string dir = tmp_dir("tamper");
  std::string journal = dir + "/j.jsonl";
  std::remove(journal.c_str());
  auto jobs = jobs_from("lion\ndk14\n");
  serve::BatchOptions opts;
  opts.journal_path = journal;
  opts.out_dir = dir + "/out";
  auto res1 = serve::run_batch(jobs, opts);
  ASSERT_TRUE(res1.complete());
  // Corrupt one output on disk; the journal digest no longer matches.
  ASSERT_TRUE(util::write_file_atomic(res1.jobs[0].output_path, "tampered"));

  serve::BatchOptions ropts = opts;
  ropts.resume = true;
  auto res2 = serve::run_batch(jobs, ropts);
  EXPECT_TRUE(res2.complete());
  EXPECT_EQ(res2.resumed_skips, 1);  // only the intact job is skipped
  EXPECT_FALSE(res2.jobs[0].resumed_skip);
  EXPECT_EQ(res2.jobs[0].state, serve::JobState::kDone);
  // The re-run restored the byte-identical output.
  EXPECT_EQ(res2.jobs[0].output, res1.jobs[0].output);
  EXPECT_EQ(read_file(res1.jobs[0].output_path), res1.jobs[0].output);
}

TEST(Batch, CorruptJournalRefusesToResume) {
  std::string dir = tmp_dir("refuse");
  std::string journal = dir + "/j.jsonl";
  {
    std::ofstream out(journal, std::ios::binary);
    out << "garbage line\n" << R"({"type":"drain"})" << "\n";
  }
  auto jobs = jobs_from("lion\n");
  serve::BatchOptions opts;
  opts.journal_path = journal;
  opts.resume = true;
  EXPECT_THROW(serve::run_batch(jobs, opts), std::runtime_error);
}

TEST(Batch, ReportJsonIsWrittenAtomicallyAndParses) {
  std::string dir = tmp_dir("report");
  auto jobs = jobs_from("lion\n");
  serve::BatchOptions opts;
  opts.report_path = dir + "/report.json";
  auto res = serve::run_batch(jobs, opts);
  ASSERT_TRUE(res.complete());
  std::string text = read_file(opts.report_path);
  std::string err;
  auto doc = obs::Json::parse(text, &err);
  ASSERT_TRUE(doc.has_value()) << err;
  const obs::Json* totals = doc->find("totals");
  ASSERT_NE(totals, nullptr);
  EXPECT_EQ(totals->find("done")->as_long(), 1);
  EXPECT_TRUE(read_file(opts.report_path + ".tmp").empty());
}

// Every serve-layer probe site, under every fault kind: the batch still
// terminates every job, exits cleanly, and leaves a clean journal.
TEST(Batch, ServeFaultSiteSweepAlwaysTerminates) {
  const char* sites[] = {"serve.journal", "serve.job", "serve.report"};
  const char* kinds[] = {"error", "alloc", "timeout"};
  std::string dir = tmp_dir("sweep");
  int combo = 0;
  for (const char* site : sites) {
    for (const char* kind : kinds) {
      std::string journal =
          dir + "/j" + std::to_string(combo) + ".jsonl";
      serve::BatchOptions opts;
      opts.journal_path = journal;
      opts.report_path = dir + "/r" + std::to_string(combo) + ".json";
      ++combo;
      auto jobs = jobs_from("lion\ndk14\n");
      Armed armed(std::string(site) + ":1:" + kind);
      auto res = serve::run_batch(jobs, opts);
      EXPECT_TRUE(res.complete()) << site << ":" << kind;
      EXPECT_EQ(res.failed, 0) << site << ":" << kind;
      auto rep = serve::replay_journal(journal);
      EXPECT_TRUE(rep.clean()) << site << ":" << kind;
      EXPECT_TRUE(rep.fully_accounted()) << site << ":" << kind;
      // The report survived the injected fault too (written on retry).
      EXPECT_FALSE(read_file(opts.report_path).empty())
          << site << ":" << kind;
    }
  }
}

TEST(Batch, SoakFaultInjectionIsSeededAndAccounted) {
  std::string dir = tmp_dir("soak");
  std::string journal = dir + "/j.jsonl";
  std::remove(journal.c_str());
  auto jobs = jobs_from("lion\ndk14\nbbara\nshiftreg\nlion seed=5\n");
  serve::BatchOptions opts;
  opts.journal_path = journal;
  opts.fault_rate = 0.7;
  opts.fault_seed = 1234;
  auto res1 = serve::run_batch(jobs, opts);
  EXPECT_TRUE(res1.complete());
  auto rep = serve::replay_journal(journal);
  EXPECT_TRUE(rep.clean());
  EXPECT_TRUE(rep.fully_accounted());
  // Zero silently dropped: every queued job is terminal.
  EXPECT_EQ(rep.count_terminal("done") + rep.count_terminal("failed") +
                rep.count_terminal("degraded"),
            static_cast<int>(jobs.size()));
}
