#include "fsm/fsm.hpp"

#include <gtest/gtest.h>

#include "fsm/kiss_io.hpp"
#include "fsm/symbolic.hpp"
#include "logic/espresso.hpp"

using namespace nova::fsm;

namespace {
const char* kLion =
    ".i 2\n.o 1\n.s 4\n.r st0\n"
    "-0 st0 st0 0\n"
    "11 st0 st0 0\n"
    "01 st0 st1 0\n"
    "-1 st1 st1 1\n"
    "10 st1 st2 1\n"
    "00 st2 st2 1\n"
    "-1 st2 st1 1\n"
    "10 st2 st3 1\n"
    "-0 st3 st3 1\n"
    "01 st3 st3 1\n"
    ".e\n";
}  // namespace

TEST(Fsm, InternStates) {
  Fsm f(1, 1);
  EXPECT_EQ(f.intern_state("a"), 0);
  EXPECT_EQ(f.intern_state("b"), 1);
  EXPECT_EQ(f.intern_state("a"), 0);
  EXPECT_EQ(f.num_states(), 2);
  EXPECT_EQ(*f.find_state("b"), 1);
  EXPECT_FALSE(f.find_state("c").has_value());
}

TEST(Fsm, AddTransitionValidatesPatterns) {
  Fsm f(2, 1);
  f.intern_state("a");
  EXPECT_THROW(f.add_transition("0", 0, 0, "1"), std::invalid_argument);
  EXPECT_THROW(f.add_transition("00", 0, 0, "11"), std::invalid_argument);
  EXPECT_THROW(f.add_transition("0x", 0, 0, "1"), std::invalid_argument);
  EXPECT_NO_THROW(f.add_transition("0-", 0, 0, "1"));
}

TEST(Fsm, StepSimulation) {
  Fsm f = parse_kiss_string(kLion, "lion");
  int st0 = *f.find_state("st0");
  int st1 = *f.find_state("st1");
  auto r = f.step(st0, "01");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->first, st1);
  EXPECT_EQ(r->second, "0");
  r = f.step(st1, "11");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->first, st1);
  EXPECT_EQ(r->second, "1");
}

TEST(Fsm, InputPatternsIntersect) {
  EXPECT_TRUE(input_patterns_intersect("0-", "-1"));
  EXPECT_FALSE(input_patterns_intersect("01", "00"));
  EXPECT_TRUE(input_patterns_intersect("--", "10"));
}

TEST(Fsm, ValidateCleanMachine) {
  Fsm f = parse_kiss_string(kLion, "lion");
  EXPECT_TRUE(f.validate().empty());
}

TEST(Fsm, ValidateDetectsNondeterminism) {
  Fsm f(1, 1);
  f.add_transition("0", "a", "a", "0");
  f.add_transition("-", "a", "b", "1");
  auto issues = f.validate();
  ASSERT_FALSE(issues.empty());
  EXPECT_EQ(issues[0].kind, Fsm::ValidationIssue::kNondeterministic);
}

TEST(Fsm, ValidateDetectsUnreachable) {
  Fsm f(1, 1);
  f.add_transition("0", "a", "a", "0");
  f.add_transition("1", "b", "b", "0");  // b unreachable from a
  auto issues = f.validate();
  bool found = false;
  for (auto& i : issues) found |= i.kind == Fsm::ValidationIssue::kUnreachableState;
  EXPECT_TRUE(found);
}

TEST(KissIo, ParseBasic) {
  Fsm f = parse_kiss_string(kLion, "lion");
  EXPECT_EQ(f.num_inputs(), 2);
  EXPECT_EQ(f.num_outputs(), 1);
  EXPECT_EQ(f.num_states(), 4);
  EXPECT_EQ(f.num_transitions(), 10);
  EXPECT_EQ(f.reset_state(), *f.find_state("st0"));
  EXPECT_EQ(f.name(), "lion");
}

TEST(KissIo, RoundTrip) {
  Fsm f = parse_kiss_string(kLion, "lion");
  std::string text = write_kiss_string(f);
  Fsm g = parse_kiss_string(text, "lion2");
  EXPECT_EQ(g.num_states(), f.num_states());
  EXPECT_EQ(g.num_transitions(), f.num_transitions());
  EXPECT_EQ(write_kiss_string(g), text);
}

TEST(KissIo, CommentsAndStar) {
  const char* text =
      "# a comment\n.i 1\n.o 1\n"
      "0 a b 1  # trailing comment\n"
      "1 * a -\n"
      ".e\n";
  Fsm f = parse_kiss_string(text);
  EXPECT_EQ(f.num_transitions(), 2);
  EXPECT_EQ(f.transitions()[1].present, -1);
}

TEST(KissIo, ErrorsAreLineNumbered) {
  try {
    parse_kiss_string(".i 1\n.o 1\nbad row\n.e\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(KissIo, CountMismatchRejected) {
  EXPECT_THROW(parse_kiss_string(".i 1\n.o 1\n.p 5\n0 a a 0\n.e\n"),
               std::runtime_error);
  EXPECT_THROW(parse_kiss_string(".i 1\n.o 1\n.s 3\n0 a a 0\n.e\n"),
               std::runtime_error);
}

TEST(KissIo, MissingHeaderRejected) {
  EXPECT_THROW(parse_kiss_string("0 a a 0\n.e\n"), std::runtime_error);
}

TEST(SymbolicCover, Layout) {
  Fsm f = parse_kiss_string(kLion, "lion");
  SymbolicCover sc = build_symbolic_cover(f);
  EXPECT_EQ(sc.num_inputs, 2);
  EXPECT_EQ(sc.num_states, 4);
  EXPECT_EQ(sc.num_outputs, 1);
  // vars: 2 binary inputs, present(4), output(4+1)
  EXPECT_EQ(sc.spec.num_vars(), 4);
  EXPECT_EQ(sc.spec.size(sc.present_var()), 4);
  EXPECT_EQ(sc.spec.size(sc.output_var()), 5);
  EXPECT_EQ(sc.on.size(), 10);
}

TEST(SymbolicCover, OnCubesAssertNextAndOutputs) {
  Fsm f(1, 1);
  f.add_transition("0", "a", "b", "1");
  f.add_transition("1", "a", "a", "0");
  f.add_transition("-", "b", "b", "-");
  SymbolicCover sc = build_symbolic_cover(f);
  // Row 1 asserts next=b and output; row 2 asserts only next=a; row 3
  // asserts next=b (output '-' goes to dc).
  EXPECT_EQ(sc.on.size(), 3);
  bool found_dc_output = false;
  for (const auto& c : sc.dc) {
    if (c.get(sc.spec.bit(sc.output_var(), sc.output_value(0))))
      found_dc_output = true;
  }
  EXPECT_TRUE(found_dc_output);
}

TEST(SymbolicCover, UnspecifiedRegionIsDontCare) {
  Fsm f(1, 1);
  f.add_transition("0", "a", "b", "1");
  f.add_transition("0", "b", "a", "0");
  // input 1 unspecified for both states -> dc covers (1, *, anything)
  SymbolicCover sc = build_symbolic_cover(f);
  nova::logic::Cube probe = nova::logic::Cube::full(sc.spec);
  probe.set_binary_from_pla(sc.spec, 0, "1");
  probe.set_value(sc.spec, sc.present_var(), 0);
  probe.set_value(sc.spec, sc.output_var(), sc.output_value(0));
  EXPECT_TRUE(nova::logic::covers_cube(sc.dc, probe));
}

TEST(SymbolicCover, MinimizationGroupsStates) {
  // Three states that all go to state t on input 1 with output 1: MV
  // minimization should merge them into a single cube.
  Fsm f(1, 1);
  f.add_transition("1", "a", "t", "1");
  f.add_transition("1", "b", "t", "1");
  f.add_transition("1", "c", "t", "1");
  f.add_transition("0", "a", "a", "0");
  f.add_transition("0", "b", "b", "0");
  f.add_transition("0", "c", "c", "0");
  f.add_transition("-", "t", "t", "0");
  SymbolicCover sc = build_symbolic_cover(f);
  nova::logic::Cover g = nova::logic::espresso(sc.on, sc.dc);
  // The three "go to t" rows merge into one: cover shrinks below 7 rows.
  EXPECT_LT(g.size(), 7);
}

TEST(Fsm, EmptyMachine) {
  Fsm f(1, 1);
  EXPECT_EQ(f.num_states(), 0);
  EXPECT_TRUE(f.reachable_states().empty());
}
