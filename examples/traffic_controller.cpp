// A realistic scenario: a traffic-light controller FSM built with the
// programmatic API (no KISS file), encoded with every algorithm in the
// library, with a side-by-side comparison of the resulting PLA areas.
//
// The controller runs a main road / farm road intersection: a car sensor
// on the farm road, a timer expiry input, and one-hot light outputs
// (main-green, main-yellow, farm-green, farm-yellow).
#include <cstdio>

#include "nova/nova.hpp"

int main() {
  using namespace nova;
  // inputs: [car_sensor, timer_expired]; outputs: [MG, MY, FG, FY]
  fsm::Fsm f(2, 4);
  // Main green: stay until a car is waiting AND the long timer expired.
  f.add_transition("0-", "MG", "MG", "1000");
  f.add_transition("-0", "MG", "MG", "1000");
  f.add_transition("11", "MG", "MY", "1000");
  // Main yellow: short timer, then farm green.
  f.add_transition("-0", "MY", "MY", "0100");
  f.add_transition("-1", "MY", "FG1", "0100");
  // Farm green phase 1 -> 2 on timer (two states model a minimum green).
  f.add_transition("-0", "FG1", "FG1", "0010");
  f.add_transition("-1", "FG1", "FG2", "0010");
  // Farm green 2: back to yellow when no car or timer expired.
  f.add_transition("0-", "FG2", "FY", "0010");
  f.add_transition("11", "FG2", "FY", "0010");
  f.add_transition("10", "FG2", "FG2", "0010");
  // Farm yellow: short timer, then main green.
  f.add_transition("-0", "FY", "FY", "0001");
  f.add_transition("-1", "FY", "MG", "0001");
  f.set_name("traffic");

  std::printf("traffic controller: %d states, %d rows\n", f.num_states(),
              f.num_transitions());

  struct Row {
    const char* label;
    driver::Algorithm alg;
  } rows[] = {
      {"ihybrid", driver::Algorithm::kIHybrid},
      {"igreedy", driver::Algorithm::kIGreedy},
      {"iohybrid", driver::Algorithm::kIoHybrid},
      {"kiss", driver::Algorithm::kKiss},
      {"mustang-p", driver::Algorithm::kMustangFanout},
      {"random", driver::Algorithm::kRandom},
  };
  std::printf("%-10s %6s %7s %7s %12s\n", "algorithm", "bits", "cubes",
              "area", "ics sat/tot");
  for (const auto& row : rows) {
    driver::NovaOptions opts;
    opts.algorithm = row.alg;
    auto r = driver::encode_fsm(f, opts);
    std::printf("%-10s %6d %7d %7ld %8d/%d\n", row.label, r.metrics.nbits,
                r.metrics.cubes, r.metrics.area, r.constraints_satisfied,
                r.constraints_total);
  }

  // Show the winning codes.
  driver::NovaOptions opts;
  opts.algorithm = driver::Algorithm::kIoHybrid;
  auto best = driver::encode_fsm(f, opts);
  std::printf("\niohybrid codes:\n");
  for (int s = 0; s < f.num_states(); ++s) {
    std::printf("  %-4s -> %s\n", f.state_name(s).c_str(),
                best.enc.code_string(s).c_str());
  }
  return 0;
}
