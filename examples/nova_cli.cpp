// nova_cli: command-line front end mirroring the original NOVA tool.
//
//   nova_cli <machine.kiss | builtin-name> [options]
//     -e <alg>    ihybrid | igreedy | iohybrid | iovariant | iexact |
//                 kiss | mustang-p | mustang-n | random   (default ihybrid)
//     -n <bits>   code length (default: minimum)
//     -p          print the encoded, minimized PLA (espresso .pla format)
//     -v          verbose: constraints and satisfaction report
//     -d          print the state graph as Graphviz DOT
//
// Batch mode (see nova_serve for the full front end):
//   nova_cli --batch <manifest> [--journal PATH] [--resume] [--out DIR]
//            [--report PATH] [--threads N] [-e alg]
//
// SIGINT/SIGTERM drain gracefully in both modes: the in-flight run unwinds
// at its next budget checkpoint and still emits valid (possibly degraded)
// .code lines; a second signal hard-exits.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "bench_data/benchmarks.hpp"
#include "check/faultinject.hpp"
#include "encoding/analysis.hpp"
#include "fsm/dot_export.hpp"
#include "constraints/input_constraints.hpp"
#include "fsm/kiss_io.hpp"
#include "logic/pla_io.hpp"
#include "nova/nova.hpp"
#include "nova/robust.hpp"
#include "serve/drain.hpp"
#include "serve/serve.hpp"

namespace {

nova::fsm::Fsm load(const std::string& arg) {
  std::ifstream probe(arg);
  if (probe.good()) return nova::fsm::parse_kiss_file(arg);
  return nova::bench_data::load_benchmark(arg);
}

int usage() {
  std::fprintf(stderr,
               "usage: nova_cli <machine.kiss|builtin> [-e alg] [-n bits] "
               "[-p] [-v]\n"
               "       nova_cli --batch <manifest> [--journal PATH] "
               "[--resume] [--out DIR]\n"
               "                [--report PATH] [--threads N] [-e alg]\n");
  return 2;
}

int batch_main(int argc, char** argv) {
  using namespace nova;
  if (argc < 3) return usage();
  serve::BatchOptions bopts;
  driver::Algorithm alg = driver::Algorithm::kIHybrid;
  for (int i = 3; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--journal" && i + 1 < argc) bopts.journal_path = argv[++i];
    else if (a == "--resume") bopts.resume = true;
    else if (a == "--out" && i + 1 < argc) bopts.out_dir = argv[++i];
    else if (a == "--report" && i + 1 < argc) bopts.report_path = argv[++i];
    else if (a == "--threads" && i + 1 < argc)
      bopts.threads = std::atoi(argv[++i]);
    else if (a == "-e" && i + 1 < argc) {
      if (!serve::parse_algorithm(argv[++i], &alg)) return usage();
    } else {
      return usage();
    }
  }
  try {
    auto jobs = serve::parse_manifest_file(argv[2], alg);
    util::Budget budget = util::Budget::from_env();
    bopts.budget = &budget;
    serve::install_signal_handlers();
    serve::set_signal_budget(&budget);
    auto res = serve::run_batch(jobs, bopts);
    serve::set_signal_budget(nullptr);
    std::printf("%s", res.concatenated_outputs().c_str());
    std::fprintf(stderr,
                 "# batch: %d done, %d degraded, %d failed, %d pending%s\n",
                 res.done, res.degraded, res.failed, res.pending,
                 res.drained ? " [drained]" : "");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nova;
  if (argc < 2) return usage();
  if (std::strcmp(argv[1], "--batch") == 0) return batch_main(argc, argv);
  driver::NovaOptions opts;
  bool print_pla = false, verbose = false, print_dot = false;
  for (int i = 2; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "-e" && i + 1 < argc) {
      std::string e = argv[++i];
      if (e == "ihybrid") opts.algorithm = driver::Algorithm::kIHybrid;
      else if (e == "igreedy") opts.algorithm = driver::Algorithm::kIGreedy;
      else if (e == "iohybrid") opts.algorithm = driver::Algorithm::kIoHybrid;
      else if (e == "iovariant") opts.algorithm = driver::Algorithm::kIoVariant;
      else if (e == "iexact") opts.algorithm = driver::Algorithm::kIExact;
      else if (e == "kiss") opts.algorithm = driver::Algorithm::kKiss;
      else if (e == "mustang-p") opts.algorithm = driver::Algorithm::kMustangFanout;
      else if (e == "mustang-n") opts.algorithm = driver::Algorithm::kMustangFanin;
      else if (e == "random") opts.algorithm = driver::Algorithm::kRandom;
      else return usage();
    } else if (a == "-n" && i + 1 < argc) {
      opts.nbits = std::atoi(argv[++i]);
    } else if (a == "-p") {
      print_pla = true;
    } else if (a == "-v") {
      verbose = true;
    } else if (a == "-d") {
      print_dot = true;
    } else {
      return usage();
    }
  }

  fsm::Fsm f;
  try {
    f = load(argv[1]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  if (print_dot) {
    std::printf("%s", fsm::to_dot(f).c_str());
    return 0;
  }

  // Every run goes through the robust front door with a cancellable budget
  // registered with the signal handler: a SIGINT/SIGTERM mid-run trips the
  // budget, the ladder unwinds at its next checkpoint, and the process
  // still emits a valid (possibly degraded) encoding and exits 0. On the
  // happy path the first rung is plain encode_fsm, so stdout stays
  // byte-identical to earlier releases.
  util::Budget budget = util::Budget::from_env();
  serve::install_signal_handlers();
  serve::set_signal_budget(&budget);
  opts.budget = &budget;
  driver::NovaResult r;
  {
    auto outcome = driver::encode_fsm_robust(f, opts);
    if (!outcome.usable()) {
      std::fprintf(stderr, "error: %s\n", outcome.detail.c_str());
      serve::set_signal_budget(nullptr);
      return 1;
    }
    if (!outcome.ok()) {
      std::fprintf(stderr, "# robust: status=%s%s%s\n",
                   util::status_name(outcome.status),
                   outcome.detail.empty() ? "" : " -- ",
                   outcome.detail.c_str());
    }
    if (outcome.value.used_sequential)
      std::fprintf(stderr, "# robust: fell back to sequential codes\n");
    if (serve::drain_requested())
      std::fprintf(stderr, "# robust: drained by signal %d\n",
                   serve::drain_signal());
    r = std::move(outcome.value.nova);
  }
  serve::set_signal_budget(nullptr);
  if (!r.success) {
    std::fprintf(stderr, "encoding failed (iexact budget exhausted?)\n");
    return 1;
  }
  std::printf("# %s: %d states -> %d bits, %d cubes, area %ld\n",
              f.name().empty() ? argv[1] : f.name().c_str(), f.num_states(),
              r.metrics.nbits, r.metrics.cubes, r.metrics.area);
  std::printf("# constraints satisfied %d/%d (weight %d/%d)\n",
              r.constraints_satisfied, r.constraints_total,
              r.weight_satisfied, r.weight_satisfied + r.weight_unsatisfied);
  for (int s = 0; s < f.num_states(); ++s) {
    std::printf(".code %s %s\n", f.state_name(s).c_str(),
                r.enc.code_string(s).c_str());
  }
  if (verbose) {
    auto icr = constraints::extract_input_constraints(f);
    auto rep = encoding::analyze_encoding(r.enc, icr.constraints);
    std::printf("%s",
                encoding::format_report(rep, r.enc, f.state_names()).c_str());
  }
  if (print_pla) {
    auto ev = driver::evaluate_encoding(f, r.enc);
    logic::Pla pla;
    pla.num_inputs = f.num_inputs() + r.metrics.nbits;
    pla.num_outputs = r.metrics.nbits + f.num_outputs();
    pla.on = ev.minimized;
    pla.dc = logic::Cover(ev.spec);
    std::printf("%s", logic::write_pla_string(pla).c_str());
  }
  return 0;
}
