// nova_cli: command-line front end mirroring the original NOVA tool.
//
//   nova_cli <machine.kiss | builtin-name> [options]
//     -e <alg>    ihybrid | igreedy | iohybrid | iovariant | iexact |
//                 kiss | mustang-p | mustang-n | random   (default ihybrid)
//     -n <bits>   code length (default: minimum)
//     -p          print the encoded, minimized PLA (espresso .pla format)
//     -v          verbose: constraints and satisfaction report
//     -d          print the state graph as Graphviz DOT
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "bench_data/benchmarks.hpp"
#include "check/faultinject.hpp"
#include "encoding/analysis.hpp"
#include "fsm/dot_export.hpp"
#include "constraints/input_constraints.hpp"
#include "fsm/kiss_io.hpp"
#include "logic/pla_io.hpp"
#include "nova/nova.hpp"
#include "nova/robust.hpp"

namespace {

nova::fsm::Fsm load(const std::string& arg) {
  std::ifstream probe(arg);
  if (probe.good()) return nova::fsm::parse_kiss_file(arg);
  return nova::bench_data::load_benchmark(arg);
}

int usage() {
  std::fprintf(stderr,
               "usage: nova_cli <machine.kiss|builtin> [-e alg] [-n bits] "
               "[-p] [-v]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nova;
  if (argc < 2) return usage();
  driver::NovaOptions opts;
  bool print_pla = false, verbose = false, print_dot = false;
  for (int i = 2; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "-e" && i + 1 < argc) {
      std::string e = argv[++i];
      if (e == "ihybrid") opts.algorithm = driver::Algorithm::kIHybrid;
      else if (e == "igreedy") opts.algorithm = driver::Algorithm::kIGreedy;
      else if (e == "iohybrid") opts.algorithm = driver::Algorithm::kIoHybrid;
      else if (e == "iovariant") opts.algorithm = driver::Algorithm::kIoVariant;
      else if (e == "iexact") opts.algorithm = driver::Algorithm::kIExact;
      else if (e == "kiss") opts.algorithm = driver::Algorithm::kKiss;
      else if (e == "mustang-p") opts.algorithm = driver::Algorithm::kMustangFanout;
      else if (e == "mustang-n") opts.algorithm = driver::Algorithm::kMustangFanin;
      else if (e == "random") opts.algorithm = driver::Algorithm::kRandom;
      else return usage();
    } else if (a == "-n" && i + 1 < argc) {
      opts.nbits = std::atoi(argv[++i]);
    } else if (a == "-p") {
      print_pla = true;
    } else if (a == "-v") {
      verbose = true;
    } else if (a == "-d") {
      print_dot = true;
    } else {
      return usage();
    }
  }

  fsm::Fsm f;
  try {
    f = load(argv[1]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  if (print_dot) {
    std::printf("%s", fsm::to_dot(f).c_str());
    return 0;
  }

  // Under a budget (NOVA_DEADLINE_MS / NOVA_WORK_BUDGET) or armed fault
  // injection (NOVA_FAULT), go through the robust front door: the run
  // always emits a valid, verified encoding and exits 0, downgrading the
  // algorithm if it must. Otherwise the legacy path keeps the output
  // byte-identical to earlier releases.
  driver::NovaResult r;
  if (util::Budget::from_env().limited() || check::fault::armed()) {
    auto outcome = driver::encode_fsm_robust(f, opts);
    if (!outcome.usable()) {
      std::fprintf(stderr, "error: %s\n", outcome.detail.c_str());
      return 1;
    }
    if (!outcome.ok()) {
      std::fprintf(stderr, "# robust: status=%s%s%s\n",
                   util::status_name(outcome.status),
                   outcome.detail.empty() ? "" : " -- ",
                   outcome.detail.c_str());
    }
    if (outcome.value.used_sequential)
      std::fprintf(stderr, "# robust: fell back to sequential codes\n");
    r = std::move(outcome.value.nova);
  } else {
    r = driver::encode_fsm(f, opts);
  }
  if (!r.success) {
    std::fprintf(stderr, "encoding failed (iexact budget exhausted?)\n");
    return 1;
  }
  std::printf("# %s: %d states -> %d bits, %d cubes, area %ld\n",
              f.name().empty() ? argv[1] : f.name().c_str(), f.num_states(),
              r.metrics.nbits, r.metrics.cubes, r.metrics.area);
  std::printf("# constraints satisfied %d/%d (weight %d/%d)\n",
              r.constraints_satisfied, r.constraints_total,
              r.weight_satisfied, r.weight_satisfied + r.weight_unsatisfied);
  for (int s = 0; s < f.num_states(); ++s) {
    std::printf(".code %s %s\n", f.state_name(s).c_str(),
                r.enc.code_string(s).c_str());
  }
  if (verbose) {
    auto icr = constraints::extract_input_constraints(f);
    auto rep = encoding::analyze_encoding(r.enc, icr.constraints);
    std::printf("%s",
                encoding::format_report(rep, r.enc, f.state_names()).c_str());
  }
  if (print_pla) {
    auto ev = driver::evaluate_encoding(f, r.enc);
    logic::Pla pla;
    pla.num_inputs = f.num_inputs() + r.metrics.nbits;
    pla.num_outputs = r.metrics.nbits + f.num_outputs();
    pla.on = ev.minimized;
    pla.dc = logic::Cover(ev.spec);
    std::printf("%s", logic::write_pla_string(pla).c_str());
  }
  return 0;
}
