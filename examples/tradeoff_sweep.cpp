// Code-length / area trade-off exploration (the effect behind the paper's
// key Table II observation: satisfying more constraints with longer codes
// does not necessarily pay in area).
//
//   ./tradeoff_sweep [benchmark-name]   (default: donfile)
#include <cstdio>
#include <string>

#include "bench_data/benchmarks.hpp"
#include "constraints/input_constraints.hpp"
#include "encoding/hybrid.hpp"
#include "nova/nova.hpp"

int main(int argc, char** argv) {
  using namespace nova;
  std::string name = argc > 1 ? argv[1] : "donfile";
  fsm::Fsm f = bench_data::load_benchmark(name);
  auto icr = constraints::extract_input_constraints(f);
  const int min_len = encoding::min_code_length(f.num_states());

  std::printf("%s: %d states, %zu input constraints, minimum length %d\n\n",
              name.c_str(), f.num_states(), icr.constraints.size(), min_len);
  std::printf("%5s %9s %9s %7s %7s\n", "bits", "ics-sat", "wgt-sat", "cubes",
              "area");

  long best_area = -1;
  int best_bits = 0;
  for (int bits = min_len; bits <= min_len + 4 && bits <= 20; ++bits) {
    encoding::HybridOptions ho;
    ho.nbits = bits;
    auto hr = encoding::ihybrid_code(icr.constraints, f.num_states(), ho);
    auto ev = driver::evaluate_encoding(f, hr.enc);
    int wsat = 0;
    for (const auto& ic : hr.sic) wsat += ic.weight;
    std::printf("%5d %5zu/%-3zu %9d %7d %7ld\n", bits, hr.sic.size(),
                icr.constraints.size(), wsat, ev.metrics.cubes,
                ev.metrics.area);
    if (best_area < 0 || ev.metrics.area < best_area) {
      best_area = ev.metrics.area;
      best_bits = bits;
    }
  }
  std::printf(
      "\nbest area %ld at %d bits -- note how extra bits can satisfy more "
      "constraints (fewer cubes) yet still lose on area, the paper's "
      "central observation about iexact vs ihybrid.\n",
      best_area, best_bits);
  return 0;
}
