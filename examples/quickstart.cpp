// Quickstart: read a KISS2 FSM (from a file argument, or the built-in
// "lion" example), encode its states with NOVA's ihybrid algorithm, and
// print the codes and the minimized two-level implementation metrics.
//
//   ./quickstart [machine.kiss]
#include <cstdio>
#include <fstream>

#include "bench_data/benchmarks.hpp"
#include "fsm/kiss_io.hpp"
#include "nova/nova.hpp"

int main(int argc, char** argv) {
  using namespace nova;
  fsm::Fsm machine = argc > 1 ? fsm::parse_kiss_file(argv[1])
                              : bench_data::load_benchmark("lion");

  std::printf("machine '%s': %d inputs, %d outputs, %d states, %d terms\n",
              machine.name().c_str(), machine.num_inputs(),
              machine.num_outputs(), machine.num_states(),
              machine.num_transitions());

  // Structural sanity first: conflicting rows would make any encoding moot.
  for (const auto& issue : machine.validate()) {
    std::printf("  validation: %s\n", issue.detail.c_str());
  }

  driver::NovaOptions opts;
  opts.algorithm = driver::Algorithm::kIHybrid;
  driver::NovaResult r = driver::encode_fsm(machine, opts);

  std::printf("\nihybrid encoding (%d bits):\n", r.metrics.nbits);
  for (int s = 0; s < machine.num_states(); ++s) {
    std::printf("  %-12s -> %s\n", machine.state_name(s).c_str(),
                r.enc.code_string(s).c_str());
  }
  std::printf(
      "\ninput constraints satisfied: %d / %d (weight %d sat, %d unsat)\n",
      r.constraints_satisfied, r.constraints_total, r.weight_satisfied,
      r.weight_unsatisfied);
  std::printf("minimized PLA: %d product terms, area %ld\n", r.metrics.cubes,
              r.metrics.area);

  // Compare with the 1-hot lower line.
  auto onehot = driver::one_hot_metrics(machine);
  std::printf("1-hot reference: %d product terms, area %ld\n", onehot.cubes,
              onehot.area);
  return 0;
}
