// nova_serve: crash-safe batch serving front end.
//
//   nova_serve --manifest jobs.txt [options]
//
//   --manifest PATH       one job per line: <spec> [alg=..] [nbits=..]
//                         [seed=..] [class=..]; '#' comments
//   --journal PATH        write-ahead JSONL journal (enables --resume)
//   --resume              replay the journal; skip jobs already terminal
//   --out DIR             write each job's .code output to DIR/<id>.code
//   --report PATH         final JSON batch report (written atomically)
//   --threads N           worker threads (default 1)
//   --alg NAME            default algorithm for manifest lines without alg=
//   --retries N           attempts per job (default 3)
//   --breaker K           consecutive hard failures that open a class's
//                         circuit breaker (default 3)
//   --breaker-cooldown N  virtual units before a half-open probe (default 512)
//   --job-deadline-ms N   per-attempt wall-clock deadline
//   --job-work N          per-attempt work-unit budget
//   --deadline-ms N       whole-batch deadline (drains when it passes)
//   --fault-rate P        soak mode: arm a seeded random fault on a fraction
//   --fault-seed N        P of attempts (deterministic in seed/job/attempt)
//   --print               print concatenated outputs to stdout
//   --replay PATH         print a journal summary and exit
//   --list-builtins       print builtin benchmark names (manifest seeds)
//
// Exit status: 0 when every job reached a terminal state OR the batch was
// gracefully drained (SIGINT/SIGTERM/deadline) with a valid journal; 1 on a
// batch-level error; 2 on usage errors.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench_data/benchmarks.hpp"
#include "serve/drain.hpp"
#include "serve/serve.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: nova_serve --manifest PATH [--journal PATH] [--resume]\n"
               "                  [--out DIR] [--report PATH] [--threads N]\n"
               "                  [--alg NAME] [--retries N] [--breaker K]\n"
               "                  [--breaker-cooldown N] [--job-deadline-ms N]\n"
               "                  [--job-work N] [--deadline-ms N]\n"
               "                  [--fault-rate P] [--fault-seed N] [--print]\n"
               "       nova_serve --replay PATH | --list-builtins\n");
  return 2;
}

int replay(const std::string& path) {
  nova::serve::ReplayResult rep = nova::serve::replay_journal(path);
  std::printf("journal %s: %d records, %zu jobs%s%s\n", path.c_str(),
              rep.records, rep.jobs.size(),
              rep.truncated_tail ? ", torn tail" : "",
              rep.drained ? ", drained" : "");
  for (const auto& [id, st] : rep.jobs) {
    std::printf("  %-24s %-9s attempts=%d%s%s%s%s\n", id.c_str(),
                st.terminal.empty() ? "pending" : st.terminal.c_str(),
                st.attempts, st.digest.empty() ? "" : " digest=",
                st.digest.c_str(), st.cause.empty() ? "" : " cause=",
                st.cause.c_str());
  }
  for (const std::string& e : rep.errors)
    std::fprintf(stderr, "corrupt: %s\n", e.c_str());
  if (!rep.clean()) return 1;
  std::printf("accounting: %s\n",
              rep.fully_accounted() ? "every queued job is terminal"
                                    : "pending jobs remain (resumable)");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nova;
  std::string manifest_path, replay_path;
  serve::BatchOptions opts;
  driver::Algorithm default_alg = driver::Algorithm::kIHybrid;
  long batch_deadline_ms = 0;
  bool print_outputs = false, list_builtins = false;

  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto val = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (a == "--manifest" && (v = val())) manifest_path = v;
    else if (a == "--journal" && (v = val())) opts.journal_path = v;
    else if (a == "--out" && (v = val())) opts.out_dir = v;
    else if (a == "--report" && (v = val())) opts.report_path = v;
    else if (a == "--resume") opts.resume = true;
    else if (a == "--threads" && (v = val())) opts.threads = std::atoi(v);
    else if (a == "--alg" && (v = val())) {
      if (!serve::parse_algorithm(v, &default_alg)) return usage();
    }
    else if (a == "--retries" && (v = val()))
      opts.retry.max_attempts = std::atoi(v);
    else if (a == "--breaker" && (v = val()))
      opts.breaker_threshold = std::atoi(v);
    else if (a == "--breaker-cooldown" && (v = val()))
      opts.breaker_cooldown_units = std::atol(v);
    else if (a == "--job-deadline-ms" && (v = val()))
      opts.job_deadline_ms = std::atol(v);
    else if (a == "--job-work" && (v = val()))
      opts.job_work_budget = std::atol(v);
    else if (a == "--deadline-ms" && (v = val()))
      batch_deadline_ms = std::atol(v);
    else if (a == "--fault-rate" && (v = val()))
      opts.fault_rate = std::atof(v);
    else if (a == "--fault-seed" && (v = val()))
      opts.fault_seed = std::strtoull(v, nullptr, 10);
    else if (a == "--print") print_outputs = true;
    else if (a == "--replay" && (v = val())) replay_path = v;
    else if (a == "--list-builtins") list_builtins = true;
    else return usage();
  }

  if (list_builtins) {
    for (const auto& b : bench_data::table1_benchmarks())
      std::printf("%s\n", b.name.c_str());
    for (const auto& b : bench_data::table5_extras())
      std::printf("%s\n", b.name.c_str());
    return 0;
  }
  if (!replay_path.empty()) return replay(replay_path);
  if (manifest_path.empty()) return usage();

  try {
    std::vector<serve::JobSpec> jobs =
        serve::parse_manifest_file(manifest_path, default_alg);

    util::Budget batch_budget;
    if (batch_deadline_ms > 0) batch_budget.set_deadline_ms(batch_deadline_ms);
    opts.budget = &batch_budget;
    serve::install_signal_handlers();
    serve::set_signal_budget(&batch_budget);

    serve::BatchResult res = serve::run_batch(jobs, opts);
    serve::set_signal_budget(nullptr);

    std::fprintf(stderr,
                 "# serve: %zu jobs: %d done, %d degraded, %d failed, "
                 "%d pending (%d resumed, %d retries, %d breaker trips)%s\n",
                 res.jobs.size(), res.done, res.degraded, res.failed,
                 res.pending, res.resumed_skips, res.retries,
                 res.breaker_trips, res.drained ? " [drained]" : "");
    if (print_outputs)
      std::printf("%s", res.concatenated_outputs().c_str());
    // Drain is a success: partial results + a resumable journal, by design.
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
