// A class-A encoding problem (paper section 2.1): optimal assignment of
// opcodes for a small processor decoder. The face-embedding algorithms are
// used directly on hand-written input constraints -- no FSM involved --
// exactly the "problem in class A" the paper says the algorithms solve.
//
// Scenario: 7 opcodes; the decoder PLA has product terms shared by groups
// of opcodes (e.g. all ALU ops read two registers, all memory ops compute
// an effective address). Each group is an input constraint whose weight is
// the number of decoder terms it appears in. This is the paper's running
// example instance (Examples 3.1.1 and 4.1).
#include <cstdio>

#include "encoding/embed.hpp"
#include "encoding/hybrid.hpp"

int main() {
  using namespace nova::encoding;
  using nova::constraints::make_constraint;

  const char* names[] = {"ADD", "SUB", "AND", "OR", "LD", "ST", "BR"};
  // opcode groups sharing decoder terms (characteristic vectors), with the
  // number of shared product terms as the weight.
  std::vector<InputConstraint> groups = {
      make_constraint("1110000", 4),  // ALU ops reading two registers
      make_constraint("0111000", 2),  // ops writing the register file
      make_constraint("0000111", 3),  // ops computing addresses
      make_constraint("1000110", 5),  // ops using the adder
      make_constraint("0000011", 1),  // ops accessing memory late
      make_constraint("0011000", 1),  // logic ops
  };

  // Exact solution: minimum number of bits satisfying every group.
  InputGraph ig(groups, 7);
  std::printf("poset: %d nodes, lower bound %d bits\n", ig.size(),
              mincube_dim(ig));
  ExactResult exact = iexact_code(ig);
  if (exact.success) {
    std::printf("iexact: all %zu groups satisfiable in %d bits\n",
                groups.size(), exact.nbits);
    for (int s = 0; s < 7; ++s) {
      std::printf("  %-4s -> %s\n", names[s],
                  exact.enc.code_string(s).c_str());
    }
  }

  // Heuristic solution at the minimum code length (3 bits for 7 opcodes):
  // ihybrid maximizes the weight of satisfied groups.
  HybridResult hyb = ihybrid_code(groups, 7, {});
  int wsat = 0, wtot = 0;
  for (const auto& g : groups) wtot += g.weight;
  for (const auto& g : hyb.sic) wsat += g.weight;
  std::printf(
      "\nihybrid at %d bits: weight satisfied %d / %d "
      "(each unit of weight = one decoder product term saved)\n",
      hyb.enc.nbits, wsat, wtot);
  for (int s = 0; s < 7; ++s) {
    std::printf("  %-4s -> %s\n", names[s], hyb.enc.code_string(s).c_str());
  }
  for (const auto& g : hyb.ric) {
    std::printf("  unsatisfied group: %s (weight %d)\n",
                g.states.to_string().c_str(), g.weight);
  }
  return 0;
}
