// The complete PLA-based FSM synthesis flow on one machine:
//   1. parse KISS2                      (fsm::parse_kiss_*)
//   2. validate + state minimization    (fsm::minimize_states)
//   3. constraint extraction            (constraints::*)
//   4. state assignment                 (encoding::iohybrid_code via driver)
//   5. encoded PLA + logic minimization (driver::evaluate_encoding)
//   6. functional verification          (driver::verify_encoding)
//   7. multilevel literal estimate      (mlopt::optimize_network)
//
//   ./full_flow [machine.kiss | builtin-name]   (default: train11)
#include <cstdio>
#include <fstream>

#include "bench_data/benchmarks.hpp"
#include "constraints/input_constraints.hpp"
#include "constraints/symbolic_min.hpp"
#include "fsm/kiss_io.hpp"
#include "fsm/minimize.hpp"
#include "mlopt/bridge.hpp"
#include "nova/nova.hpp"
#include "nova/verify.hpp"

int main(int argc, char** argv) {
  using namespace nova;
  std::string name = argc > 1 ? argv[1] : "train11";
  fsm::Fsm machine;
  std::ifstream probe(name);
  machine = probe.good() ? fsm::parse_kiss_file(name)
                         : bench_data::load_benchmark(name);

  std::printf("[1] %s: %d in / %d out / %d states / %d rows\n",
              machine.name().c_str(), machine.num_inputs(),
              machine.num_outputs(), machine.num_states(),
              machine.num_transitions());

  auto issues = machine.validate();
  std::printf("[2] validation: %zu issue(s)\n", issues.size());
  auto red = fsm::minimize_states(machine);
  if (red.applied && red.classes < machine.num_states()) {
    std::printf("    state minimization: %d -> %d states\n",
                machine.num_states(), red.classes);
    machine = red.fsm;
  } else {
    std::printf("    state minimization: already minimal%s\n",
                red.applied ? "" : " (skipped: wide inputs)");
  }

  auto icr = constraints::extract_input_constraints(machine);
  auto sm = constraints::symbolic_minimize(machine);
  std::printf(
      "[3] constraints: %zu input (from MV minimization), %zu input + %zu "
      "covering clusters (from symbolic minimization)\n",
      icr.constraints.size(), sm.ic.size(), sm.clusters.size());

  driver::NovaOptions opts;
  opts.algorithm = driver::Algorithm::kIoHybrid;
  auto r = driver::encode_fsm(machine, opts);
  std::printf("[4] iohybrid codes (%d bits):\n", r.metrics.nbits);
  for (int s = 0; s < machine.num_states(); ++s) {
    std::printf("      %-10s %s\n", machine.state_name(s).c_str(),
                r.enc.code_string(s).c_str());
  }

  auto ev = driver::evaluate_encoding(machine, r.enc);
  std::printf("[5] minimized PLA: %d cubes, area %ld, %ld SOP literals\n",
              ev.metrics.cubes, ev.metrics.area, ev.metrics.sop_literals);

  auto vr = driver::verify_encoding(machine, r.enc, ev);
  std::printf("[6] verification: %s after %d steps\n",
              vr.equivalent ? "EQUIVALENT" : vr.detail.c_str(),
              vr.steps_run);

  int nvars = machine.num_inputs() + r.metrics.nbits;
  auto sops = mlopt::sops_from_cover(
      ev.minimized, nvars, r.metrics.nbits + machine.num_outputs());
  auto net = mlopt::optimize_network(std::move(sops), nvars);
  std::printf("[7] multilevel estimate: %ld factored literals "
              "(%ld flat, %d shared divisors)\n",
              net.literals, net.sop_lits, net.divisors);
  return vr.equivalent ? 0 : 1;
}
