// Shared harness for the table/figure reproduction binaries.
//
// A BenchContext caches the per-FSM artifacts that several algorithms share
// (input constraints from MV minimization, symbolic minimization results),
// so each bench pays the extraction cost once per machine.
//
// Environment knobs:
//   NOVA_BENCH_FAST=1     shrink random-trial counts and work budgets
//   NOVA_BENCH_ONLY=name  run a single benchmark by name
//   NOVA_TRACE=1          collect obs spans/counters per machine and write
//                         a trajectory file at exit (see NOVA_OBS_JSON)
//   NOVA_OBS_JSON=path    trajectory file path (default BENCH_obs.json)
//   NOVA_PERF_JSON=path   perf report path (default BENCH_perf.json)
//   NOVA_PERF_BASELINE=p  reference perf report; matching entries gain
//                         "baseline_seconds" and "speedup" fields
//
// Unlike the obs trajectory (opt-in via NOVA_TRACE), the perf report is
// always written: every phase a bench binary times lands in BENCH_perf.json
// together with machine info and the git revision of the build.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench_data/benchmarks.hpp"
#include "constraints/input_constraints.hpp"
#include "constraints/symbolic_min.hpp"
#include "nova/nova.hpp"
#include "obs/obs.hpp"

namespace nova::bench {

using driver::Encoding;
using driver::PlaMetrics;

struct AlgoResult {
  bool ok = false;
  int nbits = 0;
  int cubes = 0;
  long area = 0;
  Encoding enc;
  double seconds = 0.0;
};

class BenchContext {
 public:
  explicit BenchContext(const std::string& name);
  /// Flushes this machine's obs report into the process trajectory.
  ~BenchContext();
  BenchContext(const BenchContext&) = delete;
  BenchContext& operator=(const BenchContext&) = delete;

  const fsm::Fsm& fsm() const { return fsm_; }
  const std::string& name() const { return name_; }
  int min_length() const;

  /// Input constraints (MV minimization), extracted lazily and cached.
  const std::vector<encoding::InputConstraint>& input_constraints();
  /// Cardinality of the minimized MV cover = the 1-hot cube count.
  int one_hot_cubes();
  /// Symbolic minimization artifacts, computed lazily and cached.
  const constraints::SymbolicMinResult& symbolic();

  /// Evaluates an encoding on this FSM (espresso + area).
  PlaMetrics evaluate(const Encoding& enc);

  // --- algorithm runners (sweep = extra bits above minimum to try; the
  //     best-area encoding wins, matching the paper's methodology) ---
  AlgoResult run_iexact(long work_budget, int max_extra_bits);
  AlgoResult run_ihybrid(int sweep);
  AlgoResult run_igreedy(int sweep);
  AlgoResult run_iohybrid(int sweep);
  AlgoResult run_kiss();
  AlgoResult run_mustang_best(int sweep);  ///< best of fanout/fanin
  struct RandomStats {
    long best_area = 0;
    long avg_area = 0;
    int best_cubes = 0;
    int nbits = 0;
  };
  RandomStats run_random(int trials);

  /// ihybrid statistics for Table VI (weights satisfied/unsatisfied and the
  /// code length at which every constraint is satisfied).
  struct HybridStats {
    int wsat = 0;
    int wunsat = 0;    ///< weight unsatisfied at the minimum length
    int clength = -1;  ///< length satisfying everything (projection)
    double seconds = 0.0;
  };
  HybridStats hybrid_stats();

 private:
  std::string name_;
  fsm::Fsm fsm_;
  std::optional<constraints::InputConstraintResult> ic_;
  std::optional<constraints::SymbolicMinResult> sm_;
  logic::EspressoOptions eopts_;
  // With NOVA_TRACE set, everything computed through this context is
  // collected here and appended to the trajectory on destruction.
  std::unique_ptr<obs::Report> report_;
  std::optional<obs::TraceSession> session_;
};

bool fast_mode();

/// True when NOVA_TRACE requests observability collection.
bool obs_enabled();

/// Appends a labelled obs report to the process-wide trajectory. The file
/// ($NOVA_OBS_JSON, default "BENCH_obs.json") is written at process exit:
///   {"version":1, "entries":[{"label":..., "report":{...}}, ...]}
void obs_append(const std::string& label, const obs::Report& report);

/// Records one timed phase into the process-wide perf report. The report
/// ($NOVA_PERF_JSON, default "BENCH_perf.json") is written at process exit:
///   {"version":1, "git_sha":..., "machine":{...},
///    "entries":[{"name":..., "seconds":...}, ...]}
/// When $NOVA_PERF_BASELINE names a previous report, each entry whose name
/// matches a baseline entry also carries "baseline_seconds" and "speedup"
/// (= baseline_seconds / seconds).
void perf_record(const std::string& name, double seconds);

/// RAII phase timer: records `name` with the scope's wall time on
/// destruction.
class PerfPhase {
 public:
  explicit PerfPhase(std::string name);
  ~PerfPhase();
  PerfPhase(const PerfPhase&) = delete;
  PerfPhase& operator=(const PerfPhase&) = delete;

 private:
  std::string name_;
  double t0_;
};

/// The benchmark names to run (honors NOVA_BENCH_ONLY).
std::vector<std::string> bench_names();

/// Prints a "TOTAL / %" footer given (label, total) pairs where the first
/// entry is the 100% reference... callers pass the reference explicitly.
void print_percent_row(const std::vector<std::pair<std::string, long>>& totals,
                       long reference);

}  // namespace nova::bench
