// Table IV: iohybrid (symbolic minimization + ordered face embedding) vs
// ihybrid/igreedy vs the best of NOVA, against random assignments.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace nova::bench;
  std::printf(
      "Table IV: iohybrid vs ihybrid/igreedy vs NOVA-best vs RANDOM\n"
      "%-10s | %5s %6s %7s | %5s %6s %7s | %5s %6s %7s | %9s %9s\n",
      "EXAMPLE", "bits", "cubes", "area", "bits", "cubes", "area", "bits",
      "cubes", "area", "rand-best", "rand-avg");
  long tot_io = 0, tot_hg = 0, tot_best = 0, tot_rbest = 0, tot_ravg = 0;
  for (const auto& name : bench_names()) {
    BenchContext ctx(name);
    AlgoResult io = ctx.run_iohybrid(fast_mode() ? 1 : 2);
    AlgoResult hy = ctx.run_ihybrid(fast_mode() ? 1 : 2);
    AlgoResult gr = ctx.run_igreedy(fast_mode() ? 1 : 2);
    AlgoResult hg = (gr.ok && (!hy.ok || gr.area < hy.area)) ? gr : hy;
    AlgoResult best = (io.ok && (!hg.ok || io.area < hg.area)) ? io : hg;
    int trials = std::min(ctx.fsm().num_states(), fast_mode() ? 3 : 12);
    auto rnd = ctx.run_random(trials);
    std::printf(
        "%-10s | %5d %6d %7ld | %5d %6d %7ld | %5d %6d %7ld | %9ld %9ld\n",
        name.c_str(), io.nbits, io.cubes, io.area, hg.nbits, hg.cubes,
        hg.area, best.nbits, best.cubes, best.area, rnd.best_area,
        rnd.avg_area);
    std::fflush(stdout);
    tot_io += io.area;
    tot_hg += hg.area;
    tot_best += best.area;
    tot_rbest += rnd.best_area;
    tot_ravg += rnd.avg_area;
  }
  std::printf("\n%-10s %10s %10s %10s %10s %10s\n", "", "iohybrid",
              "ihyb/igr", "NOVA", "r-best", "r-avg");
  print_percent_row({{"io", tot_io},
                     {"hg", tot_hg},
                     {"best", tot_best},
                     {"rbest", tot_rbest},
                     {"ravg", tot_ravg}},
                    tot_rbest);
  std::printf(
      "Paper's Table IV totals: iohybrid 80%%, ihybrid/igreedy 84%%, NOVA "
      "best 77%% of best-random.\n");
  return 0;
}
