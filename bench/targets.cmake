# Bench targets are defined from the root so that build/bench/ contains only
# the executables (the harness iterates `for b in build/bench/*`).
add_library(nova_bench_common STATIC ${CMAKE_SOURCE_DIR}/bench/bench_common.cpp)
target_include_directories(nova_bench_common PUBLIC ${CMAKE_SOURCE_DIR}/bench ${CMAKE_SOURCE_DIR}/src)
target_link_libraries(nova_bench_common PUBLIC nova_driver nova_bench_data nova_mlopt)

# Stamp the perf report (BENCH_perf.json) with the revision being measured.
execute_process(
  COMMAND git rev-parse --short=12 HEAD
  WORKING_DIRECTORY ${CMAKE_SOURCE_DIR}
  OUTPUT_VARIABLE NOVA_GIT_SHA
  OUTPUT_STRIP_TRAILING_WHITESPACE
  ERROR_QUIET)
if(NOT NOVA_GIT_SHA)
  set(NOVA_GIT_SHA "unknown")
endif()
target_compile_definitions(nova_bench_common PRIVATE NOVA_GIT_SHA="${NOVA_GIT_SHA}")

function(nova_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cpp)
  target_link_libraries(${name} PRIVATE nova_bench_common)
  set_target_properties(${name} PROPERTIES RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

nova_bench(bench_table1)
nova_bench(bench_table2)
nova_bench(bench_table3)
nova_bench(bench_table4)
nova_bench(bench_table5)
nova_bench(bench_table6)
nova_bench(bench_table7)
nova_bench(bench_fig8)
nova_bench(bench_fig10)

add_executable(bench_micro ${CMAKE_SOURCE_DIR}/bench/bench_micro.cpp)
target_link_libraries(bench_micro PRIVATE nova_bench_common benchmark::benchmark)
set_target_properties(bench_micro PROPERTIES RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
nova_bench(bench_ablation)
nova_bench(bench_asterisk)
nova_bench(bench_exactmin)
nova_bench(bench_serve)
target_link_libraries(bench_serve PRIVATE nova_serve)
