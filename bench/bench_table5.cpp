// Table V: iohybrid vs Cappuccino/Cream. The comparator binary no longer
// exists; its per-example results are quoted from the paper (the paper
// itself only reprints them), and our measured iohybrid areas are printed
// alongside. The benchmark set is the paper's 19 machines.
#include <cstdio>
#include <map>

#include "bench_common.hpp"

namespace {
struct PaperRow {
  int bits;
  int cubes;
  long area;
};
// Cappuccino/Cream columns of Table V, as printed in the paper.
const std::map<std::string, PaperRow> kCappuccino = {
    {"bbtas", {4, 11, 198}},     {"cse", {8, 49, 2205}},
    {"lion", {2, 6, 66}},        {"lion9", {5, 10, 200}},
    {"modulo12", {7, 17, 408}},  {"planet", {10, 89, 5607}},
    {"s1", {7, 68, 2924}},       {"sand", {9, 107, 6206}},
    {"shiftreg", {4, 14, 210}},  {"styr", {12, 103, 6592}},
    {"tav", {3, 11, 231}},       {"train11", {6, 10, 230}},
    {"dol", {4, 8, 136}},        {"dk14", {5, 23, 598}},
    {"dk15", {4, 15, 345}},      {"dk16", {11, 49, 1960}},
    {"dk17", {4, 17, 323}},      {"dk27", {3, 9, 120}},
    {"dk512", {7, 22, 572}},
};
}  // namespace

int main() {
  using namespace nova::bench;
  std::printf(
      "Table V: iohybrid vs Cappuccino/Cream (paper-quoted)\n"
      "%-10s | %5s %6s %7s | %5s %6s %7s\n",
      "EXAMPLE", "bits", "cubes", "area", "bits", "cubes", "area");
  long tot_io = 0, tot_cc = 0;
  for (const auto& [name, paper] : kCappuccino) {
    BenchContext ctx(name);
    AlgoResult io = ctx.run_iohybrid(fast_mode() ? 1 : 2);
    std::printf("%-10s | %5d %6d %7ld | %5d %6d %7ld\n", name.c_str(),
                io.nbits, io.cubes, io.area, paper.bits, paper.cubes,
                paper.area);
    std::fflush(stdout);
    tot_io += io.area;
    tot_cc += paper.area;
  }
  std::printf("\n%-10s %10s %10s\n", "", "iohybrid", "cappuccino");
  print_percent_row({{"io", tot_io}, {"cc", tot_cc}}, tot_cc);
  std::printf(
      "Paper's Table V totals: iohybrid 71%% of Cappuccino/Cream (note: our "
      "synthetic stand-ins for the dk/cse/... machines make per-row values "
      "indicative only; the shape to check is iohybrid << 100%%).\n");
  return 0;
}
