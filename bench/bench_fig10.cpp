// Figure X: per-example ratios MUSTANG/NOVA for two-level cubes and
// multilevel factored literals, ordered by increasing number of states.
#include <cstdio>

#include "bench_common.hpp"
#include "mlopt/bridge.hpp"

namespace {
long multilevel_literals(nova::bench::BenchContext& ctx,
                         const nova::bench::Encoding& enc) {
  auto ev = nova::driver::evaluate_encoding(ctx.fsm(), enc);
  int nvars = ctx.fsm().num_inputs() + enc.nbits;
  int nouts = enc.nbits + ctx.fsm().num_outputs();
  auto sops = nova::mlopt::sops_from_cover(ev.minimized, nvars, nouts);
  return nova::mlopt::optimize_network(std::move(sops), nvars).literals;
}
}  // namespace

int main() {
  using namespace nova::bench;
  std::printf(
      "Figure X: MUSTANG/NOVA ratios (x ordered by #states)\n"
      "%-10s %7s | %11s %11s\n",
      "EXAMPLE", "#states", "cubes-ratio", "lit-ratio");
  for (const auto& name : bench_names()) {
    BenchContext ctx(name);
    AlgoResult mus = ctx.run_mustang_best(0);
    AlgoResult hy = ctx.run_ihybrid(0);
    AlgoResult gr = ctx.run_igreedy(0);
    AlgoResult io = ctx.run_iohybrid(0);
    AlgoResult best = (gr.ok && (!hy.ok || gr.area < hy.area)) ? gr : hy;
    if (io.ok && (!best.ok || io.area < best.area)) best = io;
    long mlit = multilevel_literals(ctx, mus.enc);
    long nlit = multilevel_literals(ctx, best.enc);
    std::printf("%-10s %7d | %11.2f %11.2f\n", name.c_str(),
                ctx.fsm().num_states(),
                best.cubes > 0 ? static_cast<double>(mus.cubes) / best.cubes
                               : 0.0,
                nlit > 0 ? static_cast<double>(mlit) / nlit : 0.0);
    std::fflush(stdout);
  }
  std::printf(
      "\nShape to check (paper Fig X): cube ratios mostly > 1 (NOVA wins "
      "two-level); literal ratios scattered around 1.\n");
  return 0;
}
