// Microbenchmarks (google-benchmark) of the library's hot kernels:
// tautology, complement, espresso, constraint extraction, semiexact
// embedding, projection, and the satisfaction checker; plus the
// instrumentation-overhead pair (BM_EspressoMidUntraced/Traced) backing
// the obs layer's <2% disabled-mode overhead claim.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "bench_data/benchmarks.hpp"
#include "constraints/input_constraints.hpp"
#include "encoding/baselines.hpp"
#include "encoding/embed.hpp"
#include "encoding/hybrid.hpp"
#include "fsm/symbolic.hpp"
#include "logic/espresso.hpp"
#include "nova/nova.hpp"
#include "obs/obs.hpp"
#include "util/rng.hpp"

namespace {

using namespace nova;

logic::Cover random_cover(int nvars, int ncubes, uint64_t seed) {
  util::Rng rng(seed);
  logic::CubeSpec spec = logic::CubeSpec::binary(nvars);
  logic::Cover f(spec);
  for (int i = 0; i < ncubes; ++i) {
    std::string row(nvars, '-');
    for (auto& ch : row) {
      int r = rng.uniform(3);
      ch = r == 0 ? '0' : (r == 1 ? '1' : '-');
    }
    logic::Cube q = logic::Cube::full(spec);
    q.set_binary_from_pla(spec, 0, row);
    f.add(q);
  }
  return f;
}

void BM_Tautology(benchmark::State& state) {
  auto f = random_cover(static_cast<int>(state.range(0)), 40, 11);
  for (auto _ : state) benchmark::DoNotOptimize(logic::tautology(f));
}
BENCHMARK(BM_Tautology)->Arg(8)->Arg(12)->Arg(16);

void BM_Complement(benchmark::State& state) {
  auto f = random_cover(static_cast<int>(state.range(0)), 20, 13);
  for (auto _ : state) {
    auto c = logic::complement(f);
    benchmark::DoNotOptimize(c.size());
  }
}
BENCHMARK(BM_Complement)->Arg(8)->Arg(12);

void BM_Espresso(benchmark::State& state) {
  auto f = random_cover(static_cast<int>(state.range(0)), 30, 17);
  for (auto _ : state) {
    auto g = logic::espresso(f);
    benchmark::DoNotOptimize(g.size());
  }
}
BENCHMARK(BM_Espresso)->Arg(8)->Arg(10);

void BM_SymbolicCover(benchmark::State& state) {
  auto f = bench_data::load_benchmark("keyb");
  for (auto _ : state) {
    auto sc = fsm::build_symbolic_cover(f);
    benchmark::DoNotOptimize(sc.on.size());
  }
}
BENCHMARK(BM_SymbolicCover);

void BM_ConstraintExtraction(benchmark::State& state) {
  auto f = bench_data::load_benchmark("train11");
  for (auto _ : state) {
    auto r = constraints::extract_input_constraints(f);
    benchmark::DoNotOptimize(r.constraints.size());
  }
}
BENCHMARK(BM_ConstraintExtraction);

void BM_Semiexact(benchmark::State& state) {
  auto f = bench_data::load_benchmark("train11");
  auto ics = constraints::extract_input_constraints(f).constraints;
  for (auto _ : state) {
    auto r = encoding::semiexact_code(ics, f.num_states(), 4);
    benchmark::DoNotOptimize(r.success);
  }
}
BENCHMARK(BM_Semiexact);

void BM_IHybrid(benchmark::State& state) {
  auto f = bench_data::load_benchmark("donfile");
  auto ics = constraints::extract_input_constraints(f).constraints;
  for (auto _ : state) {
    auto r = encoding::ihybrid_code(ics, f.num_states(), {});
    benchmark::DoNotOptimize(r.enc.nbits);
  }
}
BENCHMARK(BM_IHybrid);

void BM_SatisfactionCheck(benchmark::State& state) {
  util::Rng rng(19);
  auto enc = encoding::random_encoding(24, 5, rng);
  std::vector<encoding::InputConstraint> ics;
  for (int i = 0; i < 20; ++i) {
    util::BitVec s(24);
    for (int b = 0; b < 24; ++b) {
      if (rng.chance(0.3)) s.set(b);
    }
    ics.push_back({s, 1});
  }
  for (auto _ : state) {
    auto r = encoding::summarize_satisfaction(enc, ics);
    benchmark::DoNotOptimize(r.satisfied);
  }
}
BENCHMARK(BM_SatisfactionCheck);

void BM_ProjectCode(benchmark::State& state) {
  util::Rng rng(23);
  for (auto _ : state) {
    state.PauseTiming();
    auto enc = encoding::random_encoding(16, 4, rng);
    std::vector<encoding::InputConstraint> sic;
    util::BitVec s(16);
    s.set(1);
    s.set(5);
    s.set(9);
    std::vector<encoding::InputConstraint> ric = {{s, 1}};
    state.ResumeTiming();
    auto out = encoding::project_code(enc, sic, ric);
    benchmark::DoNotOptimize(out.nbits);
  }
}
BENCHMARK(BM_ProjectCode);

// --- instrumentation overhead: the same mid-size espresso run with the
// trace session off (every obs call is one thread-local test) and on
// (full span/counter collection). The untraced/traced ratio bounds the
// disabled-mode overhead of the instrumentation layer; compare the two
// with --benchmark_filter='EspressoMid'.
void BM_EspressoMidUntraced(benchmark::State& state) {
  auto f = bench_data::load_benchmark("train11");
  auto sc = nova::fsm::build_symbolic_cover(f);
  for (auto _ : state) {
    auto g = logic::espresso(sc.on, sc.dc);
    benchmark::DoNotOptimize(g.size());
  }
}
BENCHMARK(BM_EspressoMidUntraced);

void BM_EspressoMidTraced(benchmark::State& state) {
  auto f = bench_data::load_benchmark("train11");
  auto sc = nova::fsm::build_symbolic_cover(f);
  obs::Report report;
  {
    obs::TraceSession session(report);
    for (auto _ : state) {
      auto g = logic::espresso(sc.on, sc.dc);
      benchmark::DoNotOptimize(g.size());
    }
  }
  if (bench::obs_enabled())
    bench::obs_append("bench_micro.espresso_mid_traced", report);
}
BENCHMARK(BM_EspressoMidTraced);

void BM_EvaluateEncoding(benchmark::State& state) {
  auto f = bench_data::load_benchmark("bbtas");
  util::Rng rng(29);
  auto enc = encoding::random_encoding(f.num_states(), 3, rng);
  for (auto _ : state) {
    auto ev = driver::evaluate_encoding(f, enc);
    benchmark::DoNotOptimize(ev.metrics.cubes);
  }
}
BENCHMARK(BM_EvaluateEncoding);

}  // namespace

BENCHMARK_MAIN();
