// Microbenchmarks (google-benchmark) of the library's hot kernels:
// tautology, complement, espresso, constraint extraction, semiexact
// embedding, projection, and the satisfaction checker; plus the
// instrumentation-overhead pair (BM_EspressoMidUntraced/Traced) backing
// the obs layer's <2% disabled-mode overhead claim, and the
// allocation-counting pair-kernel bench (BM_CubeOpsNoAlloc) backing the
// "intersects/contains/distance never allocate" claim.
//
// Every benchmark's per-iteration real time is also recorded into the
// process perf report (BENCH_perf.json, see bench_common.hpp) under
// "micro.<name>", so speedups vs a NOVA_PERF_BASELINE file land there.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "bench_common.hpp"
#include "bench_data/benchmarks.hpp"
#include "constraints/input_constraints.hpp"
#include "encoding/baselines.hpp"
#include "encoding/embed.hpp"
#include "encoding/hybrid.hpp"
#include "fsm/symbolic.hpp"
#include "logic/espresso.hpp"
#include "nova/nova.hpp"
#include "obs/obs.hpp"
#include "util/rng.hpp"

// --- global allocation counter: every path through the replaceable
// operator new bumps g_alloc_count, letting BM_CubeOpsNoAlloc assert that
// the word-parallel cube kernels are allocation-free on the hot path.
namespace {
std::atomic<long> g_alloc_count{0};

void* counted_alloc(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace nova;

logic::Cover random_cover(int nvars, int ncubes, uint64_t seed) {
  util::Rng rng(seed);
  logic::CubeSpec spec = logic::CubeSpec::binary(nvars);
  logic::Cover f(spec);
  for (int i = 0; i < ncubes; ++i) {
    std::string row(nvars, '-');
    for (auto& ch : row) {
      int r = rng.uniform(3);
      ch = r == 0 ? '0' : (r == 1 ? '1' : '-');
    }
    logic::Cube q = logic::Cube::full(spec);
    q.set_binary_from_pla(spec, 0, row);
    f.add(q);
  }
  return f;
}

void BM_Tautology(benchmark::State& state) {
  auto f = random_cover(static_cast<int>(state.range(0)), 40, 11);
  for (auto _ : state) benchmark::DoNotOptimize(logic::tautology(f));
}
BENCHMARK(BM_Tautology)->Arg(8)->Arg(12)->Arg(16);

void BM_Complement(benchmark::State& state) {
  auto f = random_cover(static_cast<int>(state.range(0)), 20, 13);
  for (auto _ : state) {
    auto c = logic::complement(f);
    benchmark::DoNotOptimize(c.size());
  }
}
BENCHMARK(BM_Complement)->Arg(8)->Arg(12);

void BM_Espresso(benchmark::State& state) {
  auto f = random_cover(static_cast<int>(state.range(0)), 30, 17);
  for (auto _ : state) {
    auto g = logic::espresso(f);
    benchmark::DoNotOptimize(g.size());
  }
}
BENCHMARK(BM_Espresso)->Arg(8)->Arg(10);

void BM_SymbolicCover(benchmark::State& state) {
  auto f = bench_data::load_benchmark("keyb");
  for (auto _ : state) {
    auto sc = fsm::build_symbolic_cover(f);
    benchmark::DoNotOptimize(sc.on.size());
  }
}
BENCHMARK(BM_SymbolicCover);

void BM_ConstraintExtraction(benchmark::State& state) {
  auto f = bench_data::load_benchmark("train11");
  for (auto _ : state) {
    auto r = constraints::extract_input_constraints(f);
    benchmark::DoNotOptimize(r.constraints.size());
  }
}
BENCHMARK(BM_ConstraintExtraction);

void BM_Semiexact(benchmark::State& state) {
  auto f = bench_data::load_benchmark("train11");
  auto ics = constraints::extract_input_constraints(f).constraints;
  for (auto _ : state) {
    auto r = encoding::semiexact_code(ics, f.num_states(), 4);
    benchmark::DoNotOptimize(r.success);
  }
}
BENCHMARK(BM_Semiexact);

void BM_IHybrid(benchmark::State& state) {
  auto f = bench_data::load_benchmark("donfile");
  auto ics = constraints::extract_input_constraints(f).constraints;
  for (auto _ : state) {
    auto r = encoding::ihybrid_code(ics, f.num_states(), {});
    benchmark::DoNotOptimize(r.enc.nbits);
  }
}
BENCHMARK(BM_IHybrid);

void BM_SatisfactionCheck(benchmark::State& state) {
  util::Rng rng(19);
  auto enc = encoding::random_encoding(24, 5, rng);
  std::vector<encoding::InputConstraint> ics;
  for (int i = 0; i < 20; ++i) {
    util::BitVec s(24);
    for (int b = 0; b < 24; ++b) {
      if (rng.chance(0.3)) s.set(b);
    }
    ics.push_back({s, 1});
  }
  for (auto _ : state) {
    auto r = encoding::summarize_satisfaction(enc, ics);
    benchmark::DoNotOptimize(r.satisfied);
  }
}
BENCHMARK(BM_SatisfactionCheck);

void BM_ProjectCode(benchmark::State& state) {
  util::Rng rng(23);
  for (auto _ : state) {
    state.PauseTiming();
    auto enc = encoding::random_encoding(16, 4, rng);
    std::vector<encoding::InputConstraint> sic;
    util::BitVec s(16);
    s.set(1);
    s.set(5);
    s.set(9);
    std::vector<encoding::InputConstraint> ric = {{s, 1}};
    state.ResumeTiming();
    auto out = encoding::project_code(enc, sic, ric);
    benchmark::DoNotOptimize(out.nbits);
  }
}
BENCHMARK(BM_ProjectCode);

// --- instrumentation overhead: the same mid-size espresso run with the
// trace session off (every obs call is one thread-local test) and on
// (full span/counter collection). The untraced/traced ratio bounds the
// disabled-mode overhead of the instrumentation layer; compare the two
// with --benchmark_filter='EspressoMid'.
void BM_EspressoMidUntraced(benchmark::State& state) {
  auto f = bench_data::load_benchmark("train11");
  auto sc = nova::fsm::build_symbolic_cover(f);
  for (auto _ : state) {
    auto g = logic::espresso(sc.on, sc.dc);
    benchmark::DoNotOptimize(g.size());
  }
}
BENCHMARK(BM_EspressoMidUntraced);

void BM_EspressoMidTraced(benchmark::State& state) {
  auto f = bench_data::load_benchmark("train11");
  auto sc = nova::fsm::build_symbolic_cover(f);
  obs::Report report;
  {
    obs::TraceSession session(report);
    for (auto _ : state) {
      auto g = logic::espresso(sc.on, sc.dc);
      benchmark::DoNotOptimize(g.size());
    }
  }
  if (bench::obs_enabled())
    bench::obs_append("bench_micro.espresso_mid_traced", report);
}
BENCHMARK(BM_EspressoMidTraced);

// Pairwise cube kernels (intersects / contains / distance) over two covers,
// counting global allocations around the kernel loop. The counter must stay
// at zero — these are the inner loops of espresso's containment and
// distance scans, and the whole point of the BitVec small-buffer rewrite is
// that they never touch the heap. Arg = binary variable count: 16 fits the
// two inline words, 80 (160 bits) exercises the heap-backed representation,
// which must be allocation-free on reads all the same.
void BM_CubeOpsNoAlloc(benchmark::State& state) {
  const int nvars = static_cast<int>(state.range(0));
  const logic::Cover f = random_cover(nvars, 40, 31);
  const logic::Cover g = random_cover(nvars, 40, 37);
  const logic::CubeSpec& spec = f.spec();
  long kernel_allocs = 0;
  long hits = 0;
  for (auto _ : state) {
    const long before = g_alloc_count.load(std::memory_order_relaxed);
    for (int i = 0; i < f.size(); ++i) {
      for (int j = 0; j < g.size(); ++j) {
        hits += f[i].intersects(spec, g[j]) ? 1 : 0;
        hits += f[i].contains(g[j]) ? 1 : 0;
        hits += f[i].distance(spec, g[j]);
      }
    }
    benchmark::DoNotOptimize(hits);
    kernel_allocs += g_alloc_count.load(std::memory_order_relaxed) - before;
  }
  state.counters["allocs"] = static_cast<double>(kernel_allocs);
  if (kernel_allocs != 0) state.SkipWithError("cube kernels allocated");
}
BENCHMARK(BM_CubeOpsNoAlloc)->Arg(16)->Arg(80);

void BM_EvaluateEncoding(benchmark::State& state) {
  auto f = bench_data::load_benchmark("bbtas");
  util::Rng rng(29);
  auto enc = encoding::random_encoding(f.num_states(), 3, rng);
  for (auto _ : state) {
    auto ev = driver::evaluate_encoding(f, enc);
    benchmark::DoNotOptimize(ev.metrics.cubes);
  }
}
BENCHMARK(BM_EvaluateEncoding);

// Console output plus perf capture: each finished (non-aggregate,
// non-errored) run's per-iteration real time is recorded as
// "micro.<benchmark name>" so the exit-time BENCH_perf.json writer picks
// it up alongside the table benches' phase timings.
class PerfReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      if (run.iterations <= 0) continue;
      bench::perf_record(
          "micro." + run.benchmark_name(),
          run.real_accumulated_time / static_cast<double>(run.iterations));
    }
    ConsoleReporter::ReportRuns(runs);
  }
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  PerfReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
