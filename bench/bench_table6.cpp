// Table VI: statistics of ihybrid -- weight satisfied/unsatisfied at the
// minimum code length, the code length at which the projection satisfies
// everything, the exact minimum satisfying length (iexact, when it
// completes), and runtime.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace nova::bench;
  std::printf(
      "Table VI: statistics of ihybrid\n"
      "%-10s %6s %7s %8s %11s %9s\n",
      "EXAMPLE", "wsat", "wunsat", "clength", "ex-clength", "time(s)");
  double ratio_sum = 0;
  int ratio_n = 0;
  for (const auto& name : bench_names()) {
    BenchContext ctx(name);
    auto hs = ctx.hybrid_stats();
    // Exact satisfying length (bounded effort; '-' when not completed).
    AlgoResult ex;
    if (ctx.fsm().num_states() <= 48 &&
        ctx.input_constraints().size() <= 40) {
      ex = ctx.run_iexact(fast_mode() ? 100000 : 1500000, 4);
    }
    std::printf("%-10s %6d %7d %8d", name.c_str(), hs.wsat, hs.wunsat,
                hs.clength);
    if (ex.ok) {
      // iexact's nbits here is the exact minimum satisfying code length.
      std::printf(" %11d", ex.nbits);
      if (hs.clength > 0) {
        ratio_sum += static_cast<double>(hs.clength) / ex.nbits;
        ++ratio_n;
      }
    } else {
      std::printf(" %11s", "?");
    }
    std::printf(" %9.2f\n", hs.seconds);
    std::fflush(stdout);
  }
  if (ratio_n > 0) {
    std::printf(
        "\nihybrid satisfying length vs exact minimum: avg ratio %.2f "
        "(paper: ~10%% above optimum)\n",
        ratio_sum / ratio_n);
  }
  return 0;
}
