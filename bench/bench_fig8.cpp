// Figures VIII and IX: per-example area ratios over NOVA's best result,
// with examples ordered by increasing number of states (the x-axis of the
// paper's plots). Fig VIII: random-best/NOVA, random-avg/NOVA, KISS/NOVA.
// Fig IX: ihybrid/NOVA and iohybrid/NOVA.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace nova::bench;
  std::printf(
      "Figures VIII & IX: area ratios vs NOVA best (x ordered by #states)\n"
      "%-10s %7s | %9s %9s %9s | %9s %9s\n",
      "EXAMPLE", "#states", "rbest/N", "ravg/N", "KISS/N", "ihyb/N",
      "iohyb/N");
  for (const auto& name : bench_names()) {
    BenchContext ctx(name);
    AlgoResult hy = ctx.run_ihybrid(fast_mode() ? 1 : 2);
    AlgoResult gr = ctx.run_igreedy(fast_mode() ? 1 : 2);
    AlgoResult io = ctx.run_iohybrid(fast_mode() ? 1 : 2);
    AlgoResult hg = (gr.ok && (!hy.ok || gr.area < hy.area)) ? gr : hy;
    AlgoResult best = (io.ok && (!hg.ok || io.area < hg.area)) ? io : hg;
    AlgoResult kiss = ctx.run_kiss();
    int trials = std::min(ctx.fsm().num_states(), fast_mode() ? 3 : 12);
    auto rnd = ctx.run_random(trials);
    double n = static_cast<double>(best.area);
    std::printf("%-10s %7d | %9.2f %9.2f ", name.c_str(),
                ctx.fsm().num_states(), rnd.best_area / n, rnd.avg_area / n);
    if (kiss.ok)
      std::printf("%9.2f |", kiss.area / n);
    else
      std::printf("%9s |", "-");
    std::printf(" %9.2f %9.2f\n", hg.area / n, io.area / n);
    std::fflush(stdout);
  }
  std::printf(
      "\nShape to check (paper Figs VIII-IX): ratios >= 1.0 nearly "
      "everywhere, random-avg highest, ihybrid/iohybrid close to 1.\n");
  return 0;
}
