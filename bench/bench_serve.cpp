// Batch-serving throughput: runs the Table I + Table V workload through the
// serve subsystem at 1..N worker threads and writes the throughput
// trajectory (jobs completed over time, per thread count) to
// BENCH_serve.json (path override: NOVA_SERVE_JSON). The journal and the
// outputs stay in a scratch directory under the build tree.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "bench_data/benchmarks.hpp"
#include "obs/json.hpp"
#include "serve/serve.hpp"
#include "util/fileio.hpp"
#include "util/thread_pool.hpp"

int main() {
  using namespace nova;

  std::vector<serve::JobSpec> jobs;
  {
    std::string manifest;
    for (const auto& b : bench_data::table1_benchmarks())
      manifest += b.name + "\n";
    for (const auto& b : bench_data::table5_extras())
      manifest += b.name + "\n";
    std::string err;
    jobs = serve::parse_manifest(manifest, driver::Algorithm::kIHybrid, &err);
    if (jobs.empty()) {
      std::fprintf(stderr, "manifest error: %s\n", err.c_str());
      return 1;
    }
  }

  const int hw = util::ThreadPool::default_threads();
  std::vector<int> thread_counts{1};
  if (hw >= 2) thread_counts.push_back(2);
  if (hw >= 4) thread_counts.push_back(4);

  obs::Json runs = obs::Json::array();
  std::printf("serve throughput, %zu jobs\n", jobs.size());
  std::printf("%8s %10s %10s %10s\n", "THREADS", "SECONDS", "JOBS/S",
              "RETRIES");
  for (int threads : thread_counts) {
    serve::BatchOptions opts;
    opts.threads = threads;
    opts.journal_path = "serve_scratch/bench_serve.jsonl";
    ::remove(opts.journal_path.c_str());
    util::ensure_dir("serve_scratch");
    serve::BatchResult res = serve::run_batch(jobs, opts);
    if (!res.complete() || res.failed != 0) {
      std::fprintf(stderr, "serve bench: batch incomplete (%d failed, %d "
                           "pending)\n",
                   res.failed, res.pending);
      return 1;
    }
    double rate = res.seconds > 0 ? res.jobs.size() / res.seconds : 0.0;
    std::printf("%8d %10.3f %10.1f %10d\n", threads, res.seconds, rate,
                res.retries);
    bench::perf_record("serve_" + std::to_string(threads) + "t",
                       res.seconds);

    obs::Json run = obs::Json::object();
    run.set("threads", threads);
    run.set("seconds", res.seconds);
    run.set("jobs", static_cast<int>(res.jobs.size()));
    run.set("jobs_per_second", rate);
    obs::Json traj = obs::Json::array();
    for (const auto& [secs, done] : res.trajectory) {
      obs::Json p = obs::Json::object();
      p.set("seconds", secs);
      p.set("done", done);
      traj.push_back(std::move(p));
    }
    run.set("trajectory", std::move(traj));
    runs.push_back(std::move(run));
  }

  obs::Json doc = obs::Json::object();
  doc.set("version", 1);
  doc.set("runs", std::move(runs));
  const char* env = std::getenv("NOVA_SERVE_JSON");
  std::string path = env && env[0] ? env : "BENCH_serve.json";
  std::string text = doc.dump(2);
  text += '\n';
  if (!util::write_file_atomic(path, text)) {
    std::fprintf(stderr, "serve bench: cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(stderr, "serve bench: wrote %s\n", path.c_str());
  return 0;
}
