// Table III: best of ihybrid/igreedy vs the KISS-like baseline and random
// state assignments (best and average of N trials, N = #states as in the
// paper, capped in fast mode).
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace nova::bench;
  std::printf(
      "Table III: ihybrid/igreedy (best) vs KISS vs RANDOM\n"
      "%-10s | %5s %6s %7s | %5s %6s %7s | %9s %9s\n",
      "EXAMPLE", "bits", "cubes", "area", "bits", "cubes", "area",
      "rand-best", "rand-avg");
  long tot_nova = 0, tot_rbest = 0, tot_ravg = 0;
  // Common-row totals (only examples where KISS stayed evaluable), so the
  // KISS percentage is an apples-to-apples comparison.
  long c_nova = 0, c_kiss = 0, c_rbest = 0;
  bool kiss_all = true;
  for (const auto& name : bench_names()) {
    BenchContext ctx(name);
    AlgoResult hy = ctx.run_ihybrid(fast_mode() ? 1 : 2);
    AlgoResult gr = ctx.run_igreedy(fast_mode() ? 1 : 2);
    AlgoResult best = (gr.ok && (!hy.ok || gr.area < hy.area)) ? gr : hy;
    AlgoResult kiss = ctx.run_kiss();
    int trials = std::min(ctx.fsm().num_states(), fast_mode() ? 3 : 12);
    auto rnd = ctx.run_random(trials);
    std::printf("%-10s | %5d %6d %7ld |", name.c_str(), best.nbits,
                best.cubes, best.area);
    if (kiss.ok) {
      std::printf(" %5d %6d %7ld |", kiss.nbits, kiss.cubes, kiss.area);
      c_nova += best.area;
      c_kiss += kiss.area;
      c_rbest += rnd.best_area;
    } else {
      std::printf(" %5s %6s %7s |", "-", "-", "-");
      kiss_all = false;
    }
    std::printf(" %9ld %9ld\n", rnd.best_area, rnd.avg_area);
    std::fflush(stdout);
    tot_nova += best.area;
    tot_rbest += rnd.best_area;
    tot_ravg += rnd.avg_area;
  }
  std::printf("\nAll examples:   %-10s %10s %10s\n", "nova", "r-best",
              "r-avg");
  print_percent_row({{"nova", tot_nova},
                     {"rbest", tot_rbest},
                     {"ravg", tot_ravg}},
                    tot_rbest);
  std::printf("\nKISS-comparable rows: %-10s %10s %10s\n", "nova", "kiss",
              "r-best");
  print_percent_row(
      {{"nova", c_nova}, {"kiss", c_kiss}, {"rbest", c_rbest}}, c_rbest);
  if (!kiss_all)
    std::printf("(some rows excluded from the KISS comparison: its code "
                "exceeded the evaluable width)\n");
  std::printf(
      "Paper's headline: NOVA best ~20%% below KISS, ~30%% below best "
      "random (percent row is relative to rand-best = 100).\n");
  return 0;
}
