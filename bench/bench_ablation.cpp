// Ablations of the design choices DESIGN.md calls out:
//   A1: constraint weights -- ihybrid's weight-ordered greedy vs unit
//       weights (does ordering by product-term savings matter?)
//   A2: the semiexact work budget (max_work), the paper's "magic number"
//   A3: projection from the minimum length vs semiexact directly at the
//       target length (our extension; paper always starts at the minimum)
//   A4: espresso full reduce/expand/irredundant loop vs a single pass for
//       the final encoded cover
#include <cstdio>

#include "bench_common.hpp"
#include "encoding/hybrid.hpp"

namespace {
const char* kMachines[] = {"bbtas", "dk27", "train11", "donfile",
                           "dk16",  "keyb", "s1",      "planet"};
}

int main() {
  using namespace nova::bench;
  std::vector<std::string> names;
  if (const char* only = std::getenv("NOVA_BENCH_ONLY")) {
    names.push_back(only);
  } else {
    for (const char* n : kMachines) names.push_back(n);
  }

  std::printf("A1/A2/A3: ihybrid area under ablations\n");
  std::printf("%-10s %9s %9s | %8s %8s | %9s %9s\n", "EXAMPLE", "weighted",
              "unit-wgt", "work=500", "work=50k", "min-start", "at-nbits");
  long t_w = 0, t_u = 0, t_lo = 0, t_hi = 0, t_min = 0, t_at = 0;
  for (const auto& name : names) {
    BenchContext ctx(name);
    auto ics = ctx.input_constraints();
    const int n = ctx.fsm().num_states();
    const int bits = ctx.min_length() + 1;

    auto run = [&](std::vector<nova::encoding::InputConstraint> cs,
                   long work, bool at_nbits) {
      nova::encoding::HybridOptions ho;
      ho.nbits = bits;
      ho.max_work = work;
      ho.start_at_nbits = at_nbits;
      auto hr = nova::encoding::ihybrid_code(cs, n, ho);
      return ctx.evaluate(hr.enc).area;
    };

    auto unit = ics;
    for (auto& ic : unit) ic.weight = 1;
    long a_w = run(ics, 20000, false);
    long a_u = run(unit, 20000, false);
    long a_lo = run(ics, 500, false);
    long a_hi = run(ics, 50000, false);
    long a_at = run(ics, 20000, true);
    std::printf("%-10s %9ld %9ld | %8ld %8ld | %9ld %9ld\n", name.c_str(),
                a_w, a_u, a_lo, a_hi, a_w, a_at);
    std::fflush(stdout);
    t_w += a_w;
    t_u += a_u;
    t_lo += a_lo;
    t_hi += a_hi;
    t_min += a_w;
    t_at += a_at;
  }
  std::printf("%-10s %9ld %9ld | %8ld %8ld | %9ld %9ld\n", "TOTAL", t_w, t_u,
              t_lo, t_hi, t_min, t_at);

  std::printf("\nA4: espresso loop vs single pass (final-cover cubes)\n");
  std::printf("%-10s %10s %12s\n", "EXAMPLE", "full-loop", "single-pass");
  long c_full = 0, c_single = 0;
  for (const auto& name : names) {
    BenchContext ctx(name);
    auto hy = ctx.run_ihybrid(0);
    nova::logic::EspressoOptions single;
    single.single_pass = true;
    auto full = nova::driver::evaluate_encoding(ctx.fsm(), hy.enc);
    auto once = nova::driver::evaluate_encoding(ctx.fsm(), hy.enc, single);
    std::printf("%-10s %10d %12d\n", name.c_str(), full.metrics.cubes,
                once.metrics.cubes);
    std::fflush(stdout);
    c_full += full.metrics.cubes;
    c_single += once.metrics.cubes;
  }
  std::printf("%-10s %10ld %12ld\n", "TOTAL", c_full, c_single);
  return 0;
}
