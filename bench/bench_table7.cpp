// Table VII: two-level and multilevel comparison of MUSTANG-like encodings
// vs NOVA. #cubes = espresso cube count at minimum code length; #lit =
// factored-form literals after multilevel optimization (our MIS-II
// substitute: shared kernel extraction + good-factoring), plus the best
// random assignment's literals.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "mlopt/bridge.hpp"

namespace {

long multilevel_literals(nova::bench::BenchContext& ctx,
                         const nova::bench::Encoding& enc) {
  auto ev = nova::driver::evaluate_encoding(ctx.fsm(), enc);
  int nvars = ctx.fsm().num_inputs() + enc.nbits;
  int nouts = enc.nbits + ctx.fsm().num_outputs();
  auto sops = nova::mlopt::sops_from_cover(ev.minimized, nvars, nouts);
  return nova::mlopt::optimize_network(std::move(sops), nvars).literals;
}

// The paper's Table VII subset (24 machines).
const char* kSubset[] = {"dk14",    "dk15",  "dk16",     "ex1",   "ex2",
                         "ex3",     "bbara", "bbsse",    "bbtas", "beecount",
                         "cse",     "donfile", "keyb",   "mark1", "physrec",
                         "planet",  "s1",    "sand",     "scf",   "scud",
                         "shiftreg", "styr", "tbk",      "train11"};

}  // namespace

int main() {
  using namespace nova::bench;
  std::printf(
      "Table VII: MUSTANG vs NOVA, two-level cubes and multilevel literals\n"
      "%-10s | %8s %8s | %8s %8s %8s\n",
      "EXAMPLE", "MUScubes", "NOVAcubes", "MUSlit", "NOVAlit", "RANDlit");
  long tm_cubes = 0, tn_cubes = 0, tm_lit = 0, tn_lit = 0, tr_lit = 0;
  std::vector<std::string> names;
  if (const char* only = std::getenv("NOVA_BENCH_ONLY")) {
    names.push_back(only);
  } else {
    for (const char* n : kSubset) names.push_back(n);
  }
  for (const auto& name : names) {
    BenchContext ctx(name);
    // Minimum code length for both, as in the paper.
    AlgoResult mus = ctx.run_mustang_best(0);
    AlgoResult hy = ctx.run_ihybrid(0);
    AlgoResult gr = ctx.run_igreedy(0);
    AlgoResult io = ctx.run_iohybrid(0);
    AlgoResult nova_best = (gr.ok && (!hy.ok || gr.area < hy.area)) ? gr : hy;
    if (io.ok && (!nova_best.ok || io.area < nova_best.area)) nova_best = io;
    long mus_lit = multilevel_literals(ctx, mus.enc);
    long nova_lit = multilevel_literals(ctx, nova_best.enc);
    // Best random literals over a few trials.
    int trials = fast_mode() ? 2 : 5;
    long rand_lit = 0;
    for (int t = 0; t < trials; ++t) {
      nova::util::Rng rng(500 + 13 * t);
      auto enc = nova::encoding::random_encoding(ctx.fsm().num_states(),
                                                 ctx.min_length(), rng);
      long lit = multilevel_literals(ctx, enc);
      if (t == 0 || lit < rand_lit) rand_lit = lit;
    }
    std::printf("%-10s | %8d %8d | %8ld %8ld %8ld\n", name.c_str(),
                mus.cubes, nova_best.cubes, mus_lit, nova_lit, rand_lit);
    std::fflush(stdout);
    tm_cubes += mus.cubes;
    tn_cubes += nova_best.cubes;
    tm_lit += mus_lit;
    tn_lit += nova_lit;
    tr_lit += rand_lit;
  }
  std::printf("\nTOTAL cubes: MUSTANG %ld NOVA %ld (paper: 124%% vs 100%%)\n",
              tm_cubes, tn_cubes);
  std::printf("TOTAL literals: MUSTANG %ld NOVA %ld RANDOM %ld "
              "(paper: 108%% / 100%% / 130%%)\n",
              tm_lit, tn_lit, tr_lit);
  return 0;
}
