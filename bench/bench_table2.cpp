// Table II: comparisons of iexact, ihybrid, igreedy and the 1-hot encoding.
// For each example: #bits, #cubes (after espresso) and area. iexact runs
// under a work budget and reports '-' when it cannot complete, as in the
// paper (scf, tbk).
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace nova::bench;
  std::printf(
      "Table II: iexact vs ihybrid vs igreedy vs 1-hot\n"
      "%-10s | %5s %6s %7s | %5s %6s %7s | %5s %6s %7s | %6s\n",
      "EXAMPLE", "bits", "cubes", "area", "bits", "cubes", "area", "bits",
      "cubes", "area", "1-hot");
  long tot_exact = 0, tot_hyb = 0, tot_greedy = 0;
  int exact_done = 0;
  for (const auto& name : bench_names()) {
    BenchContext ctx(name);
    // iexact is hopeless on the biggest machines; skip early (as the paper
    // reports failures for them) but still try everything moderate.
    AlgoResult ex;
    if (ctx.fsm().num_states() <= 48 &&
        ctx.input_constraints().size() <= 40) {
      ex = ctx.run_iexact(fast_mode() ? 100000 : 1500000, 4);
    }
    AlgoResult hy = ctx.run_ihybrid(fast_mode() ? 1 : 2);
    AlgoResult gr = ctx.run_igreedy(fast_mode() ? 1 : 2);
    int onehot = ctx.one_hot_cubes();
    if (ex.ok) {
      std::printf("%-10s | %5d %6d %7ld |", name.c_str(), ex.nbits, ex.cubes,
                  ex.area);
      tot_exact += ex.area;
      ++exact_done;
    } else {
      std::printf("%-10s | %5s %6s %7s |", name.c_str(), "-", "-", "-");
    }
    std::printf(" %5d %6d %7ld | %5d %6d %7ld | %6d\n", hy.nbits, hy.cubes,
                hy.area, gr.nbits, gr.cubes, gr.area, onehot);
    std::fflush(stdout);
    tot_hyb += hy.area;
    tot_greedy += gr.area;
  }
  std::printf(
      "\niexact completed on %d examples (area total %ld on those)\n"
      "ihybrid total area %ld, igreedy total area %ld\n",
      exact_done, tot_exact, tot_hyb, tot_greedy);
  std::printf(
      "Paper's observation to check: iexact satisfies all constraints but "
      "its longer codes yield LARGER areas than ihybrid.\n");
  return 0;
}
