// Table I: statistics of the benchmark examples -- #inputs, #outputs,
// #states, #symbolic-terms, plus the minimized multiple-valued cover size
// (which equals the 1-hot product-term count reported under "1-hot" in
// Table II).
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace nova::bench;
  std::printf("Table I: statistics of benchmark examples\n");
  std::printf("%-10s %7s %8s %7s %7s %9s\n", "EXAMPLE", "#inputs",
              "#outputs", "#states", "#terms", "mv-min");
  int total_terms = 0;
  for (const auto& name : bench_names()) {
    BenchContext ctx(name);
    const auto& f = ctx.fsm();
    std::printf("%-10s %7d %8d %7d %7d %9d\n", name.c_str(), f.num_inputs(),
                f.num_outputs(), f.num_states(), f.num_transitions(),
                ctx.one_hot_cubes());
    std::fflush(stdout);
    total_terms += f.num_transitions();
  }
  std::printf("total symbolic terms: %d\n", total_terms);
  return 0;
}
