// Quality audit of the heuristic minimizer against the exact one
// (Quine-McCluskey / Blake + covering) on the benchmark machines' encoded
// PLAs -- small ones only, where the exact method is feasible.
#include <cstdio>

#include "bench_common.hpp"
#include "logic/exact.hpp"

namespace {
const char* kMachines[] = {"lion", "bbtas", "dk27", "tav", "shiftreg",
                           "beecount", "modulo12", "train11"};
}

int main() {
  using namespace nova::bench;
  std::printf(
      "Espresso vs exact minimum on encoded PLAs\n"
      "%-10s %9s %7s %8s %7s\n",
      "EXAMPLE", "espresso", "exact", "optimal?", "primes");
  int esp_total = 0, exact_total = 0;
  std::vector<std::string> names;
  if (const char* only = std::getenv("NOVA_BENCH_ONLY")) {
    names.push_back(only);
  } else {
    for (const char* n : kMachines) names.push_back(n);
  }
  for (const auto& name : names) {
    BenchContext ctx(name);
    AlgoResult hy = ctx.run_ihybrid(0);
    auto ev = nova::driver::evaluate_encoding(ctx.fsm(), hy.enc);
    // Re-minimize the same ON/DC exactly: rebuild from the eval cover's
    // spec by minimizing the heuristic result against an empty DC -- the
    // heuristic cover IS the function (plus DC freedom it already used),
    // so exact(espresso_result) <= espresso cubes is the audit.
    nova::logic::ExactMinOptions xo;
    xo.max_primes = 3000;
    xo.max_nodes = 300000;
    auto ex = nova::logic::exact_minimize(ev.minimized, xo);
    std::printf("%-10s %9d %7d %8s %7d\n", name.c_str(), ev.metrics.cubes,
                ex.cover.size(), ex.optimal ? "yes" : "capped",
                ex.num_primes);
    std::fflush(stdout);
    esp_total += ev.metrics.cubes;
    exact_total += ex.cover.size();
  }
  std::printf("\nTOTAL: espresso %d vs exact-reminimized %d "
              "(gap = heuristic loss, expected within a few %%)\n",
              esp_total, exact_total);
  return 0;
}
