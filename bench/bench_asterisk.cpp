// The paper's asterisked rows (Tables II-IV): simultaneous encoding of the
// symbolic proper inputs and the states. For each fully-input-specified
// machine we print the standard state-only encoding next to the
// symbolic-input variant (inputs re-encoded as one multiple-valued
// variable); the area formula then uses the encoded input bit count.
#include <cstdio>

#include "bench_common.hpp"
#include "nova/symbolic_inputs.hpp"

namespace {
const char* kMachines[] = {"dk15", "dk14", "dk27", "dk17", "dk512",
                           "shiftreg", "modulo12", "tav", "bbtas"};
}

int main() {
  using namespace nova::bench;
  std::printf(
      "Asterisk rows: state-only vs state+symbolic-input encoding\n"
      "%-10s | %6s %6s %7s | %5s %6s %6s %7s\n",
      "EXAMPLE", "bits", "cubes", "area", "isyms", "i+s", "cubes", "area");
  long tot_plain = 0, tot_star = 0;
  std::vector<std::string> names;
  if (const char* only = std::getenv("NOVA_BENCH_ONLY")) {
    names.push_back(only);
  } else {
    for (const char* n : kMachines) names.push_back(n);
  }
  for (const auto& name : names) {
    BenchContext ctx(name);
    AlgoResult plain = ctx.run_ihybrid(fast_mode() ? 0 : 1);
    auto star = nova::driver::encode_with_symbolic_inputs(ctx.fsm());
    std::printf("%-10s | %6d %6d %7ld |", name.c_str(), plain.nbits,
                plain.cubes, plain.area);
    if (star.applied) {
      std::printf(" %5d %6d %6d %7ld\n", star.num_input_symbols,
                  star.input_enc.nbits + star.metrics.nbits,
                  star.metrics.cubes, star.metrics.area);
      tot_star += star.metrics.area;
      tot_plain += plain.area;
    } else {
      std::printf(" %5s %6s %6s %7s\n", "-", "-", "-", "-");
    }
    std::fflush(stdout);
  }
  std::printf(
      "\nTOTAL (applicable rows): state-only %ld, inputs+states %ld\n"
      "Shape to check: re-encoding the proper inputs reduces PLA columns "
      "when the raw input space is sparsely used (the paper's dk rows).\n",
      tot_plain, tot_star);
  return 0;
}
