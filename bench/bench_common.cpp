#include "bench_common.hpp"

#include <sys/utsname.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <mutex>
#include <sstream>
#include <thread>

#include "encoding/embed.hpp"
#include "encoding/polish.hpp"
#include "util/fileio.hpp"

#ifndef NOVA_GIT_SHA
#define NOVA_GIT_SHA "unknown"
#endif

namespace nova::bench {

namespace {
double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct ObsTrajectory {
  std::mutex mu;
  obs::Json::Array entries;
  bool exit_hook_registered = false;
};

ObsTrajectory& trajectory() {
  static ObsTrajectory t;
  return t;
}

void write_trajectory() {
  ObsTrajectory& t = trajectory();
  std::lock_guard<std::mutex> lock(t.mu);
  if (t.entries.empty()) return;
  const char* env = std::getenv("NOVA_OBS_JSON");
  std::string path = env && env[0] ? env : "BENCH_obs.json";
  obs::Json doc = obs::Json::object();
  doc.set("version", 1);
  doc.set("entries", obs::Json(t.entries));
  std::string text = doc.dump(2);
  text += '\n';
  // Atomic replace: a crash (or a SIGKILL'd CI job) mid-write must leave
  // the previous complete BENCH_*.json, never a truncated one.
  if (!util::write_file_atomic(path, text)) {
    std::fprintf(stderr, "obs: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(stderr, "obs: wrote %zu trajectory entries to %s\n",
               t.entries.size(), path.c_str());
}
struct PerfEntry {
  std::string name;
  double seconds = 0.0;
};

struct PerfRegistry {
  std::mutex mu;
  std::vector<PerfEntry> entries;
  bool exit_hook_registered = false;
};

PerfRegistry& perf_registry() {
  static PerfRegistry r;
  return r;
}

obs::Json machine_info() {
  obs::Json m = obs::Json::object();
  char host[256] = {0};
  if (gethostname(host, sizeof(host) - 1) == 0) m.set("host", host);
  utsname un{};
  if (uname(&un) == 0) {
    m.set("os", std::string(un.sysname) + " " + un.release);
    m.set("arch", un.machine);
  }
  m.set("cpus", static_cast<int>(std::thread::hardware_concurrency()));
#if defined(__VERSION__)
  m.set("compiler", __VERSION__);
#endif
  return m;
}

/// Loads $NOVA_PERF_BASELINE and returns its entries as (name, seconds)
/// pairs; empty when unset, unreadable, or malformed.
std::vector<PerfEntry> load_baseline(std::string* path_out) {
  std::vector<PerfEntry> out;
  const char* env = std::getenv("NOVA_PERF_BASELINE");
  if (!env || !env[0]) return out;
  *path_out = env;
  std::ifstream in(env);
  if (!in) {
    std::fprintf(stderr, "perf: cannot read baseline %s\n", env);
    return out;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  std::string err;
  auto doc = obs::Json::parse(ss.str(), &err);
  if (!doc || !doc->is_object()) {
    std::fprintf(stderr, "perf: bad baseline %s: %s\n", env, err.c_str());
    return out;
  }
  const obs::Json* entries = doc->find("entries");
  if (!entries || !entries->is_array()) return out;
  for (const obs::Json& e : entries->as_array()) {
    if (!e.is_object()) continue;
    const obs::Json* name = e.find("name");
    const obs::Json* seconds = e.find("seconds");
    if (!name || !name->is_string() || !seconds || !seconds->is_number())
      continue;
    out.push_back({name->as_string(), seconds->as_number()});
  }
  return out;
}

void write_perf_report() {
  PerfRegistry& r = perf_registry();
  std::lock_guard<std::mutex> lock(r.mu);
  if (r.entries.empty()) return;
  const char* env = std::getenv("NOVA_PERF_JSON");
  std::string path = env && env[0] ? env : "BENCH_perf.json";
  std::string baseline_path;
  std::vector<PerfEntry> baseline = load_baseline(&baseline_path);

  obs::Json doc = obs::Json::object();
  doc.set("version", 1);
  doc.set("git_sha", NOVA_GIT_SHA);
  doc.set("machine", machine_info());
  if (!baseline_path.empty()) doc.set("baseline", baseline_path);
  obs::Json entries = obs::Json::array();
  for (const PerfEntry& e : r.entries) {
    obs::Json j = obs::Json::object();
    j.set("name", e.name);
    j.set("seconds", e.seconds);
    for (const PerfEntry& b : baseline) {
      if (b.name != e.name) continue;
      j.set("baseline_seconds", b.seconds);
      if (e.seconds > 0.0) j.set("speedup", b.seconds / e.seconds);
      break;
    }
    entries.push_back(std::move(j));
  }
  doc.set("entries", std::move(entries));

  std::string text = doc.dump(2);
  text += '\n';
  if (!util::write_file_atomic(path, text)) {
    std::fprintf(stderr, "perf: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(stderr, "perf: wrote %zu entries to %s\n", r.entries.size(),
               path.c_str());
}
}  // namespace

void perf_record(const std::string& name, double seconds) {
  PerfRegistry& r = perf_registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.entries.push_back({name, seconds});
  if (!r.exit_hook_registered) {
    r.exit_hook_registered = true;
    std::atexit(write_perf_report);
  }
}

PerfPhase::PerfPhase(std::string name)
    : name_(std::move(name)), t0_(now_seconds()) {}

PerfPhase::~PerfPhase() { perf_record(name_, now_seconds() - t0_); }

bool fast_mode() {
  const char* v = std::getenv("NOVA_BENCH_FAST");
  return v && v[0] == '1';
}

bool obs_enabled() { return obs::env_trace_enabled(); }

void obs_append(const std::string& label, const obs::Report& report) {
  obs::Json entry = obs::Json::object();
  entry.set("label", label);
  entry.set("report", report.to_json());
  ObsTrajectory& t = trajectory();
  std::lock_guard<std::mutex> lock(t.mu);
  t.entries.push_back(std::move(entry));
  if (!t.exit_hook_registered) {
    t.exit_hook_registered = true;
    std::atexit(write_trajectory);
  }
}

std::vector<std::string> bench_names() {
  if (const char* only = std::getenv("NOVA_BENCH_ONLY")) {
    return {std::string(only)};
  }
  std::vector<std::string> out;
  for (const auto& b : bench_data::table1_benchmarks()) out.push_back(b.name);
  return out;
}

BenchContext::BenchContext(const std::string& name)
    : name_(name), fsm_(bench_data::load_benchmark(name)) {
  if (obs_enabled()) {
    report_ = std::make_unique<obs::Report>();
    session_.emplace(*report_);
  }
}

BenchContext::~BenchContext() {
  if (report_) {
    session_.reset();  // stop collecting before serializing
    obs_append(name_, *report_);
  }
}

int BenchContext::min_length() const {
  return encoding::min_code_length(fsm_.num_states());
}

const std::vector<encoding::InputConstraint>&
BenchContext::input_constraints() {
  if (!ic_) {
    PerfPhase phase(name_ + ".extract");
    ic_ = constraints::extract_input_constraints(fsm_, eopts_);
  }
  return ic_->constraints;
}

int BenchContext::one_hot_cubes() {
  input_constraints();
  return ic_->minimized_cubes;
}

const constraints::SymbolicMinResult& BenchContext::symbolic() {
  if (!sm_) {
    PerfPhase phase(name_ + ".symbolic_min");
    sm_ = constraints::symbolic_minimize(fsm_, eopts_);
  }
  return *sm_;
}

PlaMetrics BenchContext::evaluate(const Encoding& enc) {
  return driver::evaluate_encoding(fsm_, enc, eopts_).metrics;
}

AlgoResult BenchContext::run_iexact(long work_budget, int max_extra_bits) {
  input_constraints();  // keep extraction in its own perf phase
  PerfPhase phase(name_ + ".iexact");
  AlgoResult res;
  double t0 = now_seconds();
  encoding::InputGraph ig(input_constraints(), fsm_.num_states());
  encoding::ExactOptions eo;
  eo.max_work = fast_mode() ? work_budget / 10 : work_budget;
  eo.max_bits = std::min(min_length() + max_extra_bits, fsm_.num_states());
  auto er = encoding::iexact_code(ig, eo);
  res.seconds = now_seconds() - t0;
  if (!er.success) return res;
  res.ok = true;
  res.enc = std::move(er.enc);
  PlaMetrics m = evaluate(res.enc);
  res.nbits = m.nbits;
  res.cubes = m.cubes;
  res.area = m.area;
  return res;
}

namespace {
AlgoResult best_of(BenchContext& ctx, int sweep,
                   const std::function<Encoding(int nbits)>& make) {
  AlgoResult best;
  double t0 = now_seconds();
  for (int extra = 0; extra <= sweep; ++extra) {
    int nbits = ctx.min_length() + extra;
    if (nbits > 62) break;
    Encoding enc = make(nbits);
    if (enc.num_states() == 0) continue;
    PlaMetrics m = ctx.evaluate(enc);
    if (!best.ok || m.area < best.area) {
      best.ok = true;
      best.enc = std::move(enc);
      best.nbits = m.nbits;
      best.cubes = m.cubes;
      best.area = m.area;
    }
  }
  best.seconds = now_seconds() - t0;
  return best;
}
}  // namespace

AlgoResult BenchContext::run_ihybrid(int sweep) {
  const auto& ics = input_constraints();
  PerfPhase phase(name_ + ".ihybrid");
  const int n = fsm_.num_states();
  auto make = [&](int nbits, bool at_nbits) {
    encoding::HybridOptions ho;
    ho.nbits = nbits;
    ho.max_work = fast_mode() ? 5000 : 20000;
    ho.start_at_nbits = at_nbits;
    Encoding enc = encoding::ihybrid_code(ics, n, ho).enc;
    encoding::polish_encoding(enc, ics);
    return enc;
  };
  // Paper flavour: semiexact at the minimum length, projection above it.
  AlgoResult a =
      best_of(*this, sweep, [&](int nbits) { return make(nbits, false); });
  if (sweep == 0) return a;
  // Extension: semiexact directly at each swept length.
  AlgoResult b =
      best_of(*this, sweep, [&](int nbits) { return make(nbits, true); });
  return (b.ok && (!a.ok || b.area < a.area)) ? b : a;
}

AlgoResult BenchContext::run_igreedy(int sweep) {
  const auto& ics = input_constraints();
  PerfPhase phase(name_ + ".igreedy");
  const int n = fsm_.num_states();
  return best_of(*this, sweep, [&](int nbits) {
    Encoding enc = encoding::igreedy_code(ics, n, nbits).enc;
    encoding::polish_encoding(enc, ics);
    return enc;
  });
}

AlgoResult BenchContext::run_iohybrid(int sweep) {
  const auto& sm = symbolic();
  PerfPhase phase(name_ + ".iohybrid");
  const int n = fsm_.num_states();
  AlgoResult a = best_of(*this, sweep, [&](int nbits) {
    encoding::HybridOptions ho;
    ho.nbits = nbits;
    ho.max_work = fast_mode() ? 5000 : 20000;
    return encoding::iohybrid_code(sm.ic, sm.clusters, n, ho).enc;
  });
  if (sweep == 0) return a;
  AlgoResult b = best_of(*this, sweep, [&](int nbits) {
    encoding::HybridOptions ho;
    ho.nbits = nbits;
    ho.max_work = fast_mode() ? 5000 : 20000;
    ho.start_at_nbits = true;
    return encoding::iohybrid_code(sm.ic, sm.clusters, n, ho).enc;
  });
  return (b.ok && (!a.ok || b.area < a.area)) ? b : a;
}

AlgoResult BenchContext::run_kiss() {
  input_constraints();
  PerfPhase phase(name_ + ".kiss");
  AlgoResult res;
  double t0 = now_seconds();
  encoding::HybridOptions ho;
  ho.max_work = fast_mode() ? 5000 : 20000;
  auto kr = encoding::kiss_code(input_constraints(), fsm_.num_states(), ho);
  res.seconds = now_seconds() - t0;
  if (kr.enc.nbits > 20) return res;  // too wide to evaluate sensibly
  res.ok = true;
  res.enc = std::move(kr.enc);
  PlaMetrics m = evaluate(res.enc);
  res.nbits = m.nbits;
  res.cubes = m.cubes;
  res.area = m.area;
  return res;
}

AlgoResult BenchContext::run_mustang_best(int sweep) {
  PerfPhase phase(name_ + ".mustang");
  AlgoResult best;
  util::Rng rng(77);
  for (auto variant :
       {encoding::MustangVariant::kFanout, encoding::MustangVariant::kFanin}) {
    for (int extra = 0; extra <= sweep; ++extra) {
      int nbits = min_length() + extra;
      if (nbits > 20) break;
      Encoding enc = encoding::mustang_code(fsm_, nbits, variant, rng);
      PlaMetrics m = evaluate(enc);
      if (!best.ok || m.area < best.area) {
        best.ok = true;
        best.enc = std::move(enc);
        best.nbits = m.nbits;
        best.cubes = m.cubes;
        best.area = m.area;
      }
    }
  }
  return best;
}

BenchContext::RandomStats BenchContext::run_random(int trials) {
  PerfPhase phase(name_ + ".random");
  RandomStats rs;
  rs.nbits = min_length();
  long total = 0;
  for (int t = 0; t < trials; ++t) {
    util::Rng rng(1000 + 37 * t);
    Encoding enc = encoding::random_encoding(fsm_.num_states(), rs.nbits, rng);
    PlaMetrics m = evaluate(enc);
    total += m.area;
    if (t == 0 || m.area < rs.best_area) {
      rs.best_area = m.area;
      rs.best_cubes = m.cubes;
    }
  }
  rs.avg_area = trials > 0 ? total / trials : 0;
  return rs;
}

BenchContext::HybridStats BenchContext::hybrid_stats() {
  input_constraints();
  PerfPhase phase(name_ + ".hybrid_stats");
  HybridStats hs;
  double t0 = now_seconds();
  encoding::HybridOptions ho;
  ho.nbits = 62;  // project until everything is satisfied
  ho.max_work = fast_mode() ? 5000 : 20000;
  auto hr = encoding::ihybrid_code(input_constraints(), fsm_.num_states(), ho);
  hs.seconds = now_seconds() - t0;
  hs.clength = hr.clength_all;
  // Weights at the minimum length: rerun capped at min length.
  ho.nbits = 0;
  auto hmin = encoding::ihybrid_code(input_constraints(), fsm_.num_states(),
                                     ho);
  for (const auto& ic : hmin.sic) hs.wsat += ic.weight;
  for (const auto& ic : hmin.ric) hs.wunsat += ic.weight;
  return hs;
}

void print_percent_row(const std::vector<std::pair<std::string, long>>& totals,
                       long reference) {
  std::printf("%-10s", "TOTAL");
  for (const auto& [label, total] : totals) {
    std::printf(" %10ld", total);
  }
  std::printf("\n%-10s", "%");
  for (const auto& [label, total] : totals) {
    std::printf(" %10ld",
                reference > 0 ? (100 * total) / reference : 0);
  }
  std::printf("\n");
}

}  // namespace nova::bench
