# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_bitvec[1]_include.cmake")
include("/root/repo/build/tests/test_cube[1]_include.cmake")
include("/root/repo/build/tests/test_cover[1]_include.cmake")
include("/root/repo/build/tests/test_espresso[1]_include.cmake")
include("/root/repo/build/tests/test_fsm[1]_include.cmake")
include("/root/repo/build/tests/test_poset[1]_include.cmake")
include("/root/repo/build/tests/test_embed[1]_include.cmake")
include("/root/repo/build/tests/test_hybrid[1]_include.cmake")
include("/root/repo/build/tests/test_io[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_constraints[1]_include.cmake")
include("/root/repo/build/tests/test_nova[1]_include.cmake")
include("/root/repo/build/tests/test_mlopt[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_pla_io[1]_include.cmake")
include("/root/repo/build/tests/test_quality[1]_include.cmake")
include("/root/repo/build/tests/test_edge[1]_include.cmake")
include("/root/repo/build/tests/test_exact[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_robustness[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_poset_properties[1]_include.cmake")
include("/root/repo/build/tests/test_disjoint[1]_include.cmake")
include("/root/repo/build/tests/test_regressions[1]_include.cmake")
