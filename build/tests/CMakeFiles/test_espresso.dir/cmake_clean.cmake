file(REMOVE_RECURSE
  "CMakeFiles/test_espresso.dir/test_espresso.cpp.o"
  "CMakeFiles/test_espresso.dir/test_espresso.cpp.o.d"
  "test_espresso"
  "test_espresso.pdb"
  "test_espresso[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_espresso.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
