# Empty compiler generated dependencies file for test_espresso.
# This may be replaced when dependencies are built.
