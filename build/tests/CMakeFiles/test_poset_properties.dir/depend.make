# Empty dependencies file for test_poset_properties.
# This may be replaced when dependencies are built.
