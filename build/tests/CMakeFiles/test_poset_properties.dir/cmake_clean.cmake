file(REMOVE_RECURSE
  "CMakeFiles/test_poset_properties.dir/test_poset_properties.cpp.o"
  "CMakeFiles/test_poset_properties.dir/test_poset_properties.cpp.o.d"
  "test_poset_properties"
  "test_poset_properties.pdb"
  "test_poset_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_poset_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
