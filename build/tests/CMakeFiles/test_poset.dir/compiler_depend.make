# Empty compiler generated dependencies file for test_poset.
# This may be replaced when dependencies are built.
