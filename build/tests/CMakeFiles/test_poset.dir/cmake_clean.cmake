file(REMOVE_RECURSE
  "CMakeFiles/test_poset.dir/test_poset.cpp.o"
  "CMakeFiles/test_poset.dir/test_poset.cpp.o.d"
  "test_poset"
  "test_poset.pdb"
  "test_poset[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_poset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
