file(REMOVE_RECURSE
  "CMakeFiles/test_pla_io.dir/test_pla_io.cpp.o"
  "CMakeFiles/test_pla_io.dir/test_pla_io.cpp.o.d"
  "test_pla_io"
  "test_pla_io.pdb"
  "test_pla_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pla_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
