file(REMOVE_RECURSE
  "CMakeFiles/test_nova.dir/test_nova.cpp.o"
  "CMakeFiles/test_nova.dir/test_nova.cpp.o.d"
  "test_nova"
  "test_nova.pdb"
  "test_nova[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nova.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
