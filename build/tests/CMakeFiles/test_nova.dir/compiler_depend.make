# Empty compiler generated dependencies file for test_nova.
# This may be replaced when dependencies are built.
