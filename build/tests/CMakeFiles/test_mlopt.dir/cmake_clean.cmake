file(REMOVE_RECURSE
  "CMakeFiles/test_mlopt.dir/test_mlopt.cpp.o"
  "CMakeFiles/test_mlopt.dir/test_mlopt.cpp.o.d"
  "test_mlopt"
  "test_mlopt.pdb"
  "test_mlopt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mlopt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
