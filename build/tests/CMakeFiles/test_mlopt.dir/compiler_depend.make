# Empty compiler generated dependencies file for test_mlopt.
# This may be replaced when dependencies are built.
