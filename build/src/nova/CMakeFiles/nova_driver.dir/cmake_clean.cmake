file(REMOVE_RECURSE
  "CMakeFiles/nova_driver.dir/nova.cpp.o"
  "CMakeFiles/nova_driver.dir/nova.cpp.o.d"
  "CMakeFiles/nova_driver.dir/symbolic_inputs.cpp.o"
  "CMakeFiles/nova_driver.dir/symbolic_inputs.cpp.o.d"
  "CMakeFiles/nova_driver.dir/verify.cpp.o"
  "CMakeFiles/nova_driver.dir/verify.cpp.o.d"
  "libnova_driver.a"
  "libnova_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nova_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
