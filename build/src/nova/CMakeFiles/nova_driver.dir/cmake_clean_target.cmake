file(REMOVE_RECURSE
  "libnova_driver.a"
)
