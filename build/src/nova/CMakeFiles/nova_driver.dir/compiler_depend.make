# Empty compiler generated dependencies file for nova_driver.
# This may be replaced when dependencies are built.
