
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/encoding/analysis.cpp" "src/encoding/CMakeFiles/nova_encoding.dir/analysis.cpp.o" "gcc" "src/encoding/CMakeFiles/nova_encoding.dir/analysis.cpp.o.d"
  "/root/repo/src/encoding/baselines.cpp" "src/encoding/CMakeFiles/nova_encoding.dir/baselines.cpp.o" "gcc" "src/encoding/CMakeFiles/nova_encoding.dir/baselines.cpp.o.d"
  "/root/repo/src/encoding/embed.cpp" "src/encoding/CMakeFiles/nova_encoding.dir/embed.cpp.o" "gcc" "src/encoding/CMakeFiles/nova_encoding.dir/embed.cpp.o.d"
  "/root/repo/src/encoding/encoding.cpp" "src/encoding/CMakeFiles/nova_encoding.dir/encoding.cpp.o" "gcc" "src/encoding/CMakeFiles/nova_encoding.dir/encoding.cpp.o.d"
  "/root/repo/src/encoding/hybrid.cpp" "src/encoding/CMakeFiles/nova_encoding.dir/hybrid.cpp.o" "gcc" "src/encoding/CMakeFiles/nova_encoding.dir/hybrid.cpp.o.d"
  "/root/repo/src/encoding/io.cpp" "src/encoding/CMakeFiles/nova_encoding.dir/io.cpp.o" "gcc" "src/encoding/CMakeFiles/nova_encoding.dir/io.cpp.o.d"
  "/root/repo/src/encoding/polish.cpp" "src/encoding/CMakeFiles/nova_encoding.dir/polish.cpp.o" "gcc" "src/encoding/CMakeFiles/nova_encoding.dir/polish.cpp.o.d"
  "/root/repo/src/encoding/poset.cpp" "src/encoding/CMakeFiles/nova_encoding.dir/poset.cpp.o" "gcc" "src/encoding/CMakeFiles/nova_encoding.dir/poset.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/constraints/CMakeFiles/nova_constraints.dir/DependInfo.cmake"
  "/root/repo/build/src/fsm/CMakeFiles/nova_fsm.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/nova_logic.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
