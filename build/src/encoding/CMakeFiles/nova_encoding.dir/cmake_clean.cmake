file(REMOVE_RECURSE
  "CMakeFiles/nova_encoding.dir/analysis.cpp.o"
  "CMakeFiles/nova_encoding.dir/analysis.cpp.o.d"
  "CMakeFiles/nova_encoding.dir/baselines.cpp.o"
  "CMakeFiles/nova_encoding.dir/baselines.cpp.o.d"
  "CMakeFiles/nova_encoding.dir/embed.cpp.o"
  "CMakeFiles/nova_encoding.dir/embed.cpp.o.d"
  "CMakeFiles/nova_encoding.dir/encoding.cpp.o"
  "CMakeFiles/nova_encoding.dir/encoding.cpp.o.d"
  "CMakeFiles/nova_encoding.dir/hybrid.cpp.o"
  "CMakeFiles/nova_encoding.dir/hybrid.cpp.o.d"
  "CMakeFiles/nova_encoding.dir/io.cpp.o"
  "CMakeFiles/nova_encoding.dir/io.cpp.o.d"
  "CMakeFiles/nova_encoding.dir/polish.cpp.o"
  "CMakeFiles/nova_encoding.dir/polish.cpp.o.d"
  "CMakeFiles/nova_encoding.dir/poset.cpp.o"
  "CMakeFiles/nova_encoding.dir/poset.cpp.o.d"
  "libnova_encoding.a"
  "libnova_encoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nova_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
