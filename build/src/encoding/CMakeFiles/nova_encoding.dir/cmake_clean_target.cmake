file(REMOVE_RECURSE
  "libnova_encoding.a"
)
