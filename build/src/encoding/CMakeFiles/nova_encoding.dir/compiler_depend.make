# Empty compiler generated dependencies file for nova_encoding.
# This may be replaced when dependencies are built.
