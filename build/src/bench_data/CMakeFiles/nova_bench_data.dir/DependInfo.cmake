
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bench_data/benchmarks.cpp" "src/bench_data/CMakeFiles/nova_bench_data.dir/benchmarks.cpp.o" "gcc" "src/bench_data/CMakeFiles/nova_bench_data.dir/benchmarks.cpp.o.d"
  "/root/repo/src/bench_data/kiss_texts.cpp" "src/bench_data/CMakeFiles/nova_bench_data.dir/kiss_texts.cpp.o" "gcc" "src/bench_data/CMakeFiles/nova_bench_data.dir/kiss_texts.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fsm/CMakeFiles/nova_fsm.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/nova_logic.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
