file(REMOVE_RECURSE
  "CMakeFiles/nova_bench_data.dir/benchmarks.cpp.o"
  "CMakeFiles/nova_bench_data.dir/benchmarks.cpp.o.d"
  "CMakeFiles/nova_bench_data.dir/kiss_texts.cpp.o"
  "CMakeFiles/nova_bench_data.dir/kiss_texts.cpp.o.d"
  "libnova_bench_data.a"
  "libnova_bench_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nova_bench_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
