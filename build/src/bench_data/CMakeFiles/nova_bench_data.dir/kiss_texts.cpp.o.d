src/bench_data/CMakeFiles/nova_bench_data.dir/kiss_texts.cpp.o: \
 /root/repo/src/bench_data/kiss_texts.cpp /usr/include/stdc-predef.h \
 /root/repo/src/bench_data/kiss_texts.hpp
