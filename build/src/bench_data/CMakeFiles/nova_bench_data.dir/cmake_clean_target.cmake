file(REMOVE_RECURSE
  "libnova_bench_data.a"
)
