# Empty compiler generated dependencies file for nova_bench_data.
# This may be replaced when dependencies are built.
