# Empty dependencies file for nova_mlopt.
# This may be replaced when dependencies are built.
