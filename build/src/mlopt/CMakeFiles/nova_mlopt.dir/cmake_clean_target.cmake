file(REMOVE_RECURSE
  "libnova_mlopt.a"
)
