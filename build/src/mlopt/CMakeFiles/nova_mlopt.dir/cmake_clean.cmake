file(REMOVE_RECURSE
  "CMakeFiles/nova_mlopt.dir/algebraic.cpp.o"
  "CMakeFiles/nova_mlopt.dir/algebraic.cpp.o.d"
  "CMakeFiles/nova_mlopt.dir/bridge.cpp.o"
  "CMakeFiles/nova_mlopt.dir/bridge.cpp.o.d"
  "libnova_mlopt.a"
  "libnova_mlopt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nova_mlopt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
