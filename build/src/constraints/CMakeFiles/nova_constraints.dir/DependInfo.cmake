
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/constraints/constraints.cpp" "src/constraints/CMakeFiles/nova_constraints.dir/constraints.cpp.o" "gcc" "src/constraints/CMakeFiles/nova_constraints.dir/constraints.cpp.o.d"
  "/root/repo/src/constraints/disjoint_min.cpp" "src/constraints/CMakeFiles/nova_constraints.dir/disjoint_min.cpp.o" "gcc" "src/constraints/CMakeFiles/nova_constraints.dir/disjoint_min.cpp.o.d"
  "/root/repo/src/constraints/input_constraints.cpp" "src/constraints/CMakeFiles/nova_constraints.dir/input_constraints.cpp.o" "gcc" "src/constraints/CMakeFiles/nova_constraints.dir/input_constraints.cpp.o.d"
  "/root/repo/src/constraints/symbolic_min.cpp" "src/constraints/CMakeFiles/nova_constraints.dir/symbolic_min.cpp.o" "gcc" "src/constraints/CMakeFiles/nova_constraints.dir/symbolic_min.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fsm/CMakeFiles/nova_fsm.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/nova_logic.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
