file(REMOVE_RECURSE
  "CMakeFiles/nova_constraints.dir/constraints.cpp.o"
  "CMakeFiles/nova_constraints.dir/constraints.cpp.o.d"
  "CMakeFiles/nova_constraints.dir/disjoint_min.cpp.o"
  "CMakeFiles/nova_constraints.dir/disjoint_min.cpp.o.d"
  "CMakeFiles/nova_constraints.dir/input_constraints.cpp.o"
  "CMakeFiles/nova_constraints.dir/input_constraints.cpp.o.d"
  "CMakeFiles/nova_constraints.dir/symbolic_min.cpp.o"
  "CMakeFiles/nova_constraints.dir/symbolic_min.cpp.o.d"
  "libnova_constraints.a"
  "libnova_constraints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nova_constraints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
