# Empty dependencies file for nova_constraints.
# This may be replaced when dependencies are built.
