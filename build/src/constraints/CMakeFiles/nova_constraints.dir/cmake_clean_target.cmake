file(REMOVE_RECURSE
  "libnova_constraints.a"
)
