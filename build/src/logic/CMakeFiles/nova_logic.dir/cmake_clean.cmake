file(REMOVE_RECURSE
  "CMakeFiles/nova_logic.dir/cover.cpp.o"
  "CMakeFiles/nova_logic.dir/cover.cpp.o.d"
  "CMakeFiles/nova_logic.dir/espresso.cpp.o"
  "CMakeFiles/nova_logic.dir/espresso.cpp.o.d"
  "CMakeFiles/nova_logic.dir/exact.cpp.o"
  "CMakeFiles/nova_logic.dir/exact.cpp.o.d"
  "CMakeFiles/nova_logic.dir/pla_io.cpp.o"
  "CMakeFiles/nova_logic.dir/pla_io.cpp.o.d"
  "libnova_logic.a"
  "libnova_logic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nova_logic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
