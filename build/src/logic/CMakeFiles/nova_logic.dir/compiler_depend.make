# Empty compiler generated dependencies file for nova_logic.
# This may be replaced when dependencies are built.
