file(REMOVE_RECURSE
  "libnova_logic.a"
)
