
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/logic/cover.cpp" "src/logic/CMakeFiles/nova_logic.dir/cover.cpp.o" "gcc" "src/logic/CMakeFiles/nova_logic.dir/cover.cpp.o.d"
  "/root/repo/src/logic/espresso.cpp" "src/logic/CMakeFiles/nova_logic.dir/espresso.cpp.o" "gcc" "src/logic/CMakeFiles/nova_logic.dir/espresso.cpp.o.d"
  "/root/repo/src/logic/exact.cpp" "src/logic/CMakeFiles/nova_logic.dir/exact.cpp.o" "gcc" "src/logic/CMakeFiles/nova_logic.dir/exact.cpp.o.d"
  "/root/repo/src/logic/pla_io.cpp" "src/logic/CMakeFiles/nova_logic.dir/pla_io.cpp.o" "gcc" "src/logic/CMakeFiles/nova_logic.dir/pla_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
