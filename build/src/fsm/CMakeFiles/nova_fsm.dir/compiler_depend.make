# Empty compiler generated dependencies file for nova_fsm.
# This may be replaced when dependencies are built.
