file(REMOVE_RECURSE
  "CMakeFiles/nova_fsm.dir/dot_export.cpp.o"
  "CMakeFiles/nova_fsm.dir/dot_export.cpp.o.d"
  "CMakeFiles/nova_fsm.dir/fsm.cpp.o"
  "CMakeFiles/nova_fsm.dir/fsm.cpp.o.d"
  "CMakeFiles/nova_fsm.dir/kiss_io.cpp.o"
  "CMakeFiles/nova_fsm.dir/kiss_io.cpp.o.d"
  "CMakeFiles/nova_fsm.dir/minimize.cpp.o"
  "CMakeFiles/nova_fsm.dir/minimize.cpp.o.d"
  "CMakeFiles/nova_fsm.dir/symbolic.cpp.o"
  "CMakeFiles/nova_fsm.dir/symbolic.cpp.o.d"
  "libnova_fsm.a"
  "libnova_fsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nova_fsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
