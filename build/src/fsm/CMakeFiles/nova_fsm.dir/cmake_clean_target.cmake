file(REMOVE_RECURSE
  "libnova_fsm.a"
)
