
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fsm/dot_export.cpp" "src/fsm/CMakeFiles/nova_fsm.dir/dot_export.cpp.o" "gcc" "src/fsm/CMakeFiles/nova_fsm.dir/dot_export.cpp.o.d"
  "/root/repo/src/fsm/fsm.cpp" "src/fsm/CMakeFiles/nova_fsm.dir/fsm.cpp.o" "gcc" "src/fsm/CMakeFiles/nova_fsm.dir/fsm.cpp.o.d"
  "/root/repo/src/fsm/kiss_io.cpp" "src/fsm/CMakeFiles/nova_fsm.dir/kiss_io.cpp.o" "gcc" "src/fsm/CMakeFiles/nova_fsm.dir/kiss_io.cpp.o.d"
  "/root/repo/src/fsm/minimize.cpp" "src/fsm/CMakeFiles/nova_fsm.dir/minimize.cpp.o" "gcc" "src/fsm/CMakeFiles/nova_fsm.dir/minimize.cpp.o.d"
  "/root/repo/src/fsm/symbolic.cpp" "src/fsm/CMakeFiles/nova_fsm.dir/symbolic.cpp.o" "gcc" "src/fsm/CMakeFiles/nova_fsm.dir/symbolic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/logic/CMakeFiles/nova_logic.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
