# Empty dependencies file for bench_exactmin.
# This may be replaced when dependencies are built.
