file(REMOVE_RECURSE
  "CMakeFiles/bench_exactmin.dir/bench/bench_exactmin.cpp.o"
  "CMakeFiles/bench_exactmin.dir/bench/bench_exactmin.cpp.o.d"
  "bench/bench_exactmin"
  "bench/bench_exactmin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exactmin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
