file(REMOVE_RECURSE
  "libnova_bench_common.a"
)
