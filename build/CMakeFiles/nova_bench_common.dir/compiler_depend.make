# Empty compiler generated dependencies file for nova_bench_common.
# This may be replaced when dependencies are built.
