file(REMOVE_RECURSE
  "CMakeFiles/nova_bench_common.dir/bench/bench_common.cpp.o"
  "CMakeFiles/nova_bench_common.dir/bench/bench_common.cpp.o.d"
  "libnova_bench_common.a"
  "libnova_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nova_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
