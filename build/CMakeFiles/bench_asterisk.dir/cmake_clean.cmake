file(REMOVE_RECURSE
  "CMakeFiles/bench_asterisk.dir/bench/bench_asterisk.cpp.o"
  "CMakeFiles/bench_asterisk.dir/bench/bench_asterisk.cpp.o.d"
  "bench/bench_asterisk"
  "bench/bench_asterisk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_asterisk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
