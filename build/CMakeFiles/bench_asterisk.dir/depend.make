# Empty dependencies file for bench_asterisk.
# This may be replaced when dependencies are built.
