# Empty compiler generated dependencies file for tradeoff_sweep.
# This may be replaced when dependencies are built.
