file(REMOVE_RECURSE
  "CMakeFiles/tradeoff_sweep.dir/tradeoff_sweep.cpp.o"
  "CMakeFiles/tradeoff_sweep.dir/tradeoff_sweep.cpp.o.d"
  "tradeoff_sweep"
  "tradeoff_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tradeoff_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
