file(REMOVE_RECURSE
  "CMakeFiles/traffic_controller.dir/traffic_controller.cpp.o"
  "CMakeFiles/traffic_controller.dir/traffic_controller.cpp.o.d"
  "traffic_controller"
  "traffic_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
