# Empty dependencies file for traffic_controller.
# This may be replaced when dependencies are built.
