# Empty compiler generated dependencies file for opcode_encoding.
# This may be replaced when dependencies are built.
