file(REMOVE_RECURSE
  "CMakeFiles/opcode_encoding.dir/opcode_encoding.cpp.o"
  "CMakeFiles/opcode_encoding.dir/opcode_encoding.cpp.o.d"
  "opcode_encoding"
  "opcode_encoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opcode_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
