file(REMOVE_RECURSE
  "CMakeFiles/nova_cli.dir/nova_cli.cpp.o"
  "CMakeFiles/nova_cli.dir/nova_cli.cpp.o.d"
  "nova_cli"
  "nova_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nova_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
