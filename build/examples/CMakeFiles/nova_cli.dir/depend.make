# Empty dependencies file for nova_cli.
# This may be replaced when dependencies are built.
