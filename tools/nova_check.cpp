// nova_check: static lint for KISS2 state tables, PLA covers and completed
// encodings.
//
//   nova_check [options] <file>...
//
//   --json            machine-readable report on stdout
//   --werror          treat warnings as errors for the exit code
//   --constraints     also extract constraints and flag unsatisfiable sets
//   --encoding FILE   lint FILE ("<state> <code>" lines) against the single
//                     KISS2 input
//   --format kiss|pla force the input format (default: by extension, then
//                     content sniffing)
//
// Exit codes: 0 = no error diagnostics (warnings allowed unless --werror),
// 1 = at least one error diagnostic, 2 = bad usage or unreadable file.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "check/lint.hpp"
#include "fsm/kiss_io.hpp"

namespace {

using nova::check::LintOptions;
using nova::check::LintResult;
using nova::check::Severity;

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--json] [--werror] [--constraints] [--format kiss|pla]"
               " [--encoding CODES] <file>...\n";
  return 2;
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream f(path);
  if (!f) return false;
  std::ostringstream ss;
  ss << f.rdbuf();
  *out = ss.str();
  return true;
}

/// "kiss" or "pla", by extension first, then content: PLA cube rows have
/// two fields, KISS transition rows have four.
std::string detect_format(const std::string& path, const std::string& text) {
  auto ends_with = [&](const std::string& suf) {
    return path.size() >= suf.size() &&
           path.compare(path.size() - suf.size(), suf.size(), suf) == 0;
  };
  if (ends_with(".kiss") || ends_with(".kiss2")) return "kiss";
  if (ends_with(".pla")) return "pla";
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ss(line);
    std::string tok;
    if (!(ss >> tok)) continue;
    if (tok == ".type" || tok == ".ilb" || tok == ".ob") return "pla";
    if (tok == ".r" || tok == ".s") return "kiss";
    if (tok[0] == '.') continue;
    int fields = 1;
    while (ss >> tok) ++fields;
    return fields >= 4 ? "kiss" : "pla";
  }
  return "kiss";
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false, werror = false;
  std::string force_format, encoding_path;
  LintOptions opts;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--json") {
      json = true;
    } else if (a == "--werror") {
      werror = true;
    } else if (a == "--constraints") {
      opts.analyze_constraints = true;
    } else if (a == "--format") {
      if (++i >= argc) return usage(argv[0]);
      force_format = argv[i];
      if (force_format != "kiss" && force_format != "pla")
        return usage(argv[0]);
    } else if (a == "--encoding") {
      if (++i >= argc) return usage(argv[0]);
      encoding_path = argv[i];
    } else if (a == "--help" || a == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!a.empty() && a[0] == '-') {
      std::cerr << "unknown option: " << a << "\n";
      return usage(argv[0]);
    } else {
      files.push_back(a);
    }
  }
  if (files.empty()) return usage(argv[0]);
  if (!encoding_path.empty() && files.size() != 1) {
    std::cerr << "--encoding requires exactly one KISS2 input file\n";
    return 2;
  }

  LintResult all;
  for (const auto& path : files) {
    std::string text;
    if (!read_file(path, &text)) {
      std::cerr << "cannot read " << path << "\n";
      return 2;
    }
    const std::string fmt =
        force_format.empty() ? detect_format(path, text) : force_format;
    LintResult r = fmt == "pla" ? nova::check::lint_pla_text(text, path)
                                : nova::check::lint_kiss_text(text, path, opts);
    all.diags.insert(all.diags.end(), r.diags.begin(), r.diags.end());

    if (!encoding_path.empty()) {
      if (r.errors() > 0) {
        std::cerr << path << ": not linting encoding against a broken FSM\n";
      } else {
        std::string codes;
        if (!read_file(encoding_path, &codes)) {
          std::cerr << "cannot read " << encoding_path << "\n";
          return 2;
        }
        nova::fsm::Fsm fsm = nova::fsm::parse_kiss_string(text, path);
        LintResult e =
            nova::check::lint_encoding_text(fsm, codes, encoding_path);
        all.diags.insert(all.diags.end(), e.diags.begin(), e.diags.end());
      }
    }
  }

  if (json) {
    std::cout << nova::check::lint_to_json(all).dump(2) << "\n";
  } else {
    for (const auto& d : all.diags) std::cout << d.render() << "\n";
    std::cout << files.size() << " file(s): " << all.errors() << " error(s), "
              << all.warnings() << " warning(s)\n";
  }
  const bool bad = all.errors() > 0 || (werror && all.warnings() > 0);
  return bad ? 1 : 0;
}
