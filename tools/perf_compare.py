#!/usr/bin/env python3
"""Compare two BENCH_perf.json reports with median-ratio normalization.

Usage:
    perf_compare.py BASELINE CURRENT [--threshold 1.15] [--min-entries 3]

Both files use the schema written by bench_common.cpp:

    {"version": 1, "git_sha": ..., "machine": {...},
     "entries": [{"name": ..., "seconds": ...}, ...]}

The two reports were usually produced on different machines (a committed
baseline vs a CI runner), so absolute times are not comparable. For every
entry name present in both reports we take the ratio

    ratio = current_seconds / baseline_seconds

and estimate the machine-speed factor as the MEDIAN ratio: if the runner is
uniformly 1.4x slower, every ratio is ~1.4 and nothing should fail. An entry
regresses when its own ratio exceeds the median by more than the threshold:

    ratio / median(ratios) > threshold        (default 1.15 = +15%)

Exits 1 when any entry regresses (or the reports share too few entries to
normalize), printing a per-entry table either way.
"""

import argparse
import json
import statistics
import sys


def load_entries(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        sys.exit(f"perf_compare: cannot read {path}: {e}")
    entries = {}
    for e in doc.get("entries", []):
        name, seconds = e.get("name"), e.get("seconds")
        if isinstance(name, str) and isinstance(seconds, (int, float)):
            if seconds > 0:
                entries[name] = float(seconds)
    return entries


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=1.15,
                    help="normalized ratio above which an entry fails "
                         "(default 1.15 = 15%% slower than the median)")
    ap.add_argument("--min-entries", type=int, default=3,
                    help="minimum shared entries needed for the median "
                         "normalization to be meaningful (default 3)")
    args = ap.parse_args()

    base = load_entries(args.baseline)
    cur = load_entries(args.current)
    shared = sorted(set(base) & set(cur))
    if len(shared) < args.min_entries:
        sys.exit(f"perf_compare: only {len(shared)} shared entries between "
                 f"{args.baseline} and {args.current}; need at least "
                 f"{args.min_entries} to normalize")

    ratios = {n: cur[n] / base[n] for n in shared}
    median = statistics.median(ratios.values())

    width = max(len(n) for n in shared)
    print(f"machine-speed factor (median ratio): {median:.3f}")
    print(f"{'entry':<{width}}  {'base':>10}  {'current':>10}  "
          f"{'ratio':>7}  {'norm':>7}")
    failures = []
    for n in shared:
        norm = ratios[n] / median
        flag = ""
        if norm > args.threshold:
            failures.append(n)
            flag = "  <-- REGRESSION"
        print(f"{n:<{width}}  {base[n]*1e6:>9.1f}u  {cur[n]*1e6:>9.1f}u  "
              f"{ratios[n]:>7.3f}  {norm:>7.3f}{flag}")

    if failures:
        print(f"\n{len(failures)} entr{'y' if len(failures) == 1 else 'ies'} "
              f"regressed more than {(args.threshold - 1) * 100:.0f}% vs the "
              f"median-normalized baseline: {', '.join(failures)}")
        return 1
    print(f"\nok: no entry slower than {(args.threshold - 1) * 100:.0f}% "
          f"above the normalized baseline ({len(shared)} compared)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
